//! Static per-tenant reservations vs live cross-tenant arbitration
//! (beyond-paper experiment; the setting of the paper's §3 analysis).
//!
//! Memcachier divides one cache between applications with *static*
//! reservations, and Table 3 of the paper shows how much hit rate that
//! leaves on the table when the applications' marginal utilities of memory
//! differ. The server backend's [`cliffhanger::TenantArbiter`] replaces the
//! static split with the paper's shadow-queue gradient machinery run at
//! whole-application granularity (§4.1's "queue of an entire application"),
//! and this experiment quantifies the win: several tenant mixes — from
//! perfectly balanced to heavily skewed — are each replayed twice at a fixed
//! total budget, once with static even reservations and once with the
//! arbiter moving budget between the tenants, and the table reports total
//! and per-tenant hit rates per scenario. The CI `tenant-smoke` job runs the
//! down-scaled [`TenantOptions::smoke`] variant and asserts the arbiter
//! never loses to the static split (and clearly beats it on the skewed mix).

use crate::report::Table;
use cache_core::Key;
use cliffhanger::{
    Cliffhanger, CliffhangerConfig, TenantArbiter, TenantBalanceConfig, TenantSample,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use workloads::{KeyPopularity, SizeDistribution};

/// One tenant of a scenario: its share of the traffic and the shape of its
/// own key universe.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TenantProfile {
    /// Tenant name (for the report only).
    pub name: String,
    /// Relative share of the request stream.
    pub traffic_weight: u64,
    /// Size of the tenant's key universe.
    pub num_keys: u64,
    /// Zipf exponent of the tenant's key popularity (<= 0 = uniform).
    pub zipf_exponent: f64,
}

/// One mix of tenants sharing the fixed total budget.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TenantScenario {
    /// Scenario name (for the report only).
    pub name: String,
    /// The tenants of this mix.
    pub tenants: Vec<TenantProfile>,
}

/// Knobs of the tenant-arbitration experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TenantOptions {
    /// Fixed total memory, reserved evenly across each scenario's tenants.
    pub total_bytes: u64,
    /// Measured requests per run (after warm-up).
    pub requests: u64,
    /// Untimed warm-up requests per run.
    pub warmup_requests: u64,
    /// Requests between arbitration rounds.
    pub interval_requests: u64,
    /// Generalized-Pareto scale of the value sizes, in bytes.
    pub value_scale: f64,
    /// Cap on the value sizes, in bytes.
    pub value_cap: u64,
    /// Base RNG seed (the request stream is identical across modes).
    pub seed: u64,
    /// The tenant mixes to measure.
    pub scenarios: Vec<TenantScenario>,
}

fn profile(name: &str, traffic_weight: u64, num_keys: u64, zipf_exponent: f64) -> TenantProfile {
    TenantProfile {
        name: name.to_string(),
        traffic_weight,
        num_keys,
        zipf_exponent,
    }
}

impl TenantOptions {
    /// The scale the committed experiment artifacts use (`BENCH_PR4.json`):
    /// working sets well past the static shares, long enough for the
    /// arbiter's walk to converge.
    pub fn standard() -> Self {
        TenantOptions {
            total_bytes: 32 << 20,
            requests: 1_200_000,
            warmup_requests: 600_000,
            interval_requests: 4_096,
            value_scale: 214.476,
            value_cap: 2 << 10,
            seed: 0x7E4A_27B1,
            scenarios: vec![
                // Identical twins: arbitration has nothing to win and must
                // not lose anything either.
                TenantScenario {
                    name: "balanced".to_string(),
                    tenants: vec![
                        profile("even-a", 1, 60_000, 0.9),
                        profile("even-b", 1, 60_000, 0.9),
                    ],
                },
                // The acceptance mix: one tenant's working set dwarfs its
                // static half while the other idles on a tiny key set — the
                // Memcachier situation of §3 / Table 3.
                TenantScenario {
                    name: "skewed".to_string(),
                    tenants: vec![
                        profile("heavy", 3, 200_000, 0.9),
                        profile("light", 1, 2_000, 0.9),
                    ],
                },
                // Three ways of needing memory: a big Zipf tenant, a medium
                // uniform scanner, and a nearly idle one.
                TenantScenario {
                    name: "three-way".to_string(),
                    tenants: vec![
                        profile("big", 3, 150_000, 0.9),
                        profile("scan", 2, 40_000, 0.0),
                        profile("idle", 1, 1_000, 0.9),
                    ],
                },
            ],
        }
    }

    /// A down-scaled variant for CI smoke runs and unit tests.
    pub fn smoke() -> Self {
        TenantOptions {
            total_bytes: 8 << 20,
            requests: 300_000,
            warmup_requests: 150_000,
            scenarios: vec![
                TenantScenario {
                    name: "balanced".to_string(),
                    tenants: vec![
                        profile("even-a", 1, 15_000, 0.9),
                        profile("even-b", 1, 15_000, 0.9),
                    ],
                },
                TenantScenario {
                    name: "skewed".to_string(),
                    tenants: vec![
                        profile("heavy", 3, 60_000, 0.9),
                        profile("light", 1, 600, 0.9),
                    ],
                },
            ],
            ..TenantOptions::standard()
        }
    }
}

/// One tenant's measured outcome within a scenario run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TenantOutcome {
    /// Tenant name.
    pub name: String,
    /// GETs measured for this tenant.
    pub gets: u64,
    /// Hit rate with static reservations.
    pub static_hit_rate: f64,
    /// Hit rate with the arbiter on.
    pub arbitrated_hit_rate: f64,
    /// Final byte budget under arbitration (static budget is the even
    /// share).
    pub arbitrated_budget_bytes: u64,
}

/// One measured scenario.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TenantPoint {
    /// Scenario name.
    pub scenario: String,
    /// Total hit rate with static even reservations (arbiter off).
    pub static_hit_rate: f64,
    /// Total hit rate with the cross-tenant arbiter on.
    pub arbitrated_hit_rate: f64,
    /// Budget transfers the arbiter applied.
    pub transfers: u64,
    /// Bytes the arbiter moved.
    pub bytes_moved: u64,
    /// Per-tenant breakdowns.
    pub tenants: Vec<TenantOutcome>,
}

/// The full experiment result (schema `cliffhanger-tenant-experiment/v1`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TenantResult {
    /// Schema tag.
    pub schema: String,
    /// The options the experiment ran with.
    pub options: TenantOptions,
    /// One point per scenario.
    pub points: Vec<TenantPoint>,
}

/// Schema tag for [`TenantResult`].
pub const TENANT_SCHEMA: &str = "cliffhanger-tenant-experiment/v1";

/// Outcome of one scenario replay in one mode.
struct RunOutcome {
    hit_rate: f64,
    per_tenant_hits: Vec<u64>,
    per_tenant_gets: Vec<u64>,
    budgets: Vec<u64>,
    transfers: u64,
    bytes_moved: u64,
}

/// Replays one scenario at fixed total budget, with or without the arbiter.
///
/// Every tenant is one Cliffhanger engine holding its reservation (the
/// backend runs one engine per tenant per shard; a single engine per tenant
/// is the same allocation problem without the wire layer). The request
/// stream interleaves the tenants by traffic weight, deterministically.
fn run_scenario(opts: &TenantOptions, scenario: &TenantScenario, arbitrate: bool) -> RunOutcome {
    let n = scenario.tenants.len();
    let share = (opts.total_bytes / n as u64).max(1);
    let mut caches: Vec<Cliffhanger<()>> = scenario
        .tenants
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let mut cfg = CliffhangerConfig::scaled_for(share);
            cfg.seed = opts.seed.wrapping_add(i as u64);
            // Same widening as the sharding experiment: at megabyte-scale
            // slices the paper's 2% shadow ratio leaves giant classes with
            // one-entry shadow queues; wider queues keep the gradient alive
            // (shadow queues store keys only, so this stays cheap).
            cfg.hill_shadow_bytes = (share / 8).clamp(64 << 10, 1 << 20);
            Cliffhanger::new(cfg)
        })
        .collect();
    let balance = TenantBalanceConfig {
        interval_requests: opts.interval_requests,
        ..TenantBalanceConfig::scaled_for(opts.total_bytes, n)
    };
    let mut arbiter = TenantArbiter::new(n, balance);
    let mut transfers = 0u64;
    let mut bytes_moved = 0u64;

    let samplers: Vec<_> = scenario
        .tenants
        .iter()
        .map(|t| {
            if t.zipf_exponent <= 0.0 {
                KeyPopularity::Uniform {
                    num_keys: t.num_keys,
                }
            } else {
                KeyPopularity::Zipf {
                    num_keys: t.num_keys,
                    exponent: t.zipf_exponent,
                }
            }
            .sampler()
        })
        .collect();
    let sizes = SizeDistribution::GeneralizedPareto {
        location: 0.0,
        scale: opts.value_scale,
        shape: 0.348_468,
        cap: opts.value_cap,
    };
    // Weighted tenant pick per request via cumulative weights.
    let total_weight: u64 = scenario
        .tenants
        .iter()
        .map(|t| t.traffic_weight.max(1))
        .sum();
    let cumulative: Vec<u64> = scenario
        .tenants
        .iter()
        .scan(0u64, |acc, t| {
            *acc += t.traffic_weight.max(1);
            Some(*acc)
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(opts.seed);

    let total_requests = opts.warmup_requests + opts.requests;
    let mut per_tenant_hits = vec![0u64; n];
    let mut per_tenant_gets = vec![0u64; n];
    for r in 0..total_requests {
        let draw = rng.gen_range(0..total_weight);
        let t = cumulative.partition_point(|&c| c <= draw);
        let rank = samplers[t].sample(&mut rng);
        // Per-tenant seed salt keeps the size assignment independent across
        // tenants sharing ranks.
        let size = sizes
            .size_for_key(rank, opts.seed ^ (t as u64).wrapping_mul(0x9E37_79B9))
            .max(1);
        let key = Key::new(rank);
        let hit = caches[t]
            .get(key, size)
            .map(|(_, event)| event.hit)
            .unwrap_or(false);
        if !hit {
            caches[t].set(key, size, ());
        }
        if r >= opts.warmup_requests {
            per_tenant_gets[t] += 1;
            per_tenant_hits[t] += hit as u64;
        }
        if arbitrate && n > 1 && (r + 1) % opts.interval_requests == 0 {
            let samples: Vec<TenantSample> = caches
                .iter()
                .map(|c| TenantSample {
                    shadow_hits: c.stats().shadow_hits,
                    budget_bytes: c.total_bytes(),
                })
                .collect();
            for tr in arbiter.arbitrate(&samples) {
                if caches[tr.from].shrink_total(tr.bytes) {
                    caches[tr.to].grow_total(tr.bytes);
                    transfers += 1;
                    bytes_moved += tr.bytes;
                }
            }
        }
    }
    debug_assert_eq!(
        caches.iter().map(|c| c.total_bytes()).sum::<u64>(),
        share * n as u64,
        "arbitration must conserve the fixed total budget"
    );
    let gets: u64 = per_tenant_gets.iter().sum();
    let hits: u64 = per_tenant_hits.iter().sum();
    RunOutcome {
        hit_rate: hits as f64 / gets.max(1) as f64,
        per_tenant_hits,
        per_tenant_gets,
        budgets: caches.iter().map(|c| c.total_bytes()).collect(),
        transfers,
        bytes_moved,
    }
}

/// Runs the full experiment: every scenario, arbiter off and on.
pub fn tenant_experiment(opts: &TenantOptions) -> TenantResult {
    let points = opts
        .scenarios
        .iter()
        .map(|scenario| {
            let fixed = run_scenario(opts, scenario, false);
            let live = run_scenario(opts, scenario, true);
            let tenants = scenario
                .tenants
                .iter()
                .enumerate()
                .map(|(i, t)| TenantOutcome {
                    name: t.name.clone(),
                    gets: live.per_tenant_gets[i],
                    static_hit_rate: fixed.per_tenant_hits[i] as f64
                        / fixed.per_tenant_gets[i].max(1) as f64,
                    arbitrated_hit_rate: live.per_tenant_hits[i] as f64
                        / live.per_tenant_gets[i].max(1) as f64,
                    arbitrated_budget_bytes: live.budgets[i],
                })
                .collect();
            TenantPoint {
                scenario: scenario.name.clone(),
                static_hit_rate: fixed.hit_rate,
                arbitrated_hit_rate: live.hit_rate,
                transfers: live.transfers,
                bytes_moved: live.bytes_moved,
                tenants,
            }
        })
        .collect();
    TenantResult {
        schema: TENANT_SCHEMA.to_string(),
        options: opts.clone(),
        points,
    }
}

impl TenantResult {
    /// The point of a named scenario, if measured.
    pub fn point(&self, scenario: &str) -> Option<&TenantPoint> {
        self.points.iter().find(|p| p.scenario == scenario)
    }

    /// Renders the result as a report table.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "Static reservations vs cross-tenant arbitration (fixed total memory)",
            &[
                "Scenario",
                "Tenant",
                "Static",
                "Arbitrated",
                "Won",
                "Final budget MB",
            ],
        );
        for p in &self.points {
            table.push_row(vec![
                p.scenario.clone(),
                "(total)".to_string(),
                Table::pct(p.static_hit_rate),
                Table::pct(p.arbitrated_hit_rate),
                format!(
                    "{:+.2}pp",
                    (p.arbitrated_hit_rate - p.static_hit_rate) * 100.0
                ),
                format!("{:.1}", self.options.total_bytes as f64 / (1 << 20) as f64),
            ]);
            for t in &p.tenants {
                table.push_row(vec![
                    String::new(),
                    t.name.clone(),
                    Table::pct(t.static_hit_rate),
                    Table::pct(t.arbitrated_hit_rate),
                    format!(
                        "{:+.2}pp",
                        (t.arbitrated_hit_rate - t.static_hit_rate) * 100.0
                    ),
                    format!("{:.1}", t.arbitrated_budget_bytes as f64 / (1 << 20) as f64),
                ]);
            }
        }
        table
    }

    /// Serialises to compact JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("result serialisation cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arbiter_beats_static_reservations_on_a_skewed_mix() {
        // A deliberately tiny run — the CI smoke job runs the real
        // assertion at TenantOptions::smoke() scale.
        let opts = TenantOptions {
            total_bytes: 4 << 20,
            requests: 120_000,
            warmup_requests: 60_000,
            scenarios: vec![TenantScenario {
                name: "skewed".to_string(),
                tenants: vec![
                    profile("heavy", 3, 30_000, 0.9),
                    profile("light", 1, 300, 0.9),
                ],
            }],
            ..TenantOptions::standard()
        };
        let result = tenant_experiment(&opts);
        let p = result.point("skewed").expect("scenario measured");
        assert!(p.transfers > 0, "skew must trigger tenant transfers");
        assert!(
            p.arbitrated_hit_rate > p.static_hit_rate,
            "the arbiter must beat static reservations on a skewed mix: \
             {:.4} vs {:.4}",
            p.arbitrated_hit_rate,
            p.static_hit_rate
        );
        // The heavy tenant ends with more than its even share.
        let heavy = &p.tenants[0];
        assert!(
            heavy.arbitrated_budget_bytes > (4 << 20) / 2,
            "budget should follow demand: {} bytes",
            heavy.arbitrated_budget_bytes
        );
        // The light tenant's tiny working set still fits after donating.
        let light = &p.tenants[1];
        assert!(
            light.arbitrated_hit_rate > 0.5,
            "the donor keeps serving its small working set: {:.4}",
            light.arbitrated_hit_rate
        );
    }

    #[test]
    fn balanced_mix_is_not_hurt_by_arbitration() {
        let opts = TenantOptions {
            total_bytes: 4 << 20,
            requests: 100_000,
            warmup_requests: 50_000,
            scenarios: vec![TenantScenario {
                name: "balanced".to_string(),
                tenants: vec![
                    profile("even-a", 1, 8_000, 0.9),
                    profile("even-b", 1, 8_000, 0.9),
                ],
            }],
            ..TenantOptions::standard()
        };
        let result = tenant_experiment(&opts);
        let p = result.point("balanced").unwrap();
        assert!(
            p.arbitrated_hit_rate >= p.static_hit_rate - 0.01,
            "balanced tenants must not lose to arbitration: {:.4} vs {:.4}",
            p.arbitrated_hit_rate,
            p.static_hit_rate
        );
    }

    #[test]
    fn table_and_json_round_trip() {
        let result = TenantResult {
            schema: TENANT_SCHEMA.to_string(),
            options: TenantOptions::smoke(),
            points: vec![TenantPoint {
                scenario: "skewed".to_string(),
                static_hit_rate: 0.61,
                arbitrated_hit_rate: 0.78,
                transfers: 40,
                bytes_moved: 9 << 20,
                tenants: vec![TenantOutcome {
                    name: "heavy".to_string(),
                    gets: 100_000,
                    static_hit_rate: 0.5,
                    arbitrated_hit_rate: 0.75,
                    arbitrated_budget_bytes: 24 << 20,
                }],
            }],
        };
        let table = result.table();
        assert_eq!(table.rows.len(), 2, "one total row + one tenant row");
        assert!(table.to_string().contains("78.0%"));
        let back: TenantResult = serde_json::from_str(&result.to_json()).unwrap();
        assert_eq!(back.points[0].transfers, 40);
        assert_eq!(back.schema, TENANT_SCHEMA);
        assert_eq!(back.points[0].tenants[0].name, "heavy");
    }
}
