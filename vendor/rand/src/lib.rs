//! Minimal offline stand-in for [`rand` 0.8](https://docs.rs/rand/0.8).
//!
//! Implements the subset this workspace uses: `StdRng` (a SplitMix64 /
//! xorshift-style deterministic generator), `SeedableRng::seed_from_u64`,
//! the `Rng` extension methods `gen`, `gen_range`, and `gen_bool`, plus
//! `distributions::{Distribution, Standard, WeightedIndex}`. Determinism is
//! the priority — workloads and tests seed every generator explicitly — not
//! cryptographic quality.

use std::ops::{Range, RangeInclusive};

pub mod distributions;
pub mod rngs;

/// The core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Samples a value via the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// Panics if the range is empty, like real rand.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding support; only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64
);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// The conventional glob-import module.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    #[allow(unused_imports)]
    use super::prelude::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        let n = 100_000;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }
}
