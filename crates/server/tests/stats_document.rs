//! End-to-end validation of the machine-readable telemetry plane:
//! `stats json` must return a schema-valid `cliffhanger-stats/v1` document
//! carrying per-loop service-time quantiles, and after a rebalancing run
//! under genuine skew the flight-recorder journal must hold at least one
//! shard-transfer event *with the gradients that justified it* — the
//! paper's §4 decision evidence, scrapeable from the wire.

use bytes::Bytes;
use cache_core::hash_bytes;
use cache_core::key::mix64;
use cache_server::{BackendConfig, BackendMode, CacheClient, CacheServer, ServerConfig};
use cliffhanger::ShardBalanceConfig;
use serde_json::Value;
use std::collections::HashMap;
use std::time::{Duration, Instant};
use telemetry::EventKind;

/// The shard a byte-string key routes to for the default tenant (same
/// double hash as the backend), so the load can be deliberately skewed —
/// uniform demand would leave the rebalancer nothing to narrate.
fn shard_of(key: &str, shards: u64) -> usize {
    (mix64(hash_bytes(key.as_bytes())) % shards) as usize
}

fn pinned_keys(shard: usize, count: usize) -> Vec<String> {
    (0u64..)
        .map(|i| format!("s{shard}-k{i}"))
        .filter(|k| shard_of(k, 4) == shard)
        .take(count)
        .collect()
}

#[test]
fn stats_json_carries_latency_quantiles_and_transfer_evidence() {
    let server = CacheServer::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        // 1µs threshold: forwarded ops pay a cross-thread mailbox hop, so
        // the slow-op log must trip under this load.
        slow_op_micros: 1,
        backend: BackendConfig {
            total_bytes: 8 << 20,
            mode: BackendMode::Cliffhanger,
            shards: 4,
            rebalance: ShardBalanceConfig {
                interval_requests: 512,
                credit_bytes: 64 << 10,
                min_shard_bytes: 256 << 10,
                min_gradient_gap: 2,
                hysteresis: 0.05,
                ..ShardBalanceConfig::default()
            },
            ..BackendConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("server must start");
    let handle = server.cache();

    // Shard 0 cycles a working set just past its physical capacity
    // (get-then-set-on-miss, so every miss lands inside the shadow window
    // and registers a shadow hit — the rebalancer's gradient fuel) while
    // shard 3 holds a tiny fully resident set, keeping the gap open. The
    // capacity is an engine-internal quantity, so the working-set size
    // adapts: whenever a pass yields no new shadow hits, grow it.
    let storm_pool = pinned_keys(0, 30_000);
    let steady_keys = pinned_keys(3, 100);
    let payload = Bytes::from(vec![b'x'; 200]);
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut working_set = 3_000usize;
    let mut last_shadow_hits = 0u64;
    loop {
        for key in &steady_keys {
            if handle.get(key.as_bytes()).is_none() {
                handle.set(key.as_bytes(), 0, payload.clone());
            }
        }
        for key in &storm_pool[..working_set] {
            if handle.get(key.as_bytes()).is_none() {
                handle.set(key.as_bytes(), 0, payload.clone());
            }
        }
        handle.rebalance_now();
        let stats: HashMap<String, String> = handle.stats().into_iter().collect();
        if stats["rebalance:transfers"].parse::<u64>().unwrap() > 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "skewed load must eventually produce a transfer: {stats:?}"
        );
        let shadow_hits: u64 = stats["shard:0:shadow_hits"].parse().unwrap();
        if shadow_hits == last_shadow_hits && working_set < storm_pool.len() {
            // No gradient signal this pass: the reuse distance is either
            // inside physical capacity (all hits) or past the shadow
            // window (plain misses). Step outward until it bites.
            working_set = (working_set + 300).min(storm_pool.len());
        }
        last_shadow_hits = shadow_hits;
    }

    // Wire traffic too, so the *local* histograms are fed (a connection's
    // loop owns half the shards; PlaneHandle ops are all mailbox-remote).
    let mut client = CacheClient::connect(server.local_addr()).unwrap();
    for i in 0..300 {
        let key = format!("wire-{i}");
        assert!(client.set(key.as_bytes(), 0, b"v").unwrap());
        client.get(key.as_bytes()).unwrap();
    }

    let json = client.stats_json().unwrap();
    let doc: Value = serde_json::from_str(&json).expect("stats json must parse");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("cliffhanger-stats/v1")
    );

    // Per-loop service-time sections, with real samples behind them.
    let loops = doc.get("loops").and_then(Value::as_array).unwrap();
    assert_eq!(loops.len(), 2);
    for entry in loops {
        for class in ["local_latency", "remote_latency"] {
            let summary = entry.get(class).expect("per-loop latency section");
            for field in ["count", "mean_us", "p50_us", "p99_us", "max_us"] {
                assert!(
                    summary.get(field).and_then(Value::as_f64).is_some(),
                    "loop latency summary must carry {field}"
                );
            }
        }
    }
    let service = doc.get("service_latency").unwrap();
    for class in ["local", "remote"] {
        let count = service
            .get(class)
            .and_then(|s| s.get("count"))
            .and_then(Value::as_u64)
            .unwrap();
        assert!(
            count > 0,
            "{class} service-time histogram must have samples"
        );
    }

    // The slow-op log tripped (mailbox hops exceed 1µs) and is counted in
    // both the document and the legacy text surface.
    let slow_ops = doc
        .get("counters")
        .and_then(|c| c.get("slow_ops"))
        .and_then(Value::as_u64)
        .unwrap();
    assert!(slow_ops > 0, "1µs threshold must trip under forwarded load");
    let stats: HashMap<String, String> = client.stats().unwrap().into_iter().collect();
    assert_eq!(stats["plane:slow_ops"].parse::<u64>().unwrap(), slow_ops);

    // The journal holds the transfer with the gradient evidence.
    let events = doc
        .get("journal")
        .and_then(|j| j.get("events"))
        .and_then(Value::as_array)
        .unwrap();
    let transfer = events
        .iter()
        .filter_map(|e| e.get("kind").and_then(|k| k.get("ShardTransfer")))
        .next()
        .expect("journal must record the shard transfer");
    assert!(transfer.get("bytes").and_then(Value::as_u64).unwrap() > 0);
    assert!(transfer
        .get("from_gradient")
        .and_then(Value::as_f64)
        .is_some());
    assert!(transfer
        .get("to_gradient")
        .and_then(Value::as_f64)
        .is_some());

    // The typed journal surface agrees with the JSON exposition.
    let typed = handle.journal_events();
    let (bytes_moved, from_g, to_g) = typed
        .iter()
        .find_map(|e| match &e.kind {
            EventKind::ShardTransfer {
                bytes,
                from_gradient,
                to_gradient,
                ..
            } => Some((*bytes, *from_gradient, *to_gradient)),
            _ => None,
        })
        .expect("typed journal must expose the transfer");
    assert!(bytes_moved > 0);
    assert!(from_g.is_finite() && to_g.is_finite());

    // The Prometheus rendering comes from the same document.
    let prom = client.stats_prom().unwrap();
    assert!(prom.contains("# TYPE cliffhanger_cmd_get_total counter"));
    assert!(
        prom.contains("cliffhanger_service_time_microseconds{class=\"local\",quantile=\"0.99\"}")
    );
    assert!(prom.contains("cliffhanger_rebalance_transfers_total"));
    assert!(prom.contains("cliffhanger_slow_ops_total"));
}
