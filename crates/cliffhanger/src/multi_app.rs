//! Cross-application Cliffhanger (extension).
//!
//! §4.1 notes that the queues Cliffhanger optimises can be "the queue of a
//! slab or a queue of an entire application". [`CliffhangerServer`] applies
//! that idea to a whole Memcachier-style server: every application keeps its
//! own [`Cliffhanger`] cache (hill climbing and cliff scaling across its slab
//! classes), and an *outer* hill climber moves memory between applications
//! whenever one application's long shadow queues signal unmet demand. The
//! within-application climber then redistributes the gained or lost memory
//! among its classes, so the whole hierarchy stays incremental and local.
//!
//! This goes beyond the paper's evaluation (which optimises within an
//! application) and is marked as an extension in DESIGN.md.

use crate::config::CliffhangerConfig;
use crate::controller::Cliffhanger;
use crate::hill_climb::HillClimber;
use cache_core::{AppId, CacheStats, ClassId, Key};
use std::collections::BTreeMap;

/// Per-application configuration for the multi-application server.
#[derive(Clone, Debug)]
pub struct AppConfig {
    /// The application's identifier.
    pub app: AppId,
    /// Its initial memory reservation in bytes.
    pub reserved_bytes: u64,
    /// The Cliffhanger configuration template (its `total_bytes` is replaced
    /// by `reserved_bytes`).
    pub cache: CliffhangerConfig,
}

impl AppConfig {
    /// An application with the default Cliffhanger configuration.
    pub fn new(app: AppId, reserved_bytes: u64) -> Self {
        AppConfig {
            app,
            reserved_bytes,
            cache: CliffhangerConfig::default(),
        }
    }
}

/// A multi-application cache server with hierarchical hill climbing.
#[derive(Debug)]
pub struct CliffhangerServer<V> {
    apps: Vec<AppId>,
    caches: BTreeMap<AppId, Cliffhanger<V>>,
    /// Outer climber over application budgets (same credit mechanics as
    /// Algorithm 1, with applications as the queues).
    app_climber: HillClimber,
    /// Whether cross-application transfers are enabled (if not, each
    /// application keeps its static reservation, as in stock Memcachier).
    cross_app_enabled: bool,
}

impl<V> CliffhangerServer<V> {
    /// Creates a server hosting the given applications. `credit_bytes` and
    /// `min_app_bytes` control the outer (cross-application) climber;
    /// `cross_app_enabled = false` reproduces static reservations.
    pub fn new(
        app_configs: Vec<AppConfig>,
        credit_bytes: u64,
        min_app_bytes: u64,
        cross_app_enabled: bool,
        seed: u64,
    ) -> Self {
        assert!(!app_configs.is_empty(), "at least one application required");
        let apps: Vec<AppId> = app_configs.iter().map(|c| c.app).collect();
        let targets: Vec<u64> = app_configs.iter().map(|c| c.reserved_bytes).collect();
        let mut caches = BTreeMap::new();
        for cfg in app_configs {
            let mut cache_cfg = cfg.cache;
            cache_cfg.total_bytes = cfg.reserved_bytes;
            caches.insert(cfg.app, Cliffhanger::new(cache_cfg));
        }
        CliffhangerServer {
            apps,
            caches,
            app_climber: HillClimber::new(targets, credit_bytes, min_app_bytes, seed),
            cross_app_enabled,
        }
    }

    /// The hosted applications, in construction order.
    pub fn apps(&self) -> &[AppId] {
        &self.apps
    }

    /// Looks up `key` for `app`; `size` routes the request to a slab class.
    pub fn get(&mut self, app: AppId, key: Key, size: u64) -> Option<bool> {
        let app_idx = self.apps.iter().position(|&a| a == app)?;
        let event = {
            let cache = self.caches.get_mut(&app)?;
            cache.get(key, size)?.1
        };
        if self.cross_app_enabled && event.hill_shadow_hit {
            self.transfer_towards(app_idx, key, size);
        }
        Some(event.hit)
    }

    /// Stores `key` for `app`.
    pub fn set(&mut self, app: AppId, key: Key, size: u64, value: V) -> Option<bool> {
        self.caches
            .get_mut(&app)?
            .set(key, size, value)
            .map(|(_, admitted)| admitted)
    }

    /// Deletes `key` for `app`.
    pub fn delete(&mut self, app: AppId, key: Key) -> bool {
        self.caches
            .get_mut(&app)
            .map(|c| c.delete(key))
            .unwrap_or(false)
    }

    /// Moves one credit of memory from a random other application to `app`
    /// and pushes the change down into both applications' class allocations.
    fn transfer_towards(&mut self, app_idx: usize, key: Key, size: u64) {
        let Some(transfer) = self.app_climber.on_shadow_hit(app_idx) else {
            return;
        };
        let loser_app = self.apps[transfer.loser];
        let winner_app = self.apps[transfer.winner];
        // The loser gives up memory from whichever of its classes can afford
        // it; only then does the winner grow (memory must not be created).
        let shrunk = self
            .caches
            .get_mut(&loser_app)
            .map(|c| c.shrink_some_class(transfer.bytes))
            .unwrap_or(false);
        if !shrunk {
            // Undo the outer transfer: the loser could not afford it.
            self.app_climber.set_target(
                transfer.winner,
                self.app_climber.target(transfer.winner) - transfer.bytes,
            );
            self.app_climber.set_target(
                transfer.loser,
                self.app_climber.target(transfer.loser) + transfer.bytes,
            );
            return;
        }
        if let Some(winner) = self.caches.get_mut(&winner_app) {
            let class = winner.class_for_size(size).unwrap_or(ClassId::new(0));
            winner.grow_class(class, transfer.bytes);
        }
        let _ = key;
    }

    /// Current memory budget of an application.
    pub fn reservation(&self, app: AppId) -> Option<u64> {
        self.caches.get(&app).map(|c| c.total_bytes())
    }

    /// Sum of all application budgets (conserved by cross-app climbing).
    pub fn total_reserved(&self) -> u64 {
        self.caches.values().map(|c| c.total_bytes()).sum()
    }

    /// Per-application statistics.
    pub fn per_app_stats(&self) -> BTreeMap<AppId, CacheStats> {
        self.caches
            .iter()
            .map(|(&app, c)| (app, c.stats()))
            .collect()
    }

    /// Aggregate statistics across applications.
    pub fn stats(&self) -> CacheStats {
        self.caches
            .values()
            .fold(CacheStats::new(), |acc, c| acc + c.stats())
    }

    /// The managed cache of one application.
    pub fn cache(&self, app: AppId) -> Option<&Cliffhanger<V>> {
        self.caches.get(&app)
    }

    /// Mutable access to one application's managed cache.
    pub fn cache_mut(&mut self, app: AppId) -> Option<&mut Cliffhanger<V>> {
        self.caches.get_mut(&app)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_core::SlabConfig;

    fn key(i: u64) -> Key {
        Key::new(i)
    }

    fn app_config(app: u32, bytes: u64) -> AppConfig {
        AppConfig {
            app: AppId::new(app),
            reserved_bytes: bytes,
            cache: CliffhangerConfig {
                slab: SlabConfig::new(64, 2.0, 8192),
                credit_bytes: 1 << 10,
                hill_shadow_bytes: 64 << 10,
                cliff_shadow_items: 16,
                min_class_bytes: 4 << 10,
                seed: 3,
                ..CliffhangerConfig::default()
            },
        }
    }

    /// Drives `requests` uniformly random GET-then-fill requests over a
    /// working set of `keys` keys (random access produces the spread of
    /// reuse distances the shadow queues need to observe demand).
    fn drive<VF: Fn(u64) -> u64>(
        server: &mut CliffhangerServer<()>,
        app: AppId,
        keys: u64,
        requests: u64,
        size_of: VF,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(app.0 as u64 + 1);
        for _ in 0..requests {
            let i = rng.gen_range(0..keys);
            let k = key(i);
            let size = size_of(i);
            if server.get(app, k, size) != Some(true) {
                server.set(app, k, size, ());
            }
        }
    }

    #[test]
    fn apps_are_isolated_key_spaces() {
        let mut s: CliffhangerServer<()> = CliffhangerServer::new(
            vec![app_config(0, 1 << 20), app_config(1, 1 << 20)],
            4 << 10,
            128 << 10,
            true,
            1,
        );
        s.set(AppId::new(0), key(1), 100, ());
        assert_eq!(s.get(AppId::new(0), key(1), 100), Some(true));
        assert_eq!(s.get(AppId::new(1), key(1), 100), Some(false));
        assert_eq!(s.get(AppId::new(9), key(1), 100), None);
    }

    #[test]
    fn total_memory_is_conserved_across_apps() {
        let mut s: CliffhangerServer<()> = CliffhangerServer::new(
            vec![
                app_config(0, 2 << 20),
                app_config(1, 2 << 20),
                app_config(2, 2 << 20),
            ],
            4 << 10,
            256 << 10,
            true,
            2,
        );
        let total = s.total_reserved();
        // App 0 is starved (works a set far larger than its share); the
        // others are idle.
        drive(&mut s, AppId::new(0), 40_000, 60_000, |_| 60);
        drive(&mut s, AppId::new(1), 50, 500, |_| 60);
        assert_eq!(s.total_reserved(), total);
    }

    #[test]
    fn starved_app_gains_memory_from_idle_apps() {
        let mut s: CliffhangerServer<()> = CliffhangerServer::new(
            vec![app_config(0, 1 << 20), app_config(1, 4 << 20)],
            16 << 10,
            256 << 10,
            true,
            5,
        );
        let before = s.reservation(AppId::new(0)).unwrap();
        // App 0 needs far more than 1 MB; app 1 touches a few keys only.
        drive(&mut s, AppId::new(0), 30_000, 90_000, |_| 60);
        drive(&mut s, AppId::new(1), 100, 200, |_| 60);
        let after = s.reservation(AppId::new(0)).unwrap();
        assert!(
            after > before,
            "the starved application should gain memory ({before} -> {after})"
        );
        assert!(s.reservation(AppId::new(1)).unwrap() < 4 << 20);
    }

    #[test]
    fn static_reservations_when_cross_app_disabled() {
        let mut s: CliffhangerServer<()> = CliffhangerServer::new(
            vec![app_config(0, 1 << 20), app_config(1, 2 << 20)],
            16 << 10,
            256 << 10,
            false,
            5,
        );
        drive(&mut s, AppId::new(0), 30_000, 30_000, |_| 60);
        assert_eq!(s.reservation(AppId::new(0)), Some(1 << 20));
        assert_eq!(s.reservation(AppId::new(1)), Some(2 << 20));
    }

    #[test]
    fn per_app_stats_accumulate() {
        let mut s: CliffhangerServer<()> = CliffhangerServer::new(
            vec![app_config(0, 1 << 20), app_config(1, 1 << 20)],
            4 << 10,
            128 << 10,
            true,
            1,
        );
        drive(&mut s, AppId::new(0), 100, 200, |_| 60);
        let stats = s.per_app_stats();
        assert!(stats[&AppId::new(0)].gets >= 200);
        assert_eq!(stats[&AppId::new(1)].gets, 0);
        assert_eq!(s.stats().gets, stats[&AppId::new(0)].gets);
    }
}
