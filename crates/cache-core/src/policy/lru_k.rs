//! LRU-K eviction (O'Neil, O'Neil & Weikum, SIGMOD 1993).
//!
//! LRU-K evicts the resident key whose K-th most recent reference lies
//! furthest in the past ("maximum backward K-distance"). Keys with fewer than
//! K references have infinite backward K-distance and are evicted first,
//! ordered among themselves by their most recent reference (the classic
//! tie-break). K = 1 degenerates to plain LRU.

use crate::key::Key;
use crate::lru::HitLocation;
use crate::policy::{EvictionPolicy, PolicyKind};
use std::collections::{BTreeSet, HashMap, VecDeque};

#[derive(Debug)]
struct Meta {
    weight: u64,
    /// Most recent K reference times, newest last.
    history: VecDeque<u64>,
}

/// LRU-K policy; see the module documentation.
#[derive(Debug)]
pub struct LruKPolicy {
    k: u32,
    meta: HashMap<Key, Meta>,
    /// Eviction order: (kth-most-recent reference time or 0, most recent
    /// reference time, key). The smallest element is the victim.
    order: BTreeSet<(u64, u64, Key)>,
    clock: u64,
    total_weight: u64,
}

impl LruKPolicy {
    /// Creates an LRU-K policy with the given K (must be at least 1).
    pub fn new(k: u32) -> Self {
        assert!(k >= 1, "K must be at least 1");
        LruKPolicy {
            k,
            meta: HashMap::new(),
            order: BTreeSet::new(),
            clock: 0,
            total_weight: 0,
        }
    }

    /// The configured K.
    pub fn k(&self) -> u32 {
        self.k
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn order_key(k: u32, meta: &Meta, key: Key) -> (u64, u64, Key) {
        let kth = if meta.history.len() >= k as usize {
            *meta.history.front().expect("history non-empty")
        } else {
            0
        };
        let last = *meta.history.back().expect("history non-empty");
        (kth, last, key)
    }

    fn touch(&mut self, key: Key) -> bool {
        let now = self.tick();
        let Some(meta) = self.meta.get_mut(&key) else {
            return false;
        };
        let old = Self::order_key(self.k, meta, key);
        self.order.remove(&old);
        meta.history.push_back(now);
        while meta.history.len() > self.k as usize {
            meta.history.pop_front();
        }
        let new = Self::order_key(self.k, meta, key);
        self.order.insert(new);
        true
    }
}

impl EvictionPolicy for LruKPolicy {
    fn access(&mut self, key: Key) -> Option<HitLocation> {
        self.touch(key).then_some(HitLocation::Main)
    }

    fn insert(&mut self, key: Key, weight: u64) {
        if let Some(old) = self.meta.remove(&key) {
            self.order.remove(&Self::order_key(self.k, &old, key));
            self.total_weight -= old.weight;
        }
        let now = self.tick();
        let mut history = VecDeque::with_capacity(self.k as usize);
        history.push_back(now);
        let meta = Meta { weight, history };
        self.order.insert(Self::order_key(self.k, &meta, key));
        self.meta.insert(key, meta);
        self.total_weight += weight;
    }

    fn evict(&mut self) -> Option<(Key, u64)> {
        let &(kth, last, key) = self.order.iter().next()?;
        self.order.remove(&(kth, last, key));
        let meta = self.meta.remove(&key).expect("order and meta in sync");
        self.total_weight -= meta.weight;
        Some((key, meta.weight))
    }

    fn remove(&mut self, key: Key) -> Option<u64> {
        let meta = self.meta.remove(&key)?;
        self.order.remove(&Self::order_key(self.k, &meta, key));
        self.total_weight -= meta.weight;
        Some(meta.weight)
    }

    fn contains(&self, key: Key) -> bool {
        self.meta.contains_key(&key)
    }

    fn len(&self) -> usize {
        self.meta.len()
    }

    fn total_weight(&self) -> u64 {
        self.total_weight
    }

    fn set_tail_region(&mut self, _items: usize) {}

    fn kind(&self) -> PolicyKind {
        PolicyKind::LruK(self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::conformance::{basic_contract, key, no_duplicate_evictions};

    #[test]
    fn conforms_to_policy_contract() {
        basic_contract(Box::new(LruKPolicy::new(2)));
        no_duplicate_evictions(Box::new(LruKPolicy::new(2)));
        basic_contract(Box::new(LruKPolicy::new(1)));
    }

    #[test]
    fn items_with_fewer_than_k_references_are_evicted_first() {
        let mut p = LruKPolicy::new(2);
        p.insert(key(1), 1);
        p.access(key(1)); // two references: protected
        p.insert(key(2), 1); // single reference
        p.insert(key(3), 1); // single reference
        assert_eq!(p.evict().unwrap().0, key(2));
        assert_eq!(p.evict().unwrap().0, key(3));
        assert_eq!(p.evict().unwrap().0, key(1));
    }

    #[test]
    fn k1_degenerates_to_lru() {
        let mut p = LruKPolicy::new(1);
        for i in 0..4 {
            p.insert(key(i), 1);
        }
        p.access(key(0));
        assert_eq!(p.evict().unwrap().0, key(1));
        assert_eq!(p.evict().unwrap().0, key(2));
        assert_eq!(p.evict().unwrap().0, key(3));
        assert_eq!(p.evict().unwrap().0, key(0));
    }

    #[test]
    fn victim_has_oldest_kth_reference() {
        let mut p = LruKPolicy::new(2);
        p.insert(key(1), 1);
        p.access(key(1)); // 1's 2nd reference at t=2
        p.insert(key(2), 1);
        p.access(key(2)); // 2's 2nd reference at t=4
        p.access(key(1)); // 1's 2nd-most-recent is now t=2 -> kth = 2
                          // 2's kth = 3 (insert time).
                          // Backward 2-distance: key 1's 2nd most recent ref is t=2, key 2's is
                          // t=3, so key 1 is the victim.
        assert_eq!(p.evict().unwrap().0, key(1));
    }

    #[test]
    #[should_panic(expected = "K must be at least 1")]
    fn zero_k_rejected() {
        let _ = LruKPolicy::new(0);
    }
}
