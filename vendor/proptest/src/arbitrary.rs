//! `any::<T>()` — full-range generation for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_unit_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.next_unit_f64() as f32
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
