//! Plain LRU eviction (Memcached's default policy).

use crate::key::Key;
use crate::lru::{HitLocation, InsertPosition, LruList};
use crate::policy::{EvictionPolicy, PolicyKind};

/// Least-recently-used eviction over a [`LruList`].
#[derive(Debug, Default)]
pub struct LruPolicy {
    list: LruList,
}

impl LruPolicy {
    /// Creates an empty LRU policy.
    pub fn new() -> Self {
        LruPolicy {
            list: LruList::new(),
        }
    }

    /// Creates an LRU policy whose last `tail_items` items report
    /// [`HitLocation::TailRegion`].
    pub fn with_tail_region(tail_items: usize) -> Self {
        LruPolicy {
            list: LruList::with_tail_region(tail_items),
        }
    }

    /// Iterates over resident keys from most- to least-recently used.
    pub fn iter(&self) -> impl Iterator<Item = (Key, u64)> + '_ {
        self.list.iter()
    }
}

impl EvictionPolicy for LruPolicy {
    fn access(&mut self, key: Key) -> Option<HitLocation> {
        self.list.access(key)
    }

    fn insert(&mut self, key: Key, weight: u64) {
        self.list.insert(key, weight, InsertPosition::Top);
    }

    fn evict(&mut self) -> Option<(Key, u64)> {
        self.list.pop_lru()
    }

    fn remove(&mut self, key: Key) -> Option<u64> {
        self.list.remove(key)
    }

    fn contains(&self, key: Key) -> bool {
        self.list.contains(key)
    }

    fn len(&self) -> usize {
        self.list.len()
    }

    fn total_weight(&self) -> u64 {
        self.list.total_weight()
    }

    fn set_tail_region(&mut self, items: usize) {
        self.list.set_tail_region(items);
    }

    fn supports_tail_region(&self) -> bool {
        true
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Lru
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::conformance::{basic_contract, key, no_duplicate_evictions};

    #[test]
    fn conforms_to_policy_contract() {
        basic_contract(Box::new(LruPolicy::new()));
        no_duplicate_evictions(Box::new(LruPolicy::new()));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut p = LruPolicy::new();
        for i in 0..4 {
            p.insert(key(i), 1);
        }
        p.access(key(0));
        p.access(key(1));
        assert_eq!(p.evict().unwrap().0, key(2));
        assert_eq!(p.evict().unwrap().0, key(3));
        assert_eq!(p.evict().unwrap().0, key(0));
        assert_eq!(p.evict().unwrap().0, key(1));
    }

    #[test]
    fn tail_region_is_supported() {
        let mut p = LruPolicy::with_tail_region(2);
        assert!(p.supports_tail_region());
        for i in 0..5 {
            p.insert(key(i), 1);
        }
        assert_eq!(p.access(key(0)), Some(HitLocation::TailRegion));
        assert_eq!(p.access(key(4)), Some(HitLocation::Main));
    }

    #[test]
    fn kind_tag() {
        assert_eq!(LruPolicy::new().kind(), PolicyKind::Lru);
        assert!(PolicyKind::Lru.supports_tail_region());
    }
}
