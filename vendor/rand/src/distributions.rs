//! The distribution subset the workspace uses: `Standard` (for `gen()`),
//! and `WeightedIndex` over `f64` weights.

use crate::{unit_f64, Rng};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws a sample using `rng` as the source of randomness.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution: uniform over the type's full/unit range.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        unit_f64(rng.next_u64()) as f32
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Error returned by [`WeightedIndex::new`] for invalid weight sets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightedError(pub &'static str);

impl std::fmt::Display for WeightedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for WeightedError {}

/// Samples indices `0..weights.len()` proportionally to the weights.
#[derive(Clone, Debug)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
}

impl WeightedIndex {
    /// Builds the sampler from an iterator of non-negative weights.
    pub fn new<I>(weights: I) -> Result<Self, WeightedError>
    where
        I: IntoIterator,
        I::Item: Into<f64>,
    {
        let mut cumulative = Vec::new();
        let mut total = 0.0f64;
        for w in weights {
            let w: f64 = w.into();
            if !w.is_finite() || w < 0.0 {
                return Err(WeightedError("invalid weight"));
            }
            total += w;
            cumulative.push(total);
        }
        if cumulative.is_empty() || total <= 0.0 {
            return Err(WeightedError("no valid weights"));
        }
        Ok(WeightedIndex { cumulative })
    }
}

impl Distribution<usize> for WeightedIndex {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty by construction");
        let x = unit_f64(rng.next_u64()) * total;
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("finite by construction"))
        {
            Ok(i) => i + 1,
            Err(i) => i,
        }
        .min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn weighted_index_tracks_weights() {
        let w = WeightedIndex::new(vec![1.0f64, 3.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 2];
        for _ in 0..40_000 {
            counts[w.sample(&mut rng)] += 1;
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((2.5..3.5).contains(&ratio), "ratio {ratio} far from 3.0");
    }

    #[test]
    fn rejects_bad_weights() {
        assert!(WeightedIndex::new(Vec::<f64>::new()).is_err());
        assert!(WeightedIndex::new(vec![-1.0f64]).is_err());
        assert!(WeightedIndex::new(vec![0.0f64, 0.0]).is_err());
    }
}
