//! End-to-end concurrency: eight client threads (on two server event
//! loops) hammer a running `CacheServer` with mixed GET/SET/DELETE
//! traffic and the test asserts
//! (1) no lost updates — every thread's final write is the value the server
//! returns, and the wire counters account for every operation exactly;
//! (2) correct `END` framing under pipelined multi-key GETs; and
//! (3) clean shutdown with connections mid-flight — `shutdown()` returns,
//! the workers observe disconnection as I/O errors (never panics or hangs).

use cliffhanger_repro::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn start_server(workers: usize) -> CacheServer {
    CacheServer::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        backend: BackendConfig {
            total_bytes: 32 << 20,
            mode: BackendMode::Cliffhanger,
            ..BackendConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("server must start")
}

const THREADS: usize = 8;
const ITERS: usize = 200;
const OWN_KEYS: usize = 8;

#[test]
fn eight_threads_mixed_ops_no_lost_updates() {
    // Eight client connections on two event loops: connections no longer
    // pin a worker thread each, so conns ≫ workers is the normal shape.
    let server = start_server(2);
    let addr = server.local_addr();
    let total_sets = Arc::new(AtomicU64::new(0));
    let total_deletes = Arc::new(AtomicU64::new(0));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let total_sets = Arc::clone(&total_sets);
            let total_deletes = Arc::clone(&total_deletes);
            std::thread::spawn(move || -> Vec<(String, String)> {
                let mut client = CacheClient::connect(addr).expect("connect");
                let mut last: Vec<Option<String>> = vec![None; OWN_KEYS];
                let mut sets = 0u64;
                let mut deletes = 0u64;
                for i in 0..ITERS {
                    let slot = i % OWN_KEYS;
                    let key = format!("own-{t}-{slot}");
                    match i % 5 {
                        // Mostly writes with a version stamp…
                        0..=2 => {
                            let value = format!("v-{t}-{slot}-{i}-{}", "x".repeat(i % 40));
                            assert!(client.set(key.as_bytes(), 0, value.as_bytes()).unwrap());
                            sets += 1;
                            last[slot] = Some(value);
                        }
                        // …a read that must observe this thread's last write
                        // (nobody else writes own-{t}-* keys)…
                        3 => {
                            let got = client.get(key.as_bytes()).unwrap();
                            match &last[slot] {
                                Some(expected) => {
                                    let (_, data) = got.expect("own write visible");
                                    assert_eq!(data, expected.as_bytes(), "lost update on {key}");
                                }
                                None => assert!(got.is_none(), "phantom value on {key}"),
                            }
                        }
                        // …and a delete, which must report reality.
                        _ => {
                            let existed = client.delete(key.as_bytes()).unwrap();
                            assert_eq!(existed, last[slot].is_some(), "delete lied on {key}");
                            deletes += 1;
                            last[slot] = None;
                        }
                    }
                    // Contended traffic on shared keys: any returned value
                    // must be a complete, well-formed write from some thread.
                    let shared = format!("shared-{}", i % 4);
                    if i % 3 == 0 {
                        let value = format!("s-{t}-{i}-{}", "y".repeat(t * 7 % 23));
                        assert!(client.set(shared.as_bytes(), 0, value.as_bytes()).unwrap());
                        sets += 1;
                    } else if let Some((_, data)) = client.get(shared.as_bytes()).unwrap() {
                        let text = String::from_utf8(data).expect("shared value is utf8");
                        assert!(
                            text.starts_with("s-") && text.split('-').count() >= 3,
                            "interleaved/corrupt shared value: {text:?}"
                        );
                    }
                }
                total_sets.fetch_add(sets, Ordering::Relaxed);
                total_deletes.fetch_add(deletes, Ordering::Relaxed);
                // Report this thread's surviving keys for the final audit.
                (0..OWN_KEYS)
                    .filter_map(|slot| last[slot].clone().map(|v| (format!("own-{t}-{slot}"), v)))
                    .collect()
            })
        })
        .collect();

    let mut survivors = Vec::new();
    for handle in handles {
        survivors.extend(handle.join().expect("worker must not panic"));
    }

    // Final audit from a fresh connection: every surviving write is intact.
    let mut auditor = CacheClient::connect(addr).unwrap();
    for (key, expected) in &survivors {
        let (_, data) = auditor
            .get(key.as_bytes())
            .unwrap()
            .unwrap_or_else(|| panic!("surviving key {key} lost"));
        assert_eq!(&data, expected.as_bytes(), "lost update on {key}");
    }

    // The wire counters must account for every operation exactly.
    let stats: std::collections::HashMap<_, _> = server.cache().stats().into_iter().collect();
    let cmd_set: u64 = stats["cmd_set"].parse().unwrap();
    let cmd_delete: u64 = stats["cmd_delete"].parse().unwrap();
    assert_eq!(cmd_set, total_sets.load(Ordering::Relaxed));
    assert_eq!(cmd_delete, total_deletes.load(Ordering::Relaxed));
}

/// Multi-key GETs under concurrent writers: every response frame must be a
/// well-formed `VALUE…`* `END` block whose payload lengths are exact.
#[test]
fn multiget_end_framing_under_concurrent_writes() {
    let server = start_server(1);
    let addr = server.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let writer_stop = Arc::clone(&stop);
    let writer = std::thread::spawn(move || {
        let mut client = CacheClient::connect(addr).unwrap();
        let mut i = 0u64;
        while !writer_stop.load(Ordering::Relaxed) {
            let key = format!("mg-{}", i % 16);
            let value = format!("w-{i}-{}", "z".repeat((i % 97) as usize));
            client.set(key.as_bytes(), 0, value.as_bytes()).unwrap();
            i += 1;
        }
    });

    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer_half = stream;
    for round in 0..100 {
        let keys: Vec<String> = (0..8).map(|k| format!("mg-{}", (round + k) % 16)).collect();
        let request = format!("get {}\r\n", keys.join(" "));
        writer_half.write_all(request.as_bytes()).unwrap();
        // Parse the full response frame strictly.
        loop {
            let mut line = String::new();
            assert!(reader.read_line(&mut line).unwrap() > 0, "early EOF");
            let line = line.trim_end_matches(['\r', '\n']).to_string();
            if line == "END" {
                break;
            }
            let rest = line.strip_prefix("VALUE ").expect("VALUE or END only");
            let mut parts = rest.split_ascii_whitespace();
            let key = parts.next().expect("key present");
            assert!(keys.iter().any(|k| k == key), "unrequested key {key}");
            let _flags: u32 = parts.next().unwrap().parse().unwrap();
            let len: usize = parts.next().unwrap().parse().unwrap();
            let mut payload = vec![0u8; len + 2];
            reader.read_exact(&mut payload).unwrap();
            assert_eq!(&payload[len..], b"\r\n", "payload length must be exact");
            let text = String::from_utf8(payload[..len].to_vec()).unwrap();
            assert!(text.starts_with("w-"), "corrupt payload {text:?}");
        }
    }

    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
}

#[test]
fn clean_shutdown_with_connections_mid_flight() {
    let mut server = start_server(2);
    let addr = server.local_addr();
    let disconnected = Arc::new(AtomicU64::new(0));

    let handles: Vec<_> = (0..4)
        .map(|t| {
            let disconnected = Arc::clone(&disconnected);
            std::thread::spawn(move || {
                let mut client = match CacheClient::connect(addr) {
                    Ok(c) => c,
                    Err(_) => {
                        disconnected.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                };
                for i in 0u64.. {
                    let key = format!("flight-{t}-{}", i % 32);
                    let result = client
                        .set(key.as_bytes(), 0, b"payload")
                        .and_then(|_| client.get(key.as_bytes()).map(|_| ()));
                    if result.is_err() {
                        // Disconnection must surface as an I/O error, which
                        // is the clean outcome — never a panic or a hang.
                        disconnected.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
            })
        })
        .collect();

    // Let the workers get properly mid-flight, then pull the plug.
    std::thread::sleep(std::time::Duration::from_millis(150));
    server.shutdown();

    for handle in handles {
        handle.join().expect("mid-flight worker must not panic");
    }
    assert_eq!(
        disconnected.load(Ordering::Relaxed),
        4,
        "every worker must observe the shutdown as a disconnect"
    );

    // The listener is really gone: no new connections are accepted and the
    // second shutdown is a no-op.
    server.shutdown();
}
