//! Named, phased chaos/replay scenarios with pass/fail invariants.
//!
//! A stationary benchmark never sees Cliffhanger's cliffs: the paper's
//! Figure-4 shape appears under *sequential scans*, and the interesting
//! multi-tenant behaviour appears under working-set drift, diurnal rate
//! swings and tenant churn. This module turns those shapes into named,
//! repeatable **scenarios**: an ordered list of phases (each with its own
//! request budget, arrival mode, GET fraction, time-varying Zipf exponent,
//! working-set drift and optional key-range scan), a set of **chaos
//! actors** that harass the server while the measured phases run
//! (connection churn, slow-loris clients, mid-value disconnects,
//! `app_create` storms), and a set of **invariants** checked when the run
//! ends — zero protocol errors, budget conservation in the scraped
//! `stats json` document, bounded p99 per phase, and `curr_connections`
//! returning to baseline once the chaos stops.
//!
//! Every run self-hosts a server, drives it, scrapes its
//! `cliffhanger-stats/v1` telemetry and emits one versioned
//! `cliffhanger-scenario/v1` report with per-phase latency summaries and
//! one named verdict per invariant. `run_scenario` is the engine;
//! [`named_scenario`] is the registry behind `loadgen --scenario <name>`
//! and the `scenario_matrix` bench binary.

use crate::runner::{
    claim, encode_op, open_loop_step, record, select_app, Conn, OpKind, Pacer, WorkerStats,
    PAYLOAD_POOL_BYTES,
};
use crate::telemetry::LatencySummary;
use crate::workload::{GenOp, RequestGen};
use cache_server::{
    BackendConfig, CacheClient, CacheServer, HotKeyConfig, ServerConfig, TenantSpec,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};
use workloads::KeyPopularity;

/// Schema tag of a single scenario report.
pub const SCENARIO_SCHEMA: &str = "cliffhanger-scenario/v1";
/// Schema tag of the matrix wrapper emitted by `scenario_matrix`.
pub const SCENARIO_MATRIX_SCHEMA: &str = "cliffhanger-scenario-matrix/v1";

/// How many times per phase the (expensive, O(keys)) Zipf sampler is
/// rebuilt while the exponent interpolates from `zipf_start` to
/// `zipf_end`.
const ZIPF_STEPS: usize = 8;

/// Phase request budgets never scale below this, so even extreme smoke
/// factors produce a statistically non-degenerate phase.
const MIN_PHASE_REQUESTS: u64 = 300;

/// An optional sequential scan mixed into a phase — the traffic shape that
/// produces the paper's Figure-4 performance cliff under LRU.
#[derive(Clone, Debug)]
pub struct ScanSpec {
    /// First rank of the scanned key range.
    pub start_rank: u64,
    /// Number of keys in the scanned range (the scan wraps).
    pub length: u64,
    /// Fraction of the phase's requests that are scan GETs (the rest
    /// follow the phase's popularity model).
    pub fraction: f64,
}

/// An optional single-key flash crowd mixed into a phase: a fraction of
/// the phase's requests are GETs of one fixed key. Under the
/// shared-nothing plane that key's owner loop becomes the bottleneck —
/// the traffic shape the hot-key replication path exists to absorb.
///
/// The spike key should sit *outside* the phase's popularity universe
/// (and drift range), so the versioned probe stays the key's only writer
/// and the `no_stale_reads` invariant has teeth.
#[derive(Clone, Debug)]
pub struct SpikeSpec {
    /// Rank of the spiked key (see `RequestGen::key_for_rank`).
    pub key_rank: u64,
    /// Fraction of the phase's requests that are spike GETs.
    pub fraction: f64,
}

/// One phase of a scenario: a request budget driven in one arrival mode
/// with one (possibly time-varying) traffic mix.
#[derive(Clone, Debug)]
pub struct Phase {
    /// Phase name, used in the report and in `p99_bounded[<name>]`.
    pub name: String,
    /// Requests generated in this phase (before demand fills).
    pub requests: u64,
    /// Open-loop target arrival rate across all connections; `None` drives
    /// the phase closed-loop (pipelined, fixed concurrency).
    pub rate: Option<f64>,
    /// Fraction of generated requests that are GETs.
    pub get_fraction: f64,
    /// Number of keys in the phase's popularity model.
    pub num_keys: u64,
    /// Zipf exponent at the start of the phase (≤ 0 means uniform).
    pub zipf_start: f64,
    /// Zipf exponent at the end of the phase; interpolated linearly over
    /// the phase's progress, quantized into a few sampler rebuilds.
    pub zipf_end: f64,
    /// Working-set offset (in ranks) at the start of the phase: the
    /// popularity model's rank 0 maps to this key rank.
    pub offset_start: u64,
    /// Working-set offset at the end of the phase; interpolating between
    /// the two slides the working set across the key space (drift).
    pub offset_end: u64,
    /// Optional sequential scan mixed into the phase.
    pub scan: Option<ScanSpec>,
    /// Optional single-key flash crowd mixed into the phase.
    pub spike: Option<SpikeSpec>,
    /// Fixed value payload size in bytes.
    pub value_bytes: usize,
}

impl Phase {
    /// A closed-loop phase with a stationary Zipf mix — the baseline shape
    /// most scenarios start from.
    pub fn steady(name: &str, requests: u64, num_keys: u64, exponent: f64) -> Phase {
        Phase {
            name: name.to_string(),
            requests,
            rate: None,
            get_fraction: 0.9,
            num_keys,
            zipf_start: exponent,
            zipf_end: exponent,
            offset_start: 0,
            offset_end: 0,
            scan: None,
            spike: None,
            value_bytes: 256,
        }
    }
}

/// The Zipf exponent of `phase` at `progress` ∈ [0, 1], interpolated
/// linearly (and monotonically) between `zipf_start` and `zipf_end`.
pub fn zipf_exponent_at(phase: &Phase, progress: f64) -> f64 {
    let p = progress.clamp(0.0, 1.0);
    phase.zipf_start + (phase.zipf_end - phase.zipf_start) * p
}

/// The working-set offset of `phase` at `progress` ∈ [0, 1], interpolated
/// linearly (and monotonically) between `offset_start` and `offset_end`.
pub fn drift_offset_at(phase: &Phase, progress: f64) -> u64 {
    let p = progress.clamp(0.0, 1.0);
    let (s, e) = (phase.offset_start as f64, phase.offset_end as f64);
    (s + (e - s) * p).round() as u64
}

/// A chaos actor harassing the server while the measured phases run.
#[derive(Clone, Debug)]
pub enum Chaos {
    /// Short-lived connections opened (and dropped) at a target rate;
    /// alternating polite (one GET, read the reply) and abrupt (drop
    /// without reading) closes.
    ConnChurn {
        /// Connections opened per second.
        per_sec: f64,
    },
    /// Clients that hold half-written commands on open connections,
    /// completing each held command only after a dwell — the classic
    /// slow-loris shape a per-connection-thread server cannot survive.
    SlowLoris {
        /// Concurrent slow connections.
        clients: usize,
        /// How long each half-written command is held, in milliseconds.
        hold_ms: u64,
    },
    /// Connections that send a SET header plus part of the value and then
    /// disconnect, leaving the server holding a half-received payload.
    MidValueDisconnect {
        /// Disconnects per second.
        per_sec: f64,
    },
    /// An `app_create` storm: new tenants registered under fire, forcing
    /// budget re-carving while the data plane is busy.
    TenantStorm {
        /// Total tenants created over the run (pacing permitting).
        tenants: u64,
        /// Creations per second.
        per_sec: f64,
    },
}

/// A pass/fail condition evaluated over the finished run.
#[derive(Clone, Debug)]
pub enum Invariant {
    /// No protocol errors or refused stores anywhere in the run
    /// (scenarios size `max_connections` so shedding never hits the
    /// measured drivers).
    ZeroErrors,
    /// The scraped `stats json` document conserves the byte budget: the
    /// per-tenant budgets sum exactly to `capacity.limit_maxbytes`, even
    /// after drift, arbitration and tenant-churn storms.
    BudgetConservation,
    /// The named phase's client-observed p99 stays at or below a bound
    /// (microseconds). Verdict name: `p99_bounded[<phase>]`.
    PhaseP99Below {
        /// The phase the bound applies to.
        phase: String,
        /// The bound in microseconds.
        max_us: f64,
    },
    /// After the drivers and every chaos actor disconnect,
    /// `connections.curr` drains back to the single stats probe —
    /// churned and half-dead connections must not leak.
    ConnectionsReturnToBaseline,
    /// The versioned probe (active whenever a phase carries a
    /// [`SpikeSpec`]) observed no stale read: every GET of the spike key
    /// returned a version at or past the last write that was acknowledged
    /// before the GET began, while hot-key promotion churned the key in
    /// and out of the replica caches. Vacuous probes fail — the probe must
    /// have read real versions for the verdict to mean anything.
    NoStaleReads,
}

impl Invariant {
    /// The verdict name this invariant reports under.
    pub fn name(&self) -> String {
        match self {
            Invariant::ZeroErrors => "zero_errors".to_string(),
            Invariant::BudgetConservation => "budget_conservation".to_string(),
            Invariant::PhaseP99Below { phase, .. } => format!("p99_bounded[{phase}]"),
            Invariant::ConnectionsReturnToBaseline => "connections_baseline".to_string(),
            Invariant::NoStaleReads => "no_stale_reads".to_string(),
        }
    }
}

/// A named, phased scenario: what to host, how to drive it, what chaos to
/// inject, and what must hold at the end.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Scenario name (the registry key).
    pub name: String,
    /// One-line description, echoed in the report.
    pub description: String,
    /// Self-hosted cache budget in bytes.
    pub total_bytes: u64,
    /// Self-hosted shard count (0 lets the backend pick).
    pub shards: usize,
    /// Server event loops (0 auto-detects).
    pub workers: usize,
    /// Driver connections (one worker thread each).
    pub connections: usize,
    /// Closed-loop pipeline depth.
    pub pipeline: usize,
    /// Keys SET before the measured window opens (striped across the
    /// drivers of each tenant).
    pub warmup_keys: u64,
    /// Demand-fill every GET miss, cache-aside style.
    pub fill_on_miss: bool,
    /// Enable hot-key detection and per-loop replication on the
    /// self-hosted server (the aggressive test profile: sample every GET,
    /// promote fast, round often).
    pub hot_key_promote: bool,
    /// Tenants to host besides `default`; drivers round-robin across them
    /// (all drivers use `default` when empty).
    pub tenants: Vec<(String, u64)>,
    /// The measured phases, run in order by every driver.
    pub phases: Vec<Phase>,
    /// Chaos actors active for the whole measured window.
    pub chaos: Vec<Chaos>,
    /// Invariants evaluated over the finished run.
    pub invariants: Vec<Invariant>,
    /// Scale factor already applied by [`Scenario::scaled`] (1.0 = the
    /// standard, nightly-sized definition).
    pub scale: f64,
}

impl Scenario {
    /// Scales the scenario's request volume by `factor` (phase budgets,
    /// warm-up, tenant-storm size), flooring each phase so smoke runs stay
    /// statistically meaningful. Key universes, cache size and chaos
    /// *rates* are untouched — a smoke run is a shorter window over the
    /// same traffic shape, not a different experiment.
    pub fn scaled(mut self, factor: f64) -> Scenario {
        if (factor - 1.0).abs() < f64::EPSILON {
            return self;
        }
        for phase in &mut self.phases {
            phase.requests = ((phase.requests as f64 * factor) as u64).max(MIN_PHASE_REQUESTS);
        }
        self.warmup_keys = ((self.warmup_keys as f64 * factor) as u64).max(200);
        for chaos in &mut self.chaos {
            if let Chaos::TenantStorm { tenants, .. } = chaos {
                *tenants = ((*tenants as f64 * factor) as u64).max(6);
            }
        }
        self.scale *= factor;
        self
    }

    /// Replaces every phase-p99 bound with `max_us`, adding one per phase
    /// if the scenario had none — the lever behind `scenario_matrix
    /// --p99-us`, used by CI to prove a deliberately-broken invariant
    /// fails the run with a named verdict.
    pub fn override_p99(&mut self, max_us: f64) {
        self.invariants
            .retain(|i| !matches!(i, Invariant::PhaseP99Below { .. }));
        for phase in &self.phases {
            self.invariants.push(Invariant::PhaseP99Below {
                phase: phase.name.clone(),
                max_us,
            });
        }
    }

    /// Total generated requests across all phases (fills excluded).
    pub fn total_requests(&self) -> u64 {
        self.phases.iter().map(|p| p.requests).sum()
    }
}

// ---------------------------------------------------------------------------
// Report types.
// ---------------------------------------------------------------------------

/// One phase's measured slice of a scenario run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PhaseReport {
    /// Phase name.
    pub name: String,
    /// `closed` or `open`.
    pub mode: String,
    /// Open-loop target rate (0 for closed phases).
    pub target_rps: f64,
    /// Requests completed in the phase (demand fills included).
    pub requests: u64,
    /// GETs completed.
    pub gets: u64,
    /// GETs answered with a value.
    pub get_hits: u64,
    /// GET hit rate (0 when no GETs were issued).
    pub hit_rate: f64,
    /// SETs completed (fills included).
    pub sets: u64,
    /// Demand-fill SETs among `sets`.
    pub fills: u64,
    /// Refused stores plus protocol surprises.
    pub errors: u64,
    /// Wall-clock seconds of the phase.
    pub elapsed_secs: f64,
    /// Completed requests per second over the phase.
    pub throughput_rps: f64,
    /// Latency over every request in the phase (schedule-anchored in open
    /// phases, batch-anchored in closed phases).
    pub latency: LatencySummary,
}

/// What the versioned spike-key probe observed, for the `no_stale_reads`
/// invariant: a writer SETs monotonically versioned payloads and
/// publishes each version only after the server acknowledged it; readers
/// on separate connections snapshot that frontier before every GET and
/// count a stale read whenever the observed version falls behind it.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ProbeReport {
    /// Acknowledged probe writes (the final published version).
    pub writes: u64,
    /// Probe GETs that returned a parseable versioned value.
    pub reads: u64,
    /// Probe GETs that missed (the key was evicted; not a staleness
    /// signal — the next acknowledged write repopulates it).
    pub misses: u64,
    /// Reads whose observed version fell behind the acknowledged
    /// frontier snapshotted before the GET — must be zero.
    pub stale_reads: u64,
}

/// What the chaos actors actually did, for report forensics.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ChaosReport {
    /// Short-lived churn connections successfully opened.
    pub churn_conns_opened: u64,
    /// Churn connection attempts the OS or the accept gate refused.
    pub churn_conns_failed: u64,
    /// Half-written commands held and later completed by slow-loris
    /// clients.
    pub slow_loris_holds: u64,
    /// Connections dropped mid-value.
    pub mid_value_disconnects: u64,
    /// Tenants created by the `app_create` storm.
    pub tenants_created: u64,
}

/// One invariant's named verdict.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InvariantVerdict {
    /// The invariant's name (e.g. `p99_bounded[scan]`).
    pub name: String,
    /// Whether it held.
    pub pass: bool,
    /// Human-readable evidence (observed vs required).
    pub detail: String,
}

/// The versioned `cliffhanger-scenario/v1` document one scenario run
/// emits. Additive evolution only, like every other report schema.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Schema tag: `cliffhanger-scenario/v1`.
    pub schema: String,
    /// Scenario name.
    pub scenario: String,
    /// Scenario description, echoed.
    pub description: String,
    /// Scale factor the run used (1.0 = standard size).
    pub scale: f64,
    /// Driver connections.
    pub connections: u64,
    /// Requests completed across all phases (fills included).
    pub requests: u64,
    /// Wall-clock seconds of the whole measured window.
    pub elapsed_secs: f64,
    /// Total errors across all phases.
    pub errors: u64,
    /// Per-phase measurements, in phase order.
    pub phases: Vec<PhaseReport>,
    /// What the chaos actors did.
    pub chaos: ChaosReport,
    /// `connections.curr` right after the drivers connected (drivers plus
    /// the stats probe), before any chaos started.
    pub conn_baseline: u64,
    /// `connections.curr` after drivers and chaos disconnected (the stats
    /// probe alone when nothing leaked).
    pub conn_final: u64,
    /// Named invariant verdicts.
    pub invariants: Vec<InvariantVerdict>,
    /// Whether every invariant held.
    pub passed: bool,
    /// The server's scraped `cliffhanger-stats/v1` document.
    pub server_stats: Option<Value>,
    /// What the versioned spike-key probe observed; absent when no phase
    /// carried a [`SpikeSpec`].
    pub probe: Option<ProbeReport>,
}

impl ScenarioReport {
    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }
}

/// The matrix wrapper `scenario_matrix` emits: one scenario report per
/// named scenario it ran.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ScenarioMatrixReport {
    /// Schema tag: `cliffhanger-scenario-matrix/v1`.
    pub schema: String,
    /// Scale factor applied to every scenario in the matrix.
    pub scale: f64,
    /// The individual scenario reports, in run order.
    pub scenarios: Vec<ScenarioReport>,
}

impl ScenarioMatrixReport {
    /// Serializes the matrix as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }
}

// ---------------------------------------------------------------------------
// Invariant evaluation (pure over the collected report, so canned reports
// can exercise both verdict polarities without a live server).
// ---------------------------------------------------------------------------

/// Evaluates `invariants` over a collected report (ignoring whatever
/// verdicts it already carries) and returns one named verdict each.
pub fn evaluate_invariants(
    invariants: &[Invariant],
    report: &ScenarioReport,
) -> Vec<InvariantVerdict> {
    invariants
        .iter()
        .map(|inv| {
            let (pass, detail) = match inv {
                Invariant::ZeroErrors => (
                    report.errors == 0,
                    format!("{} errors across all phases", report.errors),
                ),
                Invariant::BudgetConservation => budget_conservation(report),
                Invariant::PhaseP99Below { phase, max_us } => {
                    match report.phases.iter().find(|p| &p.name == phase) {
                        None => (false, format!("phase {phase} missing from the report")),
                        Some(p) if p.latency.count == 0 => {
                            (false, format!("phase {phase} recorded no latencies"))
                        }
                        Some(p) => (
                            p.latency.p99_us <= *max_us,
                            format!(
                                "phase {phase} p99 {:.0}µs vs bound {max_us:.0}µs",
                                p.latency.p99_us
                            ),
                        ),
                    }
                }
                Invariant::ConnectionsReturnToBaseline => (
                    report.conn_final <= 1,
                    format!(
                        "curr_connections drained to {} (baseline {}, probe-only floor 1)",
                        report.conn_final, report.conn_baseline
                    ),
                ),
                Invariant::NoStaleReads => match &report.probe {
                    None => (false, "no versioned probe ran".to_string()),
                    Some(p) => (
                        p.stale_reads == 0 && p.reads > 0,
                        format!(
                            "{} stale of {} versioned probe reads ({} misses, {} writes)",
                            p.stale_reads, p.reads, p.misses, p.writes
                        ),
                    ),
                },
            };
            InvariantVerdict {
                name: inv.name(),
                pass,
                detail,
            }
        })
        .collect()
}

/// Budget conservation over the scraped stats document: per-tenant budgets
/// sum exactly to `capacity.limit_maxbytes`.
fn budget_conservation(report: &ScenarioReport) -> (bool, String) {
    let Some(stats) = &report.server_stats else {
        return (false, "no scraped stats document to check".to_string());
    };
    let Some(limit) = stats
        .get("capacity")
        .and_then(|c| c.get("limit_maxbytes"))
        .and_then(Value::as_u64)
    else {
        return (
            false,
            "stats document lacks capacity.limit_maxbytes".to_string(),
        );
    };
    let Some(tenants) = stats.get("tenants").and_then(Value::as_array) else {
        return (false, "stats document lacks a tenants array".to_string());
    };
    let tenant_sum: u64 = tenants
        .iter()
        .filter_map(|t| t.get("budget").and_then(Value::as_u64))
        .sum();
    (
        tenant_sum == limit,
        format!(
            "{} tenant budgets sum to {tenant_sum} vs limit_maxbytes {limit}",
            tenants.len()
        ),
    )
}

// ---------------------------------------------------------------------------
// The phase-aware request generator.
// ---------------------------------------------------------------------------

/// A per-worker, per-phase generator: a quantized time-varying Zipf
/// sampler, linear working-set drift, and an optional interleaved scan
/// striped across the workers.
struct PhaseGen {
    phase: Phase,
    sampler: workloads::zipf::PopularitySampler,
    step: usize,
    progress: f64,
    rng: StdRng,
    scan_cursor: u64,
    scan_stride: u64,
}

fn sampler_for(num_keys: u64, exponent: f64) -> workloads::zipf::PopularitySampler {
    let keys = if exponent > 0.0 {
        KeyPopularity::Zipf { num_keys, exponent }
    } else {
        KeyPopularity::Uniform { num_keys }
    };
    keys.sampler()
}

impl PhaseGen {
    fn new(phase: &Phase, worker: u64, workers: u64, seed: u64) -> PhaseGen {
        PhaseGen {
            sampler: sampler_for(
                phase.num_keys,
                zipf_exponent_at(phase, 0.5 / ZIPF_STEPS as f64),
            ),
            phase: phase.clone(),
            step: 0,
            progress: 0.0,
            rng: StdRng::seed_from_u64(seed ^ worker.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            scan_cursor: worker,
            scan_stride: workers.max(1),
        }
    }

    /// Advances the phase clock: `progress` ∈ [0, 1] is the fraction of
    /// the phase budget already claimed. The Zipf sampler is rebuilt at
    /// most [`ZIPF_STEPS`] times per phase (the CDF build is O(keys)).
    fn advance(&mut self, progress: f64) {
        self.progress = progress.clamp(0.0, 1.0);
        if (self.phase.zipf_end - self.phase.zipf_start).abs() > f64::EPSILON {
            let step = ((self.progress * ZIPF_STEPS as f64) as usize).min(ZIPF_STEPS - 1);
            if step != self.step {
                self.step = step;
                let mid = (step as f64 + 0.5) / ZIPF_STEPS as f64;
                self.sampler = sampler_for(self.phase.num_keys, zipf_exponent_at(&self.phase, mid));
            }
        }
    }

    fn next_op(&mut self) -> GenOp {
        if let Some(spike) = &self.phase.spike {
            if self.rng.gen_bool(spike.fraction.clamp(0.0, 1.0)) {
                // The flash crowd: everyone GETs the same key. Never a SET
                // — the versioned probe is the spike key's only writer.
                return GenOp::Get {
                    key: RequestGen::key_for_rank(spike.key_rank),
                };
            }
        }
        if let Some(scan) = &self.phase.scan {
            if self.rng.gen_bool(scan.fraction.clamp(0.0, 1.0)) {
                let rank = scan.start_rank + (self.scan_cursor % scan.length.max(1));
                self.scan_cursor += self.scan_stride;
                return GenOp::Get {
                    key: RequestGen::key_for_rank(rank),
                };
            }
        }
        let rank = self.sampler.sample(&mut self.rng) + drift_offset_at(&self.phase, self.progress);
        let key = RequestGen::key_for_rank(rank);
        if self.rng.gen_bool(self.phase.get_fraction.clamp(0.0, 1.0)) {
            GenOp::Get { key }
        } else {
            GenOp::Set {
                key,
                size: self.phase.value_bytes,
            }
        }
    }

    fn fill_for(&self, rank: u64) -> GenOp {
        GenOp::Set {
            key: RequestGen::key_for_rank(rank),
            size: self.phase.value_bytes,
        }
    }
}

// ---------------------------------------------------------------------------
// The driver workers.
// ---------------------------------------------------------------------------

/// Everything one scenario worker thread needs.
struct WorkerCtx {
    addr: String,
    tenant: String,
    stripe: usize,
    siblings: usize,
    worker: u64,
    workers: u64,
    phases: Arc<Vec<Phase>>,
    budgets: Arc<Vec<Arc<AtomicU64>>>,
    gate: Arc<Barrier>,
    pool: Arc<Vec<u8>>,
    pipeline: u64,
    fill_on_miss: bool,
    warmup_keys: u64,
    connections: usize,
    seed: u64,
}

/// Untimed warm-up of the first phase's working set: the worker SETs its
/// stripe of ranks `offset_start .. offset_start + warmup_keys` (capped at
/// the phase's key universe) so the window opens over a populated cache.
fn scenario_warmup(conn: &mut Conn, ctx: &WorkerCtx) -> std::io::Result<()> {
    let Some(first) = ctx.phases.first() else {
        return Ok(());
    };
    let span = ctx.warmup_keys.min(first.num_keys);
    let mut buf = Vec::with_capacity(64 * 1024);
    let mut pending = 0usize;
    let mut rank = ctx.stripe as u64;
    while rank < span {
        encode_op(
            &GenOp::Set {
                key: RequestGen::key_for_rank(first.offset_start + rank),
                size: first.value_bytes,
            },
            &mut buf,
            &ctx.pool,
        );
        pending += 1;
        if pending == 64 {
            conn.writer.write_all(&buf)?;
            buf.clear();
            for _ in 0..pending {
                conn.read_set_response()?;
            }
            pending = 0;
        }
        rank += ctx.siblings.max(1) as u64;
    }
    if pending > 0 {
        conn.writer.write_all(&buf)?;
        for _ in 0..pending {
            conn.read_set_response()?;
        }
    }
    Ok(())
}

/// Runs one closed-loop phase on one connection (the pipelined batch loop
/// of the plain runner, with a phase-aware generator).
fn run_phase_closed(
    conn: &mut Conn,
    gen: &mut PhaseGen,
    budget: &AtomicU64,
    total: u64,
    ctx: &WorkerCtx,
) -> std::io::Result<WorkerStats> {
    let mut stats = WorkerStats::default();
    let mut buf = Vec::with_capacity(64 * 1024);
    let mut ops: Vec<GenOp> = Vec::with_capacity(ctx.pipeline as usize);
    let mut fills: Vec<GenOp> = Vec::new();
    loop {
        let batch = claim(budget, ctx.pipeline);
        if batch == 0 && fills.is_empty() {
            return Ok(stats);
        }
        let remaining = budget.load(Ordering::Relaxed);
        gen.advance(1.0 - remaining as f64 / total.max(1) as f64);
        buf.clear();
        ops.clear();
        let batch_fills = fills.len();
        for op in fills.drain(..) {
            encode_op(&op, &mut buf, &ctx.pool);
            ops.push(op);
        }
        for _ in 0..batch {
            let op = gen.next_op();
            encode_op(&op, &mut buf, &ctx.pool);
            ops.push(op);
        }
        let sent = Instant::now();
        conn.writer.write_all(&buf)?;
        for (i, op) in ops.iter().enumerate() {
            let (kind, outcome) = match op {
                GenOp::Get { .. } => (OpKind::Get, conn.read_get_response()?),
                GenOp::Set { .. } if i < batch_fills => (OpKind::Fill, conn.read_set_response()?),
                GenOp::Set { .. } => (OpKind::Set, conn.read_set_response()?),
            };
            if ctx.fill_on_miss && kind == OpKind::Get && outcome == Some(false) {
                if let Some(rank) = RequestGen::rank_for_key(op.key()) {
                    fills.push(gen.fill_for(rank));
                }
            }
            record(&mut stats, kind, sent.elapsed().as_nanos() as u64, outcome);
        }
    }
}

/// Runs one open-loop phase on one connection. The pacer is shared across
/// consecutive open phases so the arrival chain survives rate changes at
/// phase boundaries (see [`Pacer::set_rate`]).
fn run_phase_open(
    conn: &mut Conn,
    gen: &mut PhaseGen,
    budget: &AtomicU64,
    total: u64,
    pacer: &mut Pacer,
    ctx: &WorkerCtx,
) -> std::io::Result<WorkerStats> {
    let mut stats = WorkerStats::default();
    let mut buf = Vec::with_capacity(16 * 1024);
    let mut fills: std::collections::VecDeque<GenOp> = std::collections::VecDeque::new();
    loop {
        let (op, kind) = match fills.pop_front() {
            Some(op) => (op, OpKind::Fill),
            None => {
                if claim(budget, 1) == 0 {
                    return Ok(stats);
                }
                let remaining = budget.load(Ordering::Relaxed);
                gen.advance(1.0 - remaining as f64 / total.max(1) as f64);
                let op = gen.next_op();
                let kind = match op {
                    GenOp::Get { .. } => OpKind::Get,
                    GenOp::Set { .. } => OpKind::Set,
                };
                (op, kind)
            }
        };
        let outcome = open_loop_step(conn, &op, kind, pacer, &ctx.pool, &mut buf, &mut stats)?;
        if ctx.fill_on_miss && kind == OpKind::Get && outcome == Some(false) {
            if let Some(rank) = RequestGen::rank_for_key(op.key()) {
                fills.push_back(gen.fill_for(rank));
            }
        }
    }
}

/// The worker thread: connect, pin the tenant, warm up, then run every
/// phase between the coordinator's barriers. A worker that fails keeps
/// participating in the barriers (doing nothing) so the coordinator and
/// its siblings never deadlock; the first error fails the run at join.
fn scenario_worker(ctx: WorkerCtx) -> std::io::Result<Vec<WorkerStats>> {
    let setup = (|| -> std::io::Result<Conn> {
        let mut conn = Conn::connect(&ctx.addr)?;
        select_app(&mut conn, &ctx.tenant)?;
        scenario_warmup(&mut conn, &ctx)?;
        Ok(conn)
    })();
    ctx.gate.wait();
    let mut conn = match setup {
        Ok(conn) => conn,
        Err(err) => {
            for _ in ctx.phases.iter() {
                ctx.gate.wait();
                ctx.gate.wait();
            }
            return Err(err);
        }
    };
    let mut err: Option<std::io::Error> = None;
    let mut out: Vec<WorkerStats> = Vec::with_capacity(ctx.phases.len());
    // One pacer per worker, shared across consecutive open phases: the
    // arrival chain continues through rate changes (the diurnal scenario's
    // whole point). A closed phase breaks the chain — its arrivals are
    // self-clocked — so the next open phase re-anchors at the wall clock.
    let mut pacer: Option<Pacer> = None;
    for (index, phase) in ctx.phases.iter().enumerate() {
        ctx.gate.wait();
        if err.is_none() {
            let budget = &ctx.budgets[index];
            let total = phase.requests;
            let mut gen = PhaseGen::new(phase, ctx.worker, ctx.workers, ctx.seed);
            let result = match phase.rate {
                None => {
                    pacer = None;
                    run_phase_closed(&mut conn, &mut gen, budget, total, &ctx)
                }
                Some(rate) => {
                    let per_conn = (rate / ctx.connections as f64).max(1.0);
                    let p = match pacer.as_mut() {
                        Some(p) => {
                            p.set_rate(per_conn);
                            p
                        }
                        None => pacer.insert(Pacer::new(Instant::now(), per_conn)),
                    };
                    run_phase_open(&mut conn, &mut gen, budget, total, p, &ctx)
                }
            };
            match result {
                Ok(stats) => out.push(stats),
                Err(e) => {
                    err = Some(e);
                    out.push(WorkerStats::default());
                }
            }
        } else {
            out.push(WorkerStats::default());
        }
        ctx.gate.wait();
    }
    match err {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

// ---------------------------------------------------------------------------
// Chaos actors.
// ---------------------------------------------------------------------------

/// Shared chaos tallies, scraped into the report's [`ChaosReport`].
#[derive(Default)]
struct ChaosCounters {
    churn_opened: AtomicU64,
    churn_failed: AtomicU64,
    loris_holds: AtomicU64,
    mid_value: AtomicU64,
    tenants_created: AtomicU64,
}

/// Reads one response line (up to `\n`) byte-by-byte — chaos connections
/// are rare and short-lived, so unbuffered reads keep them trivially
/// droppable at any point.
fn read_response_line(stream: &mut TcpStream) -> std::io::Result<()> {
    use std::io::Read;
    let mut byte = [0u8; 1];
    loop {
        if stream.read(&mut byte)? == 0 || byte[0] == b'\n' {
            return Ok(());
        }
    }
}

fn chaos_conn_churn(
    addr: String,
    per_sec: f64,
    stop: Arc<AtomicBool>,
    counters: Arc<ChaosCounters>,
) {
    let interval = Duration::from_secs_f64(1.0 / per_sec.max(1.0));
    let mut next = Instant::now() + interval;
    let mut polite = true;
    while !stop.load(Ordering::Relaxed) {
        let now = Instant::now();
        if next > now {
            std::thread::sleep((next - now).min(Duration::from_millis(50)));
            continue;
        }
        next += interval;
        match TcpStream::connect(&addr) {
            Ok(mut stream) => {
                counters.churn_opened.fetch_add(1, Ordering::Relaxed);
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(Duration::from_secs(1)));
                if polite {
                    // Polite churn: one GET, read the reply, then close.
                    if stream.write_all(b"get chaoschurn\r\n").is_ok() {
                        let _ = read_response_line(&mut stream);
                    }
                }
                // Abrupt churn (every other connection): drop without
                // reading, so the server sees an unannounced hangup.
            }
            Err(_) => {
                counters.churn_failed.fetch_add(1, Ordering::Relaxed);
            }
        }
        polite = !polite;
    }
}

fn chaos_slow_loris(
    addr: String,
    clients: usize,
    hold_ms: u64,
    stop: Arc<AtomicBool>,
    counters: Arc<ChaosCounters>,
) {
    // Each slot holds a connection with a half-written `get` parked on it.
    let mut conns: Vec<Option<TcpStream>> = (0..clients.max(1)).map(|_| None).collect();
    while !stop.load(Ordering::Relaxed) {
        for slot in conns.iter_mut() {
            match slot.take() {
                None => {
                    if let Ok(mut stream) = TcpStream::connect(&addr) {
                        let _ = stream.set_nodelay(true);
                        let _ = stream.set_read_timeout(Some(Duration::from_secs(1)));
                        // Half a command: the server must hold the partial
                        // line without blocking its event loop.
                        if stream.write_all(b"get kslowlor").is_ok() {
                            *slot = Some(stream);
                        }
                    }
                }
                Some(mut stream) => {
                    // The dwell is over: complete the held command, read
                    // the (miss) reply, park the next half-written one.
                    let done = stream.write_all(b"is\r\n").is_ok()
                        && read_response_line(&mut stream).is_ok();
                    if done {
                        counters.loris_holds.fetch_add(1, Ordering::Relaxed);
                        if stream.write_all(b"get kslowlor").is_ok() {
                            *slot = Some(stream);
                        }
                    }
                }
            }
        }
        std::thread::sleep(Duration::from_millis(hold_ms.clamp(10, 1_000)));
    }
}

fn chaos_mid_value(
    addr: String,
    per_sec: f64,
    stop: Arc<AtomicBool>,
    counters: Arc<ChaosCounters>,
) {
    let interval = Duration::from_secs_f64(1.0 / per_sec.max(1.0));
    let mut next = Instant::now() + interval;
    let garbage = vec![b'x'; 512];
    while !stop.load(Ordering::Relaxed) {
        let now = Instant::now();
        if next > now {
            std::thread::sleep((next - now).min(Duration::from_millis(50)));
            continue;
        }
        next += interval;
        if let Ok(mut stream) = TcpStream::connect(&addr) {
            let _ = stream.set_nodelay(true);
            // A 4096-byte value announced, 512 bytes delivered, then gone:
            // the server is left holding a half-received payload.
            if stream.write_all(b"set chaosmid 0 0 4096\r\n").is_ok()
                && stream.write_all(&garbage).is_ok()
            {
                counters.mid_value.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

fn chaos_tenant_storm(
    addr: String,
    tenants: u64,
    per_sec: f64,
    stop: Arc<AtomicBool>,
    counters: Arc<ChaosCounters>,
) {
    let interval = Duration::from_secs_f64(1.0 / per_sec.max(1.0));
    let mut next = Instant::now() + interval;
    let mut client: Option<CacheClient> = None;
    let mut created = 0u64;
    while !stop.load(Ordering::Relaxed) && created < tenants {
        let now = Instant::now();
        if next > now {
            std::thread::sleep((next - now).min(Duration::from_millis(50)));
            continue;
        }
        next += interval;
        if client.is_none() {
            client = CacheClient::connect(&addr).ok();
        }
        let Some(c) = client.as_mut() else { continue };
        match c.app_create(&format!("storm{created}"), 1) {
            Ok(_) => {
                counters.tenants_created.fetch_add(1, Ordering::Relaxed);
                created += 1;
            }
            Err(_) => client = None,
        }
    }
}

fn spawn_chaos(
    chaos: &Chaos,
    addr: &str,
    stop: &Arc<AtomicBool>,
    counters: &Arc<ChaosCounters>,
) -> std::thread::JoinHandle<()> {
    let addr = addr.to_string();
    let stop = Arc::clone(stop);
    let counters = Arc::clone(counters);
    let chaos = chaos.clone();
    std::thread::Builder::new()
        .name("scenario-chaos".to_string())
        .spawn(move || match chaos {
            Chaos::ConnChurn { per_sec } => chaos_conn_churn(addr, per_sec, stop, counters),
            Chaos::SlowLoris { clients, hold_ms } => {
                chaos_slow_loris(addr, clients, hold_ms, stop, counters)
            }
            Chaos::MidValueDisconnect { per_sec } => chaos_mid_value(addr, per_sec, stop, counters),
            Chaos::TenantStorm { tenants, per_sec } => {
                chaos_tenant_storm(addr, tenants, per_sec, stop, counters)
            }
        })
        .expect("failed to spawn chaos actor")
}

// ---------------------------------------------------------------------------
// The versioned spike-key probe.
// ---------------------------------------------------------------------------

/// Shared probe tallies plus the acknowledged-version frontier.
#[derive(Default)]
struct ProbeCounters {
    writes: AtomicU64,
    reads: AtomicU64,
    misses: AtomicU64,
    stale: AtomicU64,
    /// The highest version the server has acknowledged storing. Published
    /// with `Release` *after* the STORED reply, so a reader that loads it
    /// with `Acquire` before a GET holds a true lower bound on what that
    /// GET must observe.
    last_acked: AtomicU64,
}

fn probe_payload(version: u64) -> Vec<u8> {
    // Padding keeps the value comparable to the scenario's ordinary
    // payloads so the replica byte budget is exercised realistically.
    format!("v:{version}:{}", "x".repeat(128)).into_bytes()
}

fn parse_probe_version(data: &[u8]) -> Option<u64> {
    let text = std::str::from_utf8(data).ok()?;
    let mut parts = text.splitn(3, ':');
    if parts.next() != Some("v") {
        return None;
    }
    parts.next()?.parse().ok()
}

/// The probe writer: the spike key's *only* writer in the whole scenario.
/// Acknowledge-then-publish, throttled so it stresses invalidation without
/// drowning the measured traffic.
fn probe_writer(addr: String, key: String, stop: Arc<AtomicBool>, counters: Arc<ProbeCounters>) {
    let mut client: Option<CacheClient> = None;
    let mut version = 0u64;
    while !stop.load(Ordering::Relaxed) {
        if client.is_none() {
            client = CacheClient::connect(&addr).ok();
        }
        let Some(c) = client.as_mut() else {
            std::thread::sleep(Duration::from_millis(10));
            continue;
        };
        let next = version + 1;
        match c.set(key.as_bytes(), 0, &probe_payload(next)) {
            Ok(true) => {
                version = next;
                counters.last_acked.store(version, Ordering::Release);
                counters.writes.fetch_add(1, Ordering::Relaxed);
            }
            Ok(false) => {} // refused store; retry the same version
            Err(_) => client = None,
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// A probe reader: snapshot the acknowledged frontier, GET, and require
/// the observed version to be at or past the snapshot. Several readers on
/// distinct connections land on distinct event loops, so promoted-replica
/// serving is actually on the path under test.
fn probe_reader(addr: String, key: String, stop: Arc<AtomicBool>, counters: Arc<ProbeCounters>) {
    let mut client: Option<CacheClient> = None;
    while !stop.load(Ordering::Relaxed) {
        if client.is_none() {
            client = CacheClient::connect(&addr).ok();
        }
        let Some(c) = client.as_mut() else {
            std::thread::sleep(Duration::from_millis(10));
            continue;
        };
        let floor = counters.last_acked.load(Ordering::Acquire);
        match c.get(key.as_bytes()) {
            Ok(Some((_, data))) => match parse_probe_version(&data) {
                Some(seen) => {
                    counters.reads.fetch_add(1, Ordering::Relaxed);
                    if seen < floor {
                        counters.stale.fetch_add(1, Ordering::Relaxed);
                    }
                }
                // A foreign payload on the probe key means some other
                // writer clobbered it — as damning as a stale version.
                None => {
                    counters.reads.fetch_add(1, Ordering::Relaxed);
                    counters.stale.fetch_add(1, Ordering::Relaxed);
                }
            },
            Ok(None) => {
                counters.misses.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => client = None,
        }
        std::thread::sleep(Duration::from_micros(250));
    }
}

// ---------------------------------------------------------------------------
// The engine.
// ---------------------------------------------------------------------------

/// `connections.curr` from a live `stats json` scrape.
fn curr_connections(probe: &mut CacheClient) -> std::io::Result<u64> {
    let doc: Value = serde_json::from_str(&probe.stats_json()?)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{e:?}")))?;
    Ok(doc
        .get("connections")
        .and_then(|c| c.get("curr"))
        .and_then(Value::as_u64)
        .unwrap_or(0))
}

/// Runs one scenario end to end: self-host a server, drive every phase
/// with chaos active, scrape the server's telemetry, and evaluate the
/// invariants. Driver-connection failures (refused `app`, mid-run EOF)
/// fail the run itself; per-request rejections are counted and judged by
/// the `zero_errors` invariant instead.
pub fn run_scenario(scenario: &Scenario) -> std::io::Result<ScenarioReport> {
    if scenario.connections == 0 || scenario.phases.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "a scenario needs at least one connection and one phase",
        ));
    }
    let workers = if scenario.workers > 0 {
        scenario.workers
    } else {
        cache_server::default_event_loops()
    };
    let mut server = CacheServer::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        // Headroom over drivers + probe + chaos churn: the accept gate is
        // the server tests' concern, not the scenario drivers'.
        max_connections: (scenario.connections * 4).max(4096),
        backend: BackendConfig {
            total_bytes: scenario.total_bytes,
            shards: scenario.shards,
            tenants: scenario
                .tenants
                .iter()
                .map(|(name, weight)| TenantSpec::new(name.clone(), (*weight).max(1)))
                .collect(),
            hot_key: if scenario.hot_key_promote {
                HotKeyConfig::aggressive()
            } else {
                HotKeyConfig::default()
            },
            ..BackendConfig::default()
        },
        ..ServerConfig::default()
    })?;
    let addr = server.local_addr().to_string();

    let phases = Arc::new(scenario.phases.clone());
    let budgets: Arc<Vec<Arc<AtomicU64>>> = Arc::new(
        phases
            .iter()
            .map(|p| Arc::new(AtomicU64::new(p.requests)))
            .collect(),
    );
    let gate = Arc::new(Barrier::new(scenario.connections + 1));
    let pool: Arc<Vec<u8>> = Arc::new(
        (0..PAYLOAD_POOL_BYTES)
            .map(|i| b'a' + (i % 26) as u8)
            .collect(),
    );
    // Drivers round-robin the hosted tenants ("default" when none); the
    // stripe/siblings pair makes warm-up cover each tenant's namespace.
    let tenant_names: Vec<String> = if scenario.tenants.is_empty() {
        vec!["default".to_string()]
    } else {
        scenario.tenants.iter().map(|(n, _)| n.clone()).collect()
    };
    let handles: Vec<_> = (0..scenario.connections)
        .map(|w| {
            let ctx = WorkerCtx {
                addr: addr.clone(),
                tenant: tenant_names[w % tenant_names.len()].clone(),
                stripe: w / tenant_names.len(),
                siblings: (scenario.connections - (w % tenant_names.len()))
                    .div_ceil(tenant_names.len()),
                worker: w as u64,
                workers: scenario.connections as u64,
                phases: Arc::clone(&phases),
                budgets: Arc::clone(&budgets),
                gate: Arc::clone(&gate),
                pool: Arc::clone(&pool),
                pipeline: scenario.pipeline.max(1) as u64,
                fill_on_miss: scenario.fill_on_miss,
                warmup_keys: scenario.warmup_keys,
                connections: scenario.connections,
                seed: 0x5CE7_A810,
            };
            std::thread::Builder::new()
                .name(format!("scenario-{w}"))
                .spawn(move || scenario_worker(ctx))
                .expect("failed to spawn scenario worker")
        })
        .collect();

    // Setup barrier: every driver is connected and warmed.
    gate.wait();
    let mut probe = CacheClient::connect(&addr)?;
    let conn_baseline = curr_connections(&mut probe)?;

    let stop = Arc::new(AtomicBool::new(false));
    let counters = Arc::new(ChaosCounters::default());
    let chaos_handles: Vec<_> = scenario
        .chaos
        .iter()
        .map(|c| spawn_chaos(c, &addr, &stop, &counters))
        .collect();

    // The versioned probe runs whenever any phase spikes a key: one
    // writer (the spike key's sole writer) plus two readers on their own
    // connections, active for the whole measured window so promotion and
    // demotion both happen under its watch.
    let spike_rank = phases
        .iter()
        .find_map(|p| p.spike.as_ref().map(|s| s.key_rank));
    let probe_counters = Arc::new(ProbeCounters::default());
    let probe_handles: Vec<_> = spike_rank
        .map(|rank| {
            let key = RequestGen::key_for_rank(rank);
            let mut handles = vec![{
                let (addr, key) = (addr.clone(), key.clone());
                let (stop, counters) = (Arc::clone(&stop), Arc::clone(&probe_counters));
                std::thread::Builder::new()
                    .name("scenario-probe-writer".to_string())
                    .spawn(move || probe_writer(addr, key, stop, counters))
                    .expect("failed to spawn probe writer")
            }];
            for i in 0..2 {
                let (addr, key) = (addr.clone(), key.clone());
                let (stop, counters) = (Arc::clone(&stop), Arc::clone(&probe_counters));
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("scenario-probe-reader-{i}"))
                        .spawn(move || probe_reader(addr, key, stop, counters))
                        .expect("failed to spawn probe reader"),
                );
            }
            handles
        })
        .unwrap_or_default();

    let window_start = Instant::now();
    let mut phase_elapsed: Vec<f64> = Vec::with_capacity(phases.len());
    for _ in phases.iter() {
        gate.wait();
        let phase_start = Instant::now();
        gate.wait();
        phase_elapsed.push(phase_start.elapsed().as_secs_f64().max(f64::EPSILON));
    }
    let elapsed = window_start.elapsed().as_secs_f64().max(f64::EPSILON);

    stop.store(true, Ordering::Relaxed);
    for handle in chaos_handles {
        let _ = handle.join();
    }
    for handle in probe_handles {
        let _ = handle.join();
    }
    let mut per_phase: Vec<WorkerStats> =
        (0..phases.len()).map(|_| WorkerStats::default()).collect();
    let mut first_error: Option<std::io::Error> = None;
    for handle in handles {
        match handle.join() {
            Ok(Ok(stats)) => {
                for (merged, stats) in per_phase.iter_mut().zip(&stats) {
                    merged.merge(stats);
                }
            }
            Ok(Err(err)) => first_error = first_error.or(Some(err)),
            Err(_) => {
                first_error = first_error
                    .or_else(|| Some(std::io::Error::other("a scenario worker panicked")))
            }
        }
    }
    if let Some(err) = first_error {
        server.shutdown();
        return Err(err);
    }

    // Everything but the probe has disconnected; give the reactor a
    // bounded moment to notice hangups, then record where `curr` settled.
    let mut conn_final = conn_baseline;
    for _ in 0..50 {
        conn_final = curr_connections(&mut probe)?;
        if conn_final <= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    let server_stats: Option<Value> = probe
        .stats_json()
        .ok()
        .and_then(|json| serde_json::from_str(&json).ok());
    drop(probe);
    server.shutdown();

    let phase_reports: Vec<PhaseReport> = phases
        .iter()
        .zip(&per_phase)
        .zip(&phase_elapsed)
        .map(|((phase, stats), &elapsed)| PhaseReport {
            name: phase.name.clone(),
            mode: if phase.rate.is_some() {
                "open".to_string()
            } else {
                "closed".to_string()
            },
            target_rps: phase.rate.unwrap_or(0.0),
            requests: stats.gets + stats.sets,
            gets: stats.gets,
            get_hits: stats.hits,
            hit_rate: if stats.gets > 0 {
                stats.hits as f64 / stats.gets as f64
            } else {
                0.0
            },
            sets: stats.sets,
            fills: stats.fills,
            errors: stats.errors,
            elapsed_secs: elapsed,
            throughput_rps: (stats.gets + stats.sets) as f64 / elapsed,
            latency: stats.all.summarize_us(),
        })
        .collect();

    let mut report = ScenarioReport {
        schema: SCENARIO_SCHEMA.to_string(),
        scenario: scenario.name.clone(),
        description: scenario.description.clone(),
        scale: scenario.scale,
        connections: scenario.connections as u64,
        requests: phase_reports.iter().map(|p| p.requests).sum(),
        elapsed_secs: elapsed,
        errors: phase_reports.iter().map(|p| p.errors).sum(),
        phases: phase_reports,
        chaos: ChaosReport {
            churn_conns_opened: counters.churn_opened.load(Ordering::Relaxed),
            churn_conns_failed: counters.churn_failed.load(Ordering::Relaxed),
            slow_loris_holds: counters.loris_holds.load(Ordering::Relaxed),
            mid_value_disconnects: counters.mid_value.load(Ordering::Relaxed),
            tenants_created: counters.tenants_created.load(Ordering::Relaxed),
        },
        conn_baseline,
        conn_final,
        invariants: Vec::new(),
        passed: false,
        server_stats,
        probe: spike_rank.map(|_| ProbeReport {
            writes: probe_counters.writes.load(Ordering::Relaxed),
            reads: probe_counters.reads.load(Ordering::Relaxed),
            misses: probe_counters.misses.load(Ordering::Relaxed),
            stale_reads: probe_counters.stale.load(Ordering::Relaxed),
        }),
    };
    report.invariants = evaluate_invariants(&scenario.invariants, &report);
    report.passed = report.invariants.iter().all(|v| v.pass);
    Ok(report)
}

// ---------------------------------------------------------------------------
// The named-scenario registry.
// ---------------------------------------------------------------------------

/// The names `named_scenario` resolves, in matrix run order.
pub fn scenario_names() -> &'static [&'static str] {
    &[
        "scan_storm",
        "diurnal",
        "drift",
        "conn_churn",
        "slow_loris",
        "tenant_storm",
        "flash_crowd",
    ]
}

fn base_scenario(name: &str, description: &str) -> Scenario {
    Scenario {
        name: name.to_string(),
        description: description.to_string(),
        total_bytes: 32 << 20,
        shards: 0,
        workers: 0,
        connections: 6,
        pipeline: 8,
        warmup_keys: 20_000,
        fill_on_miss: false,
        hot_key_promote: false,
        tenants: Vec::new(),
        phases: Vec::new(),
        chaos: Vec::new(),
        invariants: vec![
            Invariant::ZeroErrors,
            Invariant::BudgetConservation,
            Invariant::ConnectionsReturnToBaseline,
        ],
        scale: 1.0,
    }
}

/// Generous client-observed p99 bound for closed phases on shared CI
/// hardware: pipelined batches queue behind each other, so this is a
/// sanity rail against pathological stalls, not a performance SLO (the
/// perf gate owns regressions).
const CLOSED_P99_US: f64 = 250_000.0;
/// Bound for open phases: schedule-anchored latencies absorb any backlog
/// the server builds, so the rail is looser.
const OPEN_P99_US: f64 = 400_000.0;

fn p99(phase: &str, max_us: f64) -> Invariant {
    Invariant::PhaseP99Below {
        phase: phase.to_string(),
        max_us,
    }
}

fn scan_storm() -> Scenario {
    // The paper's Figure-4 shape: a warmed Zipf mix, then a sequential
    // scan over a key range larger than the cache floods the LRU lists,
    // then the original mix returns and must recover its hit rate.
    let mut s = base_scenario(
        "scan_storm",
        "steady Zipf, a sequential scan storm over a cold key range, then recovery",
    );
    s.total_bytes = 16 << 20;
    s.fill_on_miss = true;
    let keys = 30_000;
    s.phases = vec![
        Phase::steady("steady", 80_000, keys, 1.0),
        Phase {
            scan: Some(ScanSpec {
                start_rank: 1_000_000,
                length: 50_000,
                fraction: 0.5,
            }),
            ..Phase::steady("scan", 60_000, keys, 1.0)
        },
        Phase::steady("recover", 80_000, keys, 1.0),
    ];
    s.invariants.push(p99("steady", CLOSED_P99_US));
    s.invariants.push(p99("recover", CLOSED_P99_US));
    s
}

fn diurnal() -> Scenario {
    // Open-loop day cycle: the arrival rate steps night → morning → peak
    // → evening. Every boundary is a mid-run rate change, exercising the
    // pacer's chain-preserving re-anchor (the coordinated-omission fix).
    let mut s = base_scenario(
        "diurnal",
        "open-loop rate steps through a day cycle; pacing must stay CO-correct across boundaries",
    );
    let keys = 30_000;
    let open = |name: &str, requests: u64, rate: f64| Phase {
        rate: Some(rate),
        ..Phase::steady(name, requests, keys, 0.99)
    };
    s.phases = vec![
        open("night", 30_000, 2_000.0),
        open("morning", 50_000, 5_000.0),
        open("peak", 80_000, 8_000.0),
        open("evening", 40_000, 3_000.0),
    ];
    for phase in ["night", "morning", "peak", "evening"] {
        s.invariants.push(p99(phase, OPEN_P99_US));
    }
    s
}

fn drift() -> Scenario {
    // Working-set drift: the popularity window slides across the key
    // space mid-phase, so yesterday's hot set turns cold under fire and
    // demand fills repopulate the new one.
    let mut s = base_scenario(
        "drift",
        "the working set slides across the key space; demand fills chase it",
    );
    s.total_bytes = 16 << 20;
    s.fill_on_miss = true;
    let keys = 20_000;
    let phase = |name: &str, requests: u64, from: u64, to: u64| Phase {
        get_fraction: 0.95,
        offset_start: from,
        offset_end: to,
        ..Phase::steady(name, requests, keys, 0.99)
    };
    s.phases = vec![
        phase("settled", 60_000, 0, 0),
        phase("sliding", 90_000, 0, 60_000),
        phase("resettled", 60_000, 60_000, 60_000),
    ];
    s.invariants.push(p99("settled", CLOSED_P99_US));
    s.invariants.push(p99("resettled", CLOSED_P99_US));
    s
}

fn conn_churn() -> Scenario {
    // Hundreds of short-lived connections per second against the reactor
    // while the measured drivers run: accepts, hangups and half-closed
    // sockets must not perturb the data plane or leak connections. The
    // measured load is open-loop paced so the chaos window has real
    // duration at any scale (a closed loop would drain the smoke budget in
    // milliseconds, before a single churn connection landed).
    let mut s = base_scenario(
        "conn_churn",
        "paced load while short-lived connections churn against the reactor",
    );
    s.phases = vec![Phase {
        rate: Some(6_000.0),
        ..Phase::steady("churn", 150_000, 30_000, 1.0)
    }];
    s.chaos = vec![Chaos::ConnChurn { per_sec: 300.0 }];
    s.invariants.push(p99("churn", OPEN_P99_US));
    s
}

fn slow_loris() -> Scenario {
    // Slow-loris clients park half-written commands while other
    // connections abort mid-value; an event-driven server must keep
    // serving the well-behaved drivers at full speed.
    let mut s = base_scenario(
        "slow_loris",
        "half-written commands held open and mid-value disconnects under paced load",
    );
    s.phases = vec![Phase {
        rate: Some(5_000.0),
        ..Phase::steady("loris", 120_000, 30_000, 1.0)
    }];
    s.chaos = vec![
        Chaos::SlowLoris {
            clients: 12,
            hold_ms: 150,
        },
        Chaos::MidValueDisconnect { per_sec: 30.0 },
    ];
    s.invariants.push(p99("loris", OPEN_P99_US));
    s
}

fn tenant_storm() -> Scenario {
    // Multi-tenant traffic while an `app_create` storm registers dozens
    // of new tenants: every creation re-carves the budget, and the sum
    // must still conserve the total at the end.
    let mut s = base_scenario(
        "tenant_storm",
        "multi-tenant load while an app_create storm re-carves budgets under fire",
    );
    s.total_bytes = 48 << 20;
    s.fill_on_miss = true;
    s.tenants = vec![("anchor".to_string(), 3), ("b_tenant".to_string(), 1)];
    s.phases = vec![Phase {
        rate: Some(5_000.0),
        ..Phase::steady("storm", 150_000, 20_000, 1.0)
    }];
    s.chaos = vec![Chaos::TenantStorm {
        tenants: 48,
        per_sec: 30.0,
    }];
    s.invariants.push(p99("storm", OPEN_P99_US));
    s
}

/// Rank of the flash-crowd spike key: far outside every phase's key
/// universe and drift range, so the versioned probe is its only writer.
const SPIKE_KEY_RANK: u64 = 5_000_000;

fn flash_crowd() -> Scenario {
    // The single-core flash crowd: one viral key spikes to half of all
    // traffic while the background mix sharpens (a crowd arriving is also
    // a skew change). With `hot_key_promote` the control thread promotes
    // the key into per-loop replicas mid-spike; the versioned probe writes
    // through the whole window, so promotion, invalidation and demotion
    // all happen under the `no_stale_reads` microscope.
    let mut s = base_scenario(
        "flash_crowd",
        "a single viral key spikes to half of all traffic; replication must absorb it with no stale reads",
    );
    s.hot_key_promote = true;
    // The bottleneck under test is *one loop* pinned by one key: force a
    // multi-loop plane even where CPU auto-detection would pick a single
    // loop, or there are no non-owning loops to replicate onto.
    s.workers = 4;
    s.shards = 8;
    let keys = 30_000;
    s.phases = vec![
        Phase::steady("steady", 100_000, keys, 0.9),
        Phase {
            spike: Some(SpikeSpec {
                key_rank: SPIKE_KEY_RANK,
                fraction: 0.5,
            }),
            zipf_end: 1.2,
            ..Phase::steady("spike", 120_000, keys, 0.9)
        },
        Phase::steady("recover", 80_000, keys, 0.9),
    ];
    s.invariants.push(p99("spike", CLOSED_P99_US));
    s.invariants.push(Invariant::NoStaleReads);
    s
}

/// Resolves a named scenario at standard (nightly) scale; `None` for an
/// unknown name. The standard matrix totals well over a million generated
/// requests across the seven scenarios.
pub fn named_scenario(name: &str) -> Option<Scenario> {
    match name {
        "scan_storm" => Some(scan_storm()),
        "diurnal" => Some(diurnal()),
        "drift" => Some(drift()),
        "conn_churn" => Some(conn_churn()),
        "slow_loris" => Some(slow_loris()),
        "tenant_storm" => Some(tenant_storm()),
        "flash_crowd" => Some(flash_crowd()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase_with(zipf: (f64, f64), offsets: (u64, u64)) -> Phase {
        Phase {
            zipf_start: zipf.0,
            zipf_end: zipf.1,
            offset_start: offsets.0,
            offset_end: offsets.1,
            ..Phase::steady("p", 1_000, 1_000, 1.0)
        }
    }

    #[test]
    fn interpolations_are_monotone_and_clamped() {
        let rising = phase_with((0.6, 1.2), (100, 5_000));
        let falling = phase_with((1.2, 0.6), (5_000, 100));
        let mut last_exp = f64::MIN;
        let mut last_off = 0u64;
        for step in 0..=100 {
            let p = step as f64 / 100.0;
            let exp = zipf_exponent_at(&rising, p);
            let off = drift_offset_at(&rising, p);
            assert!(exp >= last_exp, "exponent must rise monotonically");
            assert!(off >= last_off, "offset must rise monotonically");
            last_exp = exp;
            last_off = off;
        }
        let mut last_exp = f64::MAX;
        let mut last_off = u64::MAX;
        for step in 0..=100 {
            let p = step as f64 / 100.0;
            let exp = zipf_exponent_at(&falling, p);
            let off = drift_offset_at(&falling, p);
            assert!(exp <= last_exp, "exponent must fall monotonically");
            assert!(off <= last_off, "offset must fall monotonically");
            last_exp = exp;
            last_off = off;
        }
        // Endpoints are exact and out-of-range progress clamps.
        assert_eq!(zipf_exponent_at(&rising, 0.0), 0.6);
        assert_eq!(zipf_exponent_at(&rising, 1.0), 1.2);
        assert_eq!(zipf_exponent_at(&rising, 7.0), 1.2);
        assert_eq!(drift_offset_at(&rising, -1.0), 100);
        assert_eq!(drift_offset_at(&rising, 1.0), 5_000);
    }

    fn canned_report() -> ScenarioReport {
        let stats: Value = serde_json::from_str(
            r#"{
                "capacity": {"limit_maxbytes": 1000},
                "connections": {"curr": 1},
                "tenants": [
                    {"name": "default", "budget": 600},
                    {"name": "a", "budget": 400}
                ]
            }"#,
        )
        .unwrap();
        ScenarioReport {
            schema: SCENARIO_SCHEMA.to_string(),
            scenario: "canned".to_string(),
            errors: 0,
            conn_baseline: 7,
            conn_final: 1,
            phases: vec![PhaseReport {
                name: "steady".to_string(),
                latency: crate::telemetry::LatencySummary {
                    count: 100,
                    p99_us: 900.0,
                    ..Default::default()
                },
                ..PhaseReport::default()
            }],
            server_stats: Some(stats),
            ..ScenarioReport::default()
        }
    }

    #[test]
    fn invariants_pass_on_a_healthy_canned_report() {
        let report = canned_report();
        let invariants = vec![
            Invariant::ZeroErrors,
            Invariant::BudgetConservation,
            Invariant::PhaseP99Below {
                phase: "steady".to_string(),
                max_us: 1_000.0,
            },
            Invariant::ConnectionsReturnToBaseline,
        ];
        let verdicts = evaluate_invariants(&invariants, &report);
        assert_eq!(verdicts.len(), 4);
        for v in &verdicts {
            assert!(v.pass, "{} should pass: {}", v.name, v.detail);
        }
        assert_eq!(verdicts[2].name, "p99_bounded[steady]");
    }

    #[test]
    fn each_invariant_fails_on_its_own_evidence() {
        // Errors.
        let mut report = canned_report();
        report.errors = 3;
        let v = evaluate_invariants(&[Invariant::ZeroErrors], &report);
        assert!(!v[0].pass);
        assert_eq!(v[0].name, "zero_errors");

        // Budget leak: tenants sum short of the limit.
        let mut report = canned_report();
        report.server_stats = Some(
            serde_json::from_str(
                r#"{
                    "capacity": {"limit_maxbytes": 1000},
                    "tenants": [
                        {"name": "default", "budget": 600},
                        {"name": "a", "budget": 399}
                    ]
                }"#,
            )
            .unwrap(),
        );
        let v = evaluate_invariants(&[Invariant::BudgetConservation], &report);
        assert!(!v[0].pass, "{}", v[0].detail);
        assert!(v[0].detail.contains("999"));

        // A zero p99 bound (the CI negative test's lever).
        let report = canned_report();
        let v = evaluate_invariants(
            &[Invariant::PhaseP99Below {
                phase: "steady".to_string(),
                max_us: 0.0,
            }],
            &report,
        );
        assert!(!v[0].pass);
        assert_eq!(v[0].name, "p99_bounded[steady]");

        // A missing phase is a failure, not a silent skip.
        let v = evaluate_invariants(
            &[Invariant::PhaseP99Below {
                phase: "nope".to_string(),
                max_us: 1e9,
            }],
            &report,
        );
        assert!(!v[0].pass);

        // Leaked connections.
        let mut report = canned_report();
        report.conn_final = 4;
        let v = evaluate_invariants(&[Invariant::ConnectionsReturnToBaseline], &report);
        assert!(!v[0].pass);
        assert_eq!(v[0].name, "connections_baseline");

        // No scraped stats at all: conservation cannot be verified.
        let mut report = canned_report();
        report.server_stats = None;
        let v = evaluate_invariants(&[Invariant::BudgetConservation], &report);
        assert!(!v[0].pass);
    }

    #[test]
    fn no_stale_reads_judges_the_probe_in_both_polarities() {
        // A clean, busy probe passes.
        let mut report = canned_report();
        report.probe = Some(ProbeReport {
            writes: 500,
            reads: 2_000,
            misses: 3,
            stale_reads: 0,
        });
        let v = evaluate_invariants(&[Invariant::NoStaleReads], &report);
        assert!(v[0].pass, "{}", v[0].detail);
        assert_eq!(v[0].name, "no_stale_reads");

        // A single stale read fails.
        report.probe.as_mut().unwrap().stale_reads = 1;
        let v = evaluate_invariants(&[Invariant::NoStaleReads], &report);
        assert!(!v[0].pass);
        assert!(v[0].detail.contains("1 stale"), "{}", v[0].detail);

        // A vacuous probe (no versioned reads) fails — zero staleness
        // must be evidence, not absence.
        report.probe = Some(ProbeReport::default());
        let v = evaluate_invariants(&[Invariant::NoStaleReads], &report);
        assert!(!v[0].pass);

        // A run that never spawned the probe fails too.
        report.probe = None;
        let v = evaluate_invariants(&[Invariant::NoStaleReads], &report);
        assert!(!v[0].pass);
        assert!(v[0].detail.contains("no versioned probe"));
    }

    #[test]
    fn flash_crowd_spikes_one_key_outside_its_universe() {
        let s = named_scenario("flash_crowd").expect("registered scenario");
        assert!(s.hot_key_promote, "the mitigation must be on by default");
        let spike = s
            .phases
            .iter()
            .find_map(|p| p.spike.as_ref())
            .expect("a spike phase");
        assert!((0.0..=1.0).contains(&spike.fraction) && spike.fraction > 0.0);
        for phase in &s.phases {
            assert!(
                spike.key_rank > phase.num_keys + phase.offset_start.max(phase.offset_end),
                "the spike key must sit outside every phase's reachable ranks"
            );
        }
        assert!(s
            .invariants
            .iter()
            .any(|i| matches!(i, Invariant::NoStaleReads)));
        assert!(s
            .invariants
            .iter()
            .any(|i| matches!(i, Invariant::PhaseP99Below { phase, .. } if phase == "spike")));
    }

    #[test]
    fn scaling_floors_phases_and_storm_sizes() {
        let scaled = tenant_storm().scaled(0.001);
        for phase in &scaled.phases {
            assert_eq!(phase.requests, MIN_PHASE_REQUESTS);
        }
        assert!(scaled.warmup_keys >= 200);
        match &scaled.chaos[0] {
            Chaos::TenantStorm { tenants, .. } => assert_eq!(*tenants, 6),
            other => panic!("unexpected chaos: {other:?}"),
        }
        assert!((scaled.scale - 0.001).abs() < 1e-12);
    }

    #[test]
    fn override_p99_replaces_bounds_per_phase() {
        let mut s = scan_storm();
        s.override_p99(0.0);
        let bounds: Vec<_> = s
            .invariants
            .iter()
            .filter(|i| matches!(i, Invariant::PhaseP99Below { .. }))
            .collect();
        assert_eq!(bounds.len(), s.phases.len());
        for b in bounds {
            match b {
                Invariant::PhaseP99Below { max_us, .. } => assert_eq!(*max_us, 0.0),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn registry_resolves_every_name_and_totals_a_million() {
        let mut total = 0u64;
        for name in scenario_names() {
            let s = named_scenario(name).expect("registered scenario");
            assert_eq!(&s.name, name);
            assert!(!s.phases.is_empty());
            assert!(!s.invariants.is_empty());
            total += s.total_requests();
        }
        assert!(named_scenario("nope").is_none());
        assert!(
            total >= 1_000_000,
            "the standard matrix must generate ≥1M requests, got {total}"
        );
    }

    #[test]
    fn phase_boundaries_honor_exact_request_budgets() {
        // Three closed phases with distinct budgets and no demand fills:
        // every phase's report must account for exactly its budget — the
        // scheduler transitions on the right request boundaries.
        let scenario = Scenario {
            name: "boundaries".to_string(),
            description: "test".to_string(),
            total_bytes: 8 << 20,
            shards: 1,
            workers: 1,
            connections: 2,
            pipeline: 8,
            warmup_keys: 500,
            fill_on_miss: false,
            hot_key_promote: false,
            tenants: Vec::new(),
            phases: vec![
                Phase::steady("a", 700, 1_000, 1.0),
                Phase::steady("b", 400, 1_000, 0.0),
                Phase::steady("c", 900, 1_000, 1.0),
            ],
            chaos: Vec::new(),
            invariants: vec![Invariant::ZeroErrors],
            scale: 1.0,
        };
        let report = run_scenario(&scenario).unwrap();
        assert_eq!(report.phases.len(), 3);
        assert_eq!(report.phases[0].requests, 700);
        assert_eq!(report.phases[1].requests, 400);
        assert_eq!(report.phases[2].requests, 900);
        assert_eq!(report.requests, 2_000);
        assert!(report.passed, "{:?}", report.invariants);
        assert_eq!(report.schema, SCENARIO_SCHEMA);
    }

    #[test]
    fn open_phase_rate_changes_keep_the_schedule() {
        // Two open phases at different rates: the total wall clock must
        // cover at least the sum of each phase's schedule — a pacer that
        // recomputed its chain from the run start at the new rate would
        // finish the second phase in a burst and break this.
        let scenario = Scenario {
            name: "rate_change".to_string(),
            description: "test".to_string(),
            total_bytes: 8 << 20,
            shards: 1,
            workers: 1,
            connections: 2,
            pipeline: 1,
            warmup_keys: 500,
            fill_on_miss: false,
            hot_key_promote: false,
            tenants: Vec::new(),
            phases: vec![
                Phase {
                    rate: Some(2_000.0),
                    ..Phase::steady("slow", 600, 1_000, 0.99)
                },
                Phase {
                    rate: Some(6_000.0),
                    ..Phase::steady("fast", 900, 1_000, 0.99)
                },
            ],
            chaos: Vec::new(),
            invariants: vec![Invariant::ZeroErrors],
            scale: 1.0,
        };
        let report = run_scenario(&scenario).unwrap();
        assert!(report.passed, "{:?}", report.invariants);
        let min_schedule = 600.0 / 2_000.0 + 900.0 / 6_000.0;
        assert!(
            report.elapsed_secs >= min_schedule * 0.9,
            "schedule must stretch across both phases: {} < {min_schedule}",
            report.elapsed_secs
        );
        assert_eq!(report.phases[0].mode, "open");
        assert_eq!(report.phases[0].target_rps, 2_000.0);
    }

    #[test]
    fn reports_round_trip_through_json() {
        let report = canned_report();
        let matrix = ScenarioMatrixReport {
            schema: SCENARIO_MATRIX_SCHEMA.to_string(),
            scale: 0.05,
            scenarios: vec![report],
        };
        let parsed: ScenarioMatrixReport = serde_json::from_str(&matrix.to_json()).unwrap();
        assert_eq!(parsed.schema, SCENARIO_MATRIX_SCHEMA);
        assert_eq!(parsed.scenarios.len(), 1);
        assert_eq!(parsed.scenarios[0].scenario, "canned");
        assert_eq!(parsed.scenarios[0].phases[0].latency.count, 100);
    }
}
