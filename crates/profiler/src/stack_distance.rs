//! Exact Mattson stack distances.
//!
//! The stack distance of a request is the number of *distinct* keys accessed
//! since the previous access to the same key, counting the key itself — i.e.
//! its rank from the top of an (unbounded) LRU stack (paper §2.1, citing
//! Mattson et al. 1970). A key never seen before has infinite stack distance.
//!
//! The classic result is that an LRU cache of capacity `c` items hits exactly
//! the requests whose stack distance is `≤ c`, so the histogram of stack
//! distances *is* the hit-rate curve.
//!
//! [`StackDistanceTracker`] computes exact distances in O(log N) amortised
//! time per request using a Fenwick (binary indexed) tree over access
//! timestamps, with periodic compaction so memory stays proportional to the
//! number of distinct keys.

use crate::curve::HitRateCurve;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use cache_core::Key;

/// A histogram of stack distances.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StackDistanceHistogram {
    /// `counts[d]` is the number of requests whose stack distance was `d + 1`
    /// (index 0 holds distance 1, the top of the stack).
    counts: Vec<u64>,
    /// Requests to keys never seen before (infinite distance).
    cold: u64,
    /// Total requests recorded.
    total: u64,
}

impl StackDistanceHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        StackDistanceHistogram::default()
    }

    /// Records a request with finite stack distance `distance` (1-based).
    pub fn record(&mut self, distance: usize) {
        assert!(distance >= 1, "stack distances are 1-based");
        if self.counts.len() < distance {
            self.counts.resize(distance, 0);
        }
        self.counts[distance - 1] += 1;
        self.total += 1;
    }

    /// Records a cold (first-ever) access.
    pub fn record_cold(&mut self) {
        self.cold += 1;
        self.total += 1;
    }

    /// Total number of requests recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of cold (infinite-distance) requests.
    pub fn cold(&self) -> u64 {
        self.cold
    }

    /// Number of requests with stack distance exactly `distance`.
    pub fn count_at(&self, distance: usize) -> u64 {
        if distance == 0 || distance > self.counts.len() {
            0
        } else {
            self.counts[distance - 1]
        }
    }

    /// The largest finite stack distance observed.
    pub fn max_distance(&self) -> usize {
        self.counts.len()
    }

    /// Number of requests that an LRU cache of `items` entries would hit.
    pub fn hits_at(&self, items: usize) -> u64 {
        self.counts.iter().take(items).sum()
    }

    /// The hit-rate curve implied by this histogram.
    pub fn to_curve(&self) -> HitRateCurve {
        HitRateCurve::from_histogram(self)
    }

    /// Shifts `delta` requests into (positive) or out of (negative) the
    /// smallest populated distance bucket, keeping `total` consistent.
    ///
    /// This is the SHARDS_adj correction (Waldspurger et al., FAST 2015,
    /// §3.2): under spatial key sampling at rate `R`, the sampled reference
    /// count has expectation `offered × R`, and any shortfall is known to
    /// come from *unsampled hot keys* — whose references would have had the
    /// smallest stack distances. Adding the shortfall to the first bucket
    /// (or draining an excess from it) removes the resulting bias in the
    /// hit-rate curve. Negative deltas drain successive buckets when the
    /// first is smaller than the excess.
    pub fn adjust_first_bucket(&mut self, delta: i64) {
        if delta > 0 {
            let first = self.counts.iter().position(|&c| c > 0).map(|i| i + 1);
            let distance = first.unwrap_or(1);
            if self.counts.len() < distance {
                self.counts.resize(distance, 0);
            }
            self.counts[distance - 1] += delta as u64;
            self.total += delta as u64;
        } else {
            let mut excess = delta.unsigned_abs();
            for c in self.counts.iter_mut() {
                if excess == 0 {
                    break;
                }
                let take = (*c).min(excess);
                *c -= take;
                self.total -= take;
                excess -= take;
            }
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &StackDistanceHistogram) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.cold += other.cold;
        self.total += other.total;
    }
}

/// Fenwick tree over access timestamps: supports point updates and suffix
/// sums, which is exactly what counting "distinct keys accessed more recently
/// than t" requires.
#[derive(Debug, Default)]
struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    fn with_len(len: usize) -> Self {
        Fenwick {
            tree: vec![0; len + 1],
        }
    }

    fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// Adds `delta` at 1-based position `pos`.
    fn add(&mut self, pos: usize, delta: i64) {
        let mut i = pos;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta) as u64;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `1..=pos`.
    fn prefix_sum(&self, pos: usize) -> u64 {
        let mut i = pos.min(self.len());
        let mut sum = 0;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }
}

/// Exact stack-distance tracker.
#[derive(Debug)]
pub struct StackDistanceTracker {
    /// Fenwick tree: position `t` is 1 if the key last accessed at time `t`
    /// has not been accessed since.
    fenwick: Fenwick,
    /// Last access time (1-based position in the Fenwick tree) per key.
    last_access: HashMap<Key, usize>,
    /// Next free timestamp.
    clock: usize,
    histogram: StackDistanceHistogram,
}

impl Default for StackDistanceTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl StackDistanceTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        StackDistanceTracker {
            fenwick: Fenwick::with_len(1024),
            last_access: HashMap::new(),
            clock: 0,
            histogram: StackDistanceHistogram::new(),
        }
    }

    /// Records an access to `key` and returns its stack distance
    /// (`None` for a cold access).
    pub fn record(&mut self, key: Key) -> Option<usize> {
        self.maybe_grow_or_compact();
        self.clock += 1;
        let now = self.clock;
        let distance = match self.last_access.get(&key).copied() {
            Some(prev) => {
                // Distinct keys accessed strictly after `prev`, plus the key
                // itself.
                let newer = self.total_marked() - self.fenwick.prefix_sum(prev);
                self.fenwick.add(prev, -1);
                Some(newer as usize + 1)
            }
            None => None,
        };
        self.fenwick.add(now, 1);
        self.last_access.insert(key, now);
        match distance {
            Some(d) => self.histogram.record(d),
            None => self.histogram.record_cold(),
        }
        distance
    }

    fn total_marked(&self) -> u64 {
        self.fenwick.prefix_sum(self.fenwick.len())
    }

    /// Number of distinct keys seen.
    pub fn distinct_keys(&self) -> usize {
        self.last_access.len()
    }

    /// The histogram accumulated so far.
    pub fn histogram(&self) -> &StackDistanceHistogram {
        &self.histogram
    }

    /// Consumes the tracker, returning the histogram.
    pub fn into_histogram(self) -> StackDistanceHistogram {
        self.histogram
    }

    /// The hit-rate curve implied by the requests seen so far.
    pub fn to_curve(&self) -> HitRateCurve {
        self.histogram.to_curve()
    }

    /// Grows the Fenwick tree when the clock outruns it, and compacts the
    /// timestamp space once it is much larger than the number of live keys
    /// (so long traces do not grow memory without bound).
    fn maybe_grow_or_compact(&mut self) {
        if self.clock + 1 < self.fenwick.len() {
            return;
        }
        let live = self.last_access.len();
        if self.clock > 4 * live.max(1024) {
            // Compact: renumber live keys by their access order.
            let mut by_time: Vec<(usize, Key)> =
                self.last_access.iter().map(|(&k, &t)| (t, k)).collect();
            by_time.sort_unstable();
            let new_len = (live * 2).max(1024);
            let mut fenwick = Fenwick::with_len(new_len);
            let mut last_access = HashMap::with_capacity(live);
            for (rank, &(_, key)) in by_time.iter().enumerate() {
                let pos = rank + 1;
                fenwick.add(pos, 1);
                last_access.insert(key, pos);
            }
            self.fenwick = fenwick;
            self.last_access = last_access;
            self.clock = live;
        } else {
            let new_len = (self.fenwick.len() * 2).max(1024);
            let mut fenwick = Fenwick::with_len(new_len);
            for (_, &t) in self.last_access.iter() {
                fenwick.add(t, 1);
            }
            self.fenwick = fenwick;
        }
    }
}

/// A naive O(N) per-request reference implementation (a literal LRU stack),
/// used to validate [`StackDistanceTracker`] in tests and available for
/// small-scale debugging.
#[derive(Debug, Default)]
pub struct NaiveStackDistance {
    stack: Vec<Key>,
    histogram: StackDistanceHistogram,
}

impl NaiveStackDistance {
    /// Creates an empty reference tracker.
    pub fn new() -> Self {
        NaiveStackDistance::default()
    }

    /// Records an access and returns the stack distance (None when cold).
    pub fn record(&mut self, key: Key) -> Option<usize> {
        let pos = self.stack.iter().position(|&k| k == key);
        match pos {
            Some(p) => {
                self.stack.remove(p);
                self.stack.insert(0, key);
                let d = p + 1;
                self.histogram.record(d);
                Some(d)
            }
            None => {
                self.stack.insert(0, key);
                self.histogram.record_cold();
                None
            }
        }
    }

    /// The accumulated histogram.
    pub fn histogram(&self) -> &StackDistanceHistogram {
        &self.histogram
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn key(i: u64) -> Key {
        Key::new(i)
    }

    #[test]
    fn repeated_access_has_distance_one() {
        let mut t = StackDistanceTracker::new();
        assert_eq!(t.record(key(1)), None);
        assert_eq!(t.record(key(1)), Some(1));
        assert_eq!(t.record(key(1)), Some(1));
    }

    #[test]
    fn distance_counts_distinct_keys_only() {
        let mut t = StackDistanceTracker::new();
        t.record(key(1));
        t.record(key(2));
        t.record(key(2));
        t.record(key(2));
        // Only one distinct key (2) was accessed since key 1's last access.
        assert_eq!(t.record(key(1)), Some(2));
    }

    #[test]
    fn sequential_scan_has_distance_equal_to_scan_length() {
        let mut t = StackDistanceTracker::new();
        let n = 100;
        for i in 0..n {
            assert_eq!(t.record(key(i)), None);
        }
        for i in 0..n {
            assert_eq!(t.record(key(i)), Some(n as usize));
        }
        assert_eq!(t.histogram().cold(), n);
        assert_eq!(t.histogram().count_at(n as usize), n);
    }

    #[test]
    fn matches_naive_reference_on_random_trace() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut exact = StackDistanceTracker::new();
        let mut naive = NaiveStackDistance::new();
        for _ in 0..5_000 {
            let k = key(rng.gen_range(0..200));
            assert_eq!(exact.record(k), naive.record(k));
        }
        assert_eq!(exact.histogram(), naive.histogram());
    }

    #[test]
    fn compaction_preserves_distances() {
        // Keep the live key count tiny while the clock runs far ahead so the
        // compaction path is exercised.
        let mut exact = StackDistanceTracker::new();
        let mut naive = NaiveStackDistance::new();
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..20_000 {
            let k = key(rng.gen_range(0..16));
            assert_eq!(exact.record(k), naive.record(k));
        }
        assert_eq!(exact.distinct_keys(), 16);
        assert_eq!(exact.histogram(), naive.histogram());
    }

    #[test]
    fn histogram_hits_at_matches_lru_semantics() {
        let mut t = StackDistanceTracker::new();
        // Cyclic access to 3 keys: every non-cold access has distance 3.
        for _ in 0..10 {
            for i in 0..3 {
                t.record(key(i));
            }
        }
        let h = t.histogram();
        assert_eq!(
            h.hits_at(2),
            0,
            "a 2-item LRU cache never hits a 3-item cycle"
        );
        assert_eq!(
            h.hits_at(3),
            27,
            "a 3-item cache hits everything after warm-up"
        );
        assert_eq!(h.total(), 30);
        assert_eq!(h.cold(), 3);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = StackDistanceHistogram::new();
        a.record(1);
        a.record(5);
        a.record_cold();
        let mut b = StackDistanceHistogram::new();
        b.record(5);
        b.record(2);
        a.merge(&b);
        assert_eq!(a.total(), 5);
        assert_eq!(a.count_at(5), 2);
        assert_eq!(a.count_at(1), 1);
        assert_eq!(a.cold(), 1);
        assert_eq!(a.max_distance(), 5);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_distance_rejected() {
        StackDistanceHistogram::new().record(0);
    }

    #[test]
    fn adjust_first_bucket_adds_and_drains() {
        let mut h = StackDistanceHistogram::new();
        h.record(3);
        h.record(3);
        h.record(7);
        h.adjust_first_bucket(4);
        assert_eq!(h.count_at(3), 6, "shortfall lands in the first bucket");
        assert_eq!(h.total(), 7);
        h.adjust_first_bucket(-7);
        assert_eq!(h.count_at(3), 0);
        assert_eq!(h.count_at(7), 0, "excess drains successive buckets");
        assert_eq!(h.total(), 0);
        // An empty histogram places the adjustment at distance 1.
        let mut empty = StackDistanceHistogram::new();
        empty.adjust_first_bucket(2);
        assert_eq!(empty.count_at(1), 2);
        assert_eq!(empty.total(), 2);
    }
}
