//! Deterministic generators.

use crate::{RngCore, SeedableRng};

/// The shim's standard generator: SplitMix64.
///
/// SplitMix64 passes BigCrush for the statistical quality the workloads
/// need (uniformity, independence across small moduli) and is trivially
/// seedable, which is what the deterministic traces rely on.
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}
