//! The Dynacache solver (paper Equation 1).
//!
//! Dynacache maximises `Σ_i w_i · f_i · h_i(m_i)` subject to `Σ_i m_i ≤ M`,
//! where `f_i` is the GET frequency of queue `i` and `h_i` its hit-rate
//! curve. On concave curves the optimum is reached by water-filling: keep
//! giving the next memory increment to the queue with the highest marginal
//! utility (`f_i · h_i'`), which is exactly what this module implements.
//!
//! Two variants are provided:
//!
//! * [`DynacacheSolver::allocate`] evaluates marginal gains on the *raw*
//!   measured curves with a fixed step. On concave curves this converges to
//!   the optimum; on curves with performance cliffs it underestimates the
//!   gain just before a cliff (it only looks one step ahead) and can get
//!   stuck — the failure mode the paper reports for application 19 (§3.5).
//! * [`DynacacheSolver::allocate_on_hull`] evaluates gains on the concave
//!   hulls, modelling a solver with perfect knowledge of cliff structure
//!   (the upper bound Talus-style partitioning can realise).

use crate::curve::HitRateCurve;
use crate::hull::ConcaveHull;
use serde::{Deserialize, Serialize};

/// Everything the solver needs to know about one queue.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QueueProfile {
    /// Hit-rate curve over queue sizes in items.
    pub curve: HitRateCurve,
    /// Fraction of the application's GETs that go to this queue (`f_i`).
    pub frequency: f64,
    /// Bytes charged per item in this queue (the slab chunk size plus
    /// per-item overhead) — converts byte budgets to item counts.
    pub bytes_per_item: u64,
    /// Optional priority weight (`w_i`); the paper uses 1 everywhere.
    pub weight: f64,
}

impl QueueProfile {
    /// A profile with unit weight.
    pub fn new(curve: HitRateCurve, frequency: f64, bytes_per_item: u64) -> Self {
        QueueProfile {
            curve,
            frequency,
            bytes_per_item: bytes_per_item.max(1),
            weight: 1.0,
        }
    }
}

/// The result of a solver run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// Bytes assigned to each queue, in input order.
    pub bytes: Vec<u64>,
    /// The solver's prediction of the overall hit rate under this
    /// allocation, `Σ f_i · h_i(m_i) / Σ f_i`.
    pub predicted_hit_rate: f64,
}

impl Allocation {
    /// Bytes assigned to queue `i`.
    pub fn bytes_for(&self, i: usize) -> u64 {
        self.bytes[i]
    }

    /// Total bytes assigned.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }
}

/// Marginal-utility water-filling solver.
#[derive(Clone, Debug)]
pub struct DynacacheSolver {
    /// Allocation granularity in bytes.
    pub step_bytes: u64,
}

impl Default for DynacacheSolver {
    fn default() -> Self {
        // 1 MB steps: the page granularity Memcached reassigns between slab
        // classes.
        DynacacheSolver {
            step_bytes: 1 << 20,
        }
    }
}

impl DynacacheSolver {
    /// Creates a solver with the given step granularity.
    pub fn new(step_bytes: u64) -> Self {
        assert!(step_bytes > 0, "step must be positive");
        DynacacheSolver { step_bytes }
    }

    /// Allocates `total_bytes` across the queues using their raw curves.
    pub fn allocate(&self, profiles: &[QueueProfile], total_bytes: u64) -> Allocation {
        self.run(profiles, total_bytes, false)
    }

    /// Allocates `total_bytes` across the queues using concave hulls.
    pub fn allocate_on_hull(&self, profiles: &[QueueProfile], total_bytes: u64) -> Allocation {
        self.run(profiles, total_bytes, true)
    }

    fn run(&self, profiles: &[QueueProfile], total_bytes: u64, on_hull: bool) -> Allocation {
        let n = profiles.len();
        if n == 0 {
            return Allocation {
                bytes: Vec::new(),
                predicted_hit_rate: 0.0,
            };
        }
        let hulls: Vec<Option<ConcaveHull>> = if on_hull {
            profiles
                .iter()
                .map(|p| Some(p.curve.concave_hull()))
                .collect()
        } else {
            vec![None; n]
        };
        let value = |i: usize, bytes: u64| -> f64 {
            let items = bytes / profiles[i].bytes_per_item;
            match &hulls[i] {
                Some(h) => h.value_at(items),
                None => profiles[i].curve.hit_rate_at(items),
            }
        };

        let mut bytes = vec![0u64; n];
        let mut remaining = total_bytes;
        while remaining > 0 {
            let step = self.step_bytes.min(remaining);
            let mut best: Option<(usize, f64)> = None;
            for i in 0..n {
                let gain = profiles[i].weight
                    * profiles[i].frequency
                    * (value(i, bytes[i] + step) - value(i, bytes[i]));
                match best {
                    Some((_, g)) if g >= gain => {}
                    _ => best = Some((i, gain)),
                }
            }
            let (winner, gain) = best.expect("n > 0");
            if gain <= 0.0 {
                // No queue benefits from more memory: spread the remainder
                // evenly so the full reservation stays assigned.
                let share = remaining / n as u64;
                if share == 0 {
                    bytes[0] += remaining;
                    remaining = 0;
                } else {
                    for b in bytes.iter_mut() {
                        *b += share;
                        remaining -= share;
                    }
                }
                continue;
            }
            bytes[winner] += step;
            remaining -= step;
        }

        let total_freq: f64 = profiles.iter().map(|p| p.frequency).sum();
        let predicted = if total_freq > 0.0 {
            profiles
                .iter()
                .enumerate()
                .map(|(i, p)| p.frequency * value(i, bytes[i]))
                .sum::<f64>()
                / total_freq
        } else {
            0.0
        };
        Allocation {
            bytes,
            predicted_hit_rate: predicted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::cliff_curve;

    fn concave(scale: f64, knee: f64) -> HitRateCurve {
        // h(x) = scale * x / (x + knee): concave, saturating at `scale`.
        let points = (1..=200u64)
            .map(|i| {
                let x = i * 100;
                (x, scale * x as f64 / (x as f64 + knee))
            })
            .collect();
        HitRateCurve::from_points(points)
    }

    #[test]
    fn single_queue_gets_everything_useful() {
        let solver = DynacacheSolver::new(1 << 10);
        let profiles = vec![QueueProfile::new(concave(0.9, 2_000.0), 1.0, 100)];
        let alloc = solver.allocate(&profiles, 1 << 20);
        assert_eq!(alloc.total_bytes(), 1 << 20);
        assert!(alloc.predicted_hit_rate > 0.7);
    }

    #[test]
    fn memory_flows_to_the_hotter_queue() {
        let solver = DynacacheSolver::new(4 << 10);
        // Queue 0 receives 90% of the GETs, queue 1 only 10%; identical curves.
        let profiles = vec![
            QueueProfile::new(concave(0.9, 5_000.0), 0.9, 100),
            QueueProfile::new(concave(0.9, 5_000.0), 0.1, 100),
        ];
        let alloc = solver.allocate(&profiles, 2 << 20);
        assert!(
            alloc.bytes_for(0) > alloc.bytes_for(1),
            "the high-frequency queue must receive more memory: {:?}",
            alloc.bytes
        );
        assert_eq!(alloc.total_bytes(), 2 << 20);
    }

    #[test]
    fn equal_queues_get_roughly_equal_memory() {
        let solver = DynacacheSolver::new(1 << 10);
        let profiles = vec![
            QueueProfile::new(concave(0.8, 3_000.0), 0.5, 100),
            QueueProfile::new(concave(0.8, 3_000.0), 0.5, 100),
        ];
        let alloc = solver.allocate(&profiles, 2 << 20);
        let a = alloc.bytes_for(0) as f64;
        let b = alloc.bytes_for(1) as f64;
        assert!((a - b).abs() / (a + b) < 0.05, "{:?}", alloc.bytes);
    }

    #[test]
    fn solver_gets_stuck_before_a_cliff_but_hull_does_not() {
        let solver = DynacacheSolver::new(16 << 10); // 16 KB steps = 160 items
                                                     // Queue 0: modest concave curve. Queue 1: all-or-nothing cliff at
                                                     // 10_000 items with a much higher plateau.
        let profiles = vec![
            QueueProfile::new(concave(0.5, 1_000.0), 0.5, 100),
            QueueProfile::new(cliff_curve(10_000, 0.9), 0.5, 100),
        ];
        // Enough memory to either feed queue 0 far into diminishing returns
        // or push queue 1 over its cliff (10_000 items = ~1 MB), but not both
        // generously.
        let total = 1_400_000u64;
        let raw = solver.allocate(&profiles, total);
        let hull = solver.allocate_on_hull(&profiles, total);
        let cliff_bytes_needed = 10_000 * 100;
        assert!(
            raw.bytes_for(1) < cliff_bytes_needed / 2,
            "raw solver should under-allocate the cliff queue (got {} bytes)",
            raw.bytes_for(1)
        );
        assert!(
            hull.bytes_for(1) >= cliff_bytes_needed * 95 / 100,
            "hull-aware solver should allocate the cliff queue (almost) up to \
             its cliff (got {} bytes)",
            hull.bytes_for(1)
        );
        assert!(hull.bytes_for(1) > 3 * raw.bytes_for(1));
        assert!(hull.predicted_hit_rate > raw.predicted_hit_rate);
    }

    #[test]
    fn zero_queues_and_zero_memory() {
        let solver = DynacacheSolver::default();
        let empty = solver.allocate(&[], 1 << 20);
        assert!(empty.bytes.is_empty());
        let profiles = vec![QueueProfile::new(concave(0.9, 100.0), 1.0, 64)];
        let none = solver.allocate(&profiles, 0);
        assert_eq!(none.bytes_for(0), 0);
        assert_eq!(none.predicted_hit_rate, 0.0);
    }

    #[test]
    fn flat_curves_still_distribute_all_memory() {
        let solver = DynacacheSolver::new(1 << 10);
        let flat = HitRateCurve::from_points(vec![(1, 0.5), (1_000, 0.5)]);
        let profiles = vec![
            QueueProfile::new(flat.clone(), 0.5, 100),
            QueueProfile::new(flat, 0.5, 100),
        ];
        let alloc = solver.allocate(&profiles, 1 << 20);
        assert_eq!(alloc.total_bytes(), 1 << 20);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_rejected() {
        let _ = DynacacheSolver::new(0);
    }
}
