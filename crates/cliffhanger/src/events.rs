//! Host-facing event hooks: the library narrates its decisions, the host
//! decides what to do with them.
//!
//! The balancing layers ([`crate::shard_balance`], [`crate::tenant_arbiter`])
//! and the managed cache ([`crate::controller::Cliffhanger`]) make memory
//! decisions continuously — budget transfers along shadow-hit gradients,
//! cliff-scaler ratio changes, free-pool grants. A server embedding the
//! library wants those decisions in its flight recorder *with the evidence
//! that justified them* (the gradients at decision time), but the library
//! must not know about journals, rings or JSON. [`EventSink`] is the seam:
//! hosts implement it (typically appending to a bounded journal), the
//! library calls it at decision points, and the no-op default keeps every
//! existing call site zero-cost.
//!
//! Sink methods take `&self`: the controller holds its sink behind an
//! `Arc`, and decision points can sit under a shared reference. Sinks that
//! accumulate state use interior mutability (the intended host sink is an
//! append-only ring with atomic claims, which needs none).

use std::sync::Arc;

/// One proposed budget transfer, with the smoothed gradient evidence.
///
/// Indices are in the balancer's own space: shard indices when emitted by a
/// [`crate::ShardRebalancer`], tenant indices when emitted through a
/// [`crate::TenantArbiter`] (which runs tenants in shard seats). The host
/// sink knows which balancer it is attached to and maps indices to names.
#[derive(Clone, Debug, PartialEq)]
pub struct TransferEvent {
    /// Donating queue index.
    pub from: usize,
    /// Receiving queue index.
    pub to: usize,
    /// Bytes proposed to move.
    pub bytes: u64,
    /// The donor's bias-corrected smoothed shadow-hit gradient.
    pub from_gradient: f64,
    /// The receiver's bias-corrected smoothed shadow-hit gradient.
    pub to_gradient: f64,
}

/// A sink for library decision events. Every method has a no-op default,
/// so implementations subscribe only to what they record.
pub trait EventSink {
    /// A balancer proposed a budget transfer (the host applies or rejects
    /// it; the gradients are only observable here, at proposal time).
    fn transfer(&self, _event: &TransferEvent) {}

    /// A cliff scaler's Talus request ratio moved to a new 5% step for
    /// `class` (per-twitch emission would flood any recorder).
    fn scaler_ratio(&self, _class: u32, _ratio: f64) {}

    /// The managed cache granted `bytes` of free-pool memory to `class`
    /// (the first-come-first-serve warmup path).
    fn free_pool_grant(&self, _class: u32, _bytes: u64) {}
}

/// The default sink: ignores everything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl EventSink for NoopSink {}

/// An optional shared sink slot, `Debug`-printable so the structs holding
/// it can keep deriving `Debug`.
#[derive(Clone, Default)]
pub(crate) struct SinkSlot(pub(crate) Option<Arc<dyn EventSink + Send + Sync>>);

impl std::fmt::Debug for SinkSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self.0 {
            Some(_) => "EventSink(installed)",
            None => "EventSink(none)",
        })
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use std::sync::Mutex;

    /// A test sink collecting everything it hears (`Mutex`-backed so it can
    /// also serve as a shared `Arc` sink in controller tests).
    #[derive(Default)]
    pub(crate) struct RecordingSink {
        pub(crate) transfers: Mutex<Vec<TransferEvent>>,
        pub(crate) ratios: Mutex<Vec<(u32, f64)>>,
        pub(crate) grants: Mutex<Vec<(u32, u64)>>,
    }

    impl EventSink for RecordingSink {
        fn transfer(&self, event: &TransferEvent) {
            self.transfers.lock().unwrap().push(event.clone());
        }
        fn scaler_ratio(&self, class: u32, ratio: f64) {
            self.ratios.lock().unwrap().push((class, ratio));
        }
        fn free_pool_grant(&self, class: u32, bytes: u64) {
            self.grants.lock().unwrap().push((class, bytes));
        }
    }
}
