//! The shared cache behind the TCP connections.
//!
//! The wire protocol uses arbitrary byte-string keys while the cache core
//! uses compact 64-bit keys, so the backend hashes the byte key (FNV-1a) and
//! stores the full key alongside the value to verify exact matches on
//! lookup — a hash collision is simply treated as a miss for the colliding
//! key, never as a wrong value.

use bytes::Bytes;
use cache_core::store::AllocationMode;
use cache_core::{hash_bytes, Key, PolicyKind, SlabCache, SlabCacheConfig, SlabConfig};
use cliffhanger::{Cliffhanger, CliffhangerConfig};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Which allocation scheme the server runs (Tables 6–7 compare these).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendMode {
    /// Stock Memcached behaviour: first-come-first-serve slab allocation.
    Default,
    /// Hill climbing only (Algorithm 1).
    HillClimbing,
    /// The full Cliffhanger system (both algorithms).
    Cliffhanger,
}

/// Backend configuration.
#[derive(Clone, Debug)]
pub struct BackendConfig {
    /// Total cache memory in bytes.
    pub total_bytes: u64,
    /// Which allocation scheme to run.
    pub mode: BackendMode,
    /// Slab-class geometry.
    pub slab: SlabConfig,
}

impl Default for BackendConfig {
    fn default() -> Self {
        BackendConfig {
            total_bytes: 64 << 20,
            mode: BackendMode::Cliffhanger,
            slab: SlabConfig::default(),
        }
    }
}

/// A value as stored by the server.
#[derive(Clone, Debug)]
struct StoredValue {
    /// The full byte-string key (for exact-match verification).
    key: Bytes,
    /// Client flags.
    flags: u32,
    /// The payload.
    data: Bytes,
}

enum Inner {
    Plain(Box<SlabCache<StoredValue>>),
    Managed(Box<Cliffhanger<StoredValue>>),
}

impl Inner {
    fn build(config: &BackendConfig) -> Inner {
        match config.mode {
            BackendMode::Default => Inner::Plain(Box::new(SlabCache::new(SlabCacheConfig {
                slab: config.slab.clone(),
                total_bytes: config.total_bytes,
                policy: PolicyKind::Lru,
                mode: AllocationMode::FirstComeFirstServe { page_size: 1 << 20 },
                shadow_bytes: 0,
                tail_region_items: 0,
            }))),
            BackendMode::HillClimbing | BackendMode::Cliffhanger => {
                let cfg = CliffhangerConfig {
                    slab: config.slab.clone(),
                    total_bytes: config.total_bytes,
                    enable_hill_climbing: true,
                    enable_cliff_scaling: config.mode == BackendMode::Cliffhanger,
                    ..CliffhangerConfig::default()
                };
                Inner::Managed(Box::new(Cliffhanger::new(cfg)))
            }
        }
    }
}

/// A thread-safe cache shared by every connection.
pub struct SharedCache {
    config: BackendConfig,
    inner: Mutex<Inner>,
    /// Wire-level counters (independent of the cache-core statistics).
    gets: AtomicU64,
    hits: AtomicU64,
    sets: AtomicU64,
    deletes: AtomicU64,
}

impl SharedCache {
    /// Creates a shared cache.
    pub fn new(config: BackendConfig) -> Self {
        SharedCache {
            inner: Mutex::new(Inner::build(&config)),
            config,
            gets: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            sets: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
        }
    }

    fn charge_size(key: &[u8], data: &[u8]) -> u64 {
        (key.len() + data.len()) as u64
    }

    /// Looks up a key, returning its flags and value on an exact match.
    pub fn get(&self, key: &[u8]) -> Option<(u32, Bytes)> {
        self.gets.fetch_add(1, Ordering::Relaxed);
        let id = Key::new(hash_bytes(key));
        let mut inner = self.inner.lock();
        let found = match &mut *inner {
            Inner::Plain(cache) => {
                let hit = cache.get_untyped(id).result.hit;
                if hit {
                    cache.value(id).cloned()
                } else {
                    None
                }
            }
            Inner::Managed(cache) => {
                let (_, event) = cache.get_untyped(id);
                if event.hit {
                    cache.value(id).cloned()
                } else {
                    None
                }
            }
        };
        match found {
            Some(stored) if stored.key == key => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some((stored.flags, stored.data))
            }
            _ => None,
        }
    }

    /// Whether a key is resident (exact match), without recording a GET.
    pub fn contains(&self, key: &[u8]) -> bool {
        let id = Key::new(hash_bytes(key));
        let inner = self.inner.lock();
        let stored = match &*inner {
            Inner::Plain(cache) => cache.value(id),
            Inner::Managed(cache) => cache.value(id),
        };
        stored.map(|s| s.key == key).unwrap_or(false)
    }

    /// Stores a key unconditionally. Returns `false` only if the item could
    /// not be admitted (e.g. larger than the largest slab class).
    pub fn set(&self, key: &[u8], flags: u32, data: Bytes) -> bool {
        self.sets.fetch_add(1, Ordering::Relaxed);
        let id = Key::new(hash_bytes(key));
        let size = Self::charge_size(key, &data);
        let stored = StoredValue {
            key: Bytes::copy_from_slice(key),
            flags,
            data,
        };
        let mut inner = self.inner.lock();
        match &mut *inner {
            Inner::Plain(cache) => cache
                .set(id, size, stored)
                .map(|(_, r)| r.admitted)
                .unwrap_or(false),
            Inner::Managed(cache) => cache
                .set(id, size, stored)
                .map(|(_, admitted)| admitted)
                .unwrap_or(false),
        }
    }

    /// Stores a key only if it is absent (`add`).
    pub fn add(&self, key: &[u8], flags: u32, data: Bytes) -> bool {
        if self.contains(key) {
            return false;
        }
        self.set(key, flags, data)
    }

    /// Stores a key only if it is present (`replace`).
    pub fn replace(&self, key: &[u8], flags: u32, data: Bytes) -> bool {
        if !self.contains(key) {
            return false;
        }
        self.set(key, flags, data)
    }

    /// Deletes a key; returns whether it was present.
    pub fn delete(&self, key: &[u8]) -> bool {
        self.deletes.fetch_add(1, Ordering::Relaxed);
        if !self.contains(key) {
            return false;
        }
        let id = Key::new(hash_bytes(key));
        let mut inner = self.inner.lock();
        match &mut *inner {
            Inner::Plain(cache) => cache.delete(id),
            Inner::Managed(cache) => cache.delete(id),
        }
    }

    /// Drops every item (`flush_all`).
    pub fn flush(&self) {
        let mut inner = self.inner.lock();
        *inner = Inner::build(&self.config);
    }

    /// Wire-level and cache-level statistics as `STAT` pairs.
    pub fn stats(&self) -> Vec<(String, String)> {
        let inner = self.inner.lock();
        let core = match &*inner {
            Inner::Plain(cache) => cache.stats(),
            Inner::Managed(cache) => cache.stats(),
        };
        let used = match &*inner {
            Inner::Plain(cache) => cache.used_bytes(),
            Inner::Managed(cache) => cache.used_bytes(),
        };
        let items = match &*inner {
            Inner::Plain(cache) => cache.len(),
            Inner::Managed(cache) => cache.len(),
        };
        vec![
            (
                "cmd_get".into(),
                self.gets.load(Ordering::Relaxed).to_string(),
            ),
            (
                "cmd_set".into(),
                self.sets.load(Ordering::Relaxed).to_string(),
            ),
            (
                "get_hits".into(),
                self.hits.load(Ordering::Relaxed).to_string(),
            ),
            (
                "get_misses".into(),
                (self.gets.load(Ordering::Relaxed) - self.hits.load(Ordering::Relaxed)).to_string(),
            ),
            (
                "cmd_delete".into(),
                self.deletes.load(Ordering::Relaxed).to_string(),
            ),
            ("bytes".into(), used.to_string()),
            ("curr_items".into(), items.to_string()),
            ("evictions".into(), core.evictions.to_string()),
            ("limit_maxbytes".into(), self.config.total_bytes.to_string()),
            (
                "allocator".into(),
                format!("{:?}", self.config.mode).to_lowercase(),
            ),
        ]
    }

    /// The backend mode this cache runs.
    pub fn mode(&self) -> BackendMode {
        self.config.mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(mode: BackendMode) -> SharedCache {
        SharedCache::new(BackendConfig {
            total_bytes: 4 << 20,
            mode,
            slab: SlabConfig::default(),
        })
    }

    #[test]
    fn set_get_delete_roundtrip_all_modes() {
        for mode in [
            BackendMode::Default,
            BackendMode::HillClimbing,
            BackendMode::Cliffhanger,
        ] {
            let c = cache(mode);
            assert!(c.get(b"missing").is_none());
            assert!(c.set(b"hello", 7, Bytes::from("world")));
            let (flags, value) = c.get(b"hello").expect("must hit");
            assert_eq!(flags, 7);
            assert_eq!(value, Bytes::from("world"));
            assert!(c.delete(b"hello"));
            assert!(!c.delete(b"hello"));
            assert!(c.get(b"hello").is_none());
        }
    }

    #[test]
    fn add_and_replace_semantics() {
        let c = cache(BackendMode::Cliffhanger);
        assert!(c.add(b"k", 0, Bytes::from("1")));
        assert!(!c.add(b"k", 0, Bytes::from("2")), "add must not overwrite");
        assert_eq!(c.get(b"k").unwrap().1, Bytes::from("1"));
        assert!(c.replace(b"k", 0, Bytes::from("3")));
        assert_eq!(c.get(b"k").unwrap().1, Bytes::from("3"));
        assert!(!c.replace(b"absent", 0, Bytes::from("x")));
    }

    #[test]
    fn eviction_under_pressure_keeps_running() {
        let c = SharedCache::new(BackendConfig {
            total_bytes: 256 << 10,
            mode: BackendMode::Cliffhanger,
            slab: SlabConfig::default(),
        });
        let payload = Bytes::from(vec![0u8; 1_000]);
        for i in 0..2_000u32 {
            assert!(c.set(format!("key{i}").as_bytes(), 0, payload.clone()));
        }
        // Recent keys should be resident; the cache stays within budget.
        let stats: std::collections::HashMap<String, String> = c.stats().into_iter().collect();
        let bytes: u64 = stats["bytes"].parse().unwrap();
        assert!(bytes <= 256 << 10);
        let hits_recent = (1_990..2_000)
            .filter(|i| c.get(format!("key{i}").as_bytes()).is_some())
            .count();
        assert!(
            hits_recent >= 5,
            "recent keys mostly resident, got {hits_recent}"
        );
    }

    #[test]
    fn flush_clears_everything() {
        let c = cache(BackendMode::Default);
        c.set(b"a", 0, Bytes::from("1"));
        c.flush();
        assert!(c.get(b"a").is_none());
        let stats: std::collections::HashMap<String, String> = c.stats().into_iter().collect();
        assert_eq!(stats["curr_items"], "0");
    }

    #[test]
    fn stats_report_wire_counters() {
        let c = cache(BackendMode::HillClimbing);
        c.set(b"a", 0, Bytes::from("1"));
        c.get(b"a");
        c.get(b"b");
        let stats: std::collections::HashMap<String, String> = c.stats().into_iter().collect();
        assert_eq!(stats["cmd_get"], "2");
        assert_eq!(stats["get_hits"], "1");
        assert_eq!(stats["get_misses"], "1");
        assert_eq!(stats["cmd_set"], "1");
        assert_eq!(stats["allocator"], "hillclimbing");
    }
}
