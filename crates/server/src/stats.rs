//! The single `stats` renderer behind both backends.
//!
//! The embedded [`crate::backend::SharedCache`] and the server's
//! shared-nothing data plane assemble a [`StatsSnapshot`] from their own
//! worlds (engine locks there, loop-snapshot messages here) and render it
//! through [`render_stats`], so the stat key set and ordering cannot drift
//! between the two — the committed benchmark baselines and the CI smoke
//! validators parse these keys by name.

use crate::backend::BackendMode;
use crate::reactor::ConnTelemetry;
use cache_core::CacheStats;

/// A snapshot of wire-level counters for one engine (or an aggregate).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct WireCounts {
    pub(crate) gets: u64,
    pub(crate) hits: u64,
    pub(crate) misses: u64,
    pub(crate) sets: u64,
    pub(crate) deletes: u64,
}

impl WireCounts {
    pub(crate) fn accumulate(&mut self, other: WireCounts) {
        self.gets += other.gets;
        self.hits += other.hits;
        self.misses += other.misses;
        self.sets += other.sets;
        self.deletes += other.deletes;
    }
}

/// Everything `stats` reports about one (shard, tenant) engine.
#[derive(Clone, Default)]
pub(crate) struct EngineStat {
    pub(crate) wire: WireCounts,
    pub(crate) core: CacheStats,
    pub(crate) used: u64,
    pub(crate) items: usize,
}

/// Round counters of the two balancing levels.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct BalanceCounters {
    pub(crate) rebalance_enabled: bool,
    pub(crate) rebalance_runs: u64,
    pub(crate) rebalance_transfers: u64,
    pub(crate) rebalance_bytes: u64,
    pub(crate) arbiter_enabled: bool,
    pub(crate) arbiter_runs: u64,
    pub(crate) arbiter_transfers: u64,
    pub(crate) arbiter_bytes: u64,
}

/// The backend-independent inputs of one `stats` report.
pub(crate) struct StatsSnapshot {
    pub(crate) total_bytes: u64,
    pub(crate) mode: BackendMode,
    pub(crate) requested_shards: usize,
    /// Engine stats indexed `[shard][tenant]`.
    pub(crate) cells: Vec<Vec<EngineStat>>,
    pub(crate) tenant_names: Vec<String>,
    pub(crate) tenant_budgets: Vec<u64>,
    pub(crate) shard_budgets: Vec<u64>,
    pub(crate) balance: BalanceCounters,
}

/// Per-event-loop counters of the shared-nothing data plane, reported only
/// by the server (`None` for the embedded backend).
pub(crate) struct PlaneStats {
    /// Owning event loop per shard index.
    pub(crate) owner_of: Vec<usize>,
    /// Per loop: (data ops executed for its own connections, data ops
    /// executed on behalf of another loop, data ops it forwarded away).
    pub(crate) per_loop: Vec<(u64, u64, u64)>,
    /// Admin commands forwarded to the control thread.
    pub(crate) admin_msgs: u64,
    /// The configured idle reaping timeout in milliseconds (0 = disabled).
    pub(crate) idle_timeout_ms: u64,
}

/// Renders a snapshot as the `STAT` key/value list: aggregated counters,
/// allocation-hierarchy counters, the optional connection section, then
/// per-tenant and per-shard breakdowns, then the optional data-plane
/// section.
pub(crate) fn render_stats(
    snap: &StatsSnapshot,
    conns: Option<&ConnTelemetry>,
    plane: Option<&PlaneStats>,
) -> Vec<(String, String)> {
    let ns = snap.cells.len();
    let nt = snap.tenant_names.len();
    let mut totals = WireCounts::default();
    let mut core_total = CacheStats::default();
    let mut used = 0u64;
    let mut items = 0usize;
    let mut tenant_wire = vec![WireCounts::default(); nt];
    let mut tenant_core = vec![CacheStats::default(); nt];
    let mut tenant_used = vec![0u64; nt];
    let mut tenant_items = vec![0usize; nt];
    let mut shard_wire = vec![WireCounts::default(); ns];
    let mut shard_core = vec![CacheStats::default(); ns];
    let mut shard_used = vec![0u64; ns];
    let mut shard_items = vec![0usize; ns];
    for (s, cells) in snap.cells.iter().enumerate() {
        for (t, cell) in cells.iter().enumerate().take(nt) {
            totals.accumulate(cell.wire);
            core_total += cell.core;
            used += cell.used;
            items += cell.items;
            tenant_wire[t].accumulate(cell.wire);
            tenant_core[t] += cell.core;
            tenant_used[t] += cell.used;
            tenant_items[t] += cell.items;
            shard_wire[s].accumulate(cell.wire);
            shard_core[s] += cell.core;
            shard_used[s] += cell.used;
            shard_items[s] += cell.items;
        }
    }

    let mut out = vec![
        ("cmd_get".into(), totals.gets.to_string()),
        ("cmd_set".into(), totals.sets.to_string()),
        ("get_hits".into(), totals.hits.to_string()),
        ("get_misses".into(), totals.misses.to_string()),
        ("cmd_delete".into(), totals.deletes.to_string()),
        ("bytes".into(), used.to_string()),
        ("curr_items".into(), items.to_string()),
        ("evictions".into(), core_total.evictions.to_string()),
        ("limit_maxbytes".into(), snap.total_bytes.to_string()),
        (
            "allocator".into(),
            format!("{:?}", snap.mode).to_lowercase(),
        ),
        ("shard_count".into(), ns.to_string()),
        ("shards_requested".into(), snap.requested_shards.to_string()),
        (
            "shard_bytes".into(),
            (snap.total_bytes / ns.max(1) as u64).to_string(),
        ),
        ("tenant_count".into(), nt.to_string()),
        (
            "rebalance:enabled".into(),
            (snap.balance.rebalance_enabled as u8).to_string(),
        ),
        (
            "rebalance:runs".into(),
            snap.balance.rebalance_runs.to_string(),
        ),
        (
            "rebalance:transfers".into(),
            snap.balance.rebalance_transfers.to_string(),
        ),
        (
            "rebalance:bytes_moved".into(),
            snap.balance.rebalance_bytes.to_string(),
        ),
        (
            "arbiter:enabled".into(),
            (snap.balance.arbiter_enabled as u8).to_string(),
        ),
        ("arbiter:runs".into(), snap.balance.arbiter_runs.to_string()),
        (
            "arbiter:transfers".into(),
            snap.balance.arbiter_transfers.to_string(),
        ),
        (
            "arbiter:bytes_moved".into(),
            snap.balance.arbiter_bytes.to_string(),
        ),
    ];
    if let Some(conns) = conns {
        out.push(("curr_connections".into(), conns.curr().to_string()));
        out.push(("total_connections".into(), conns.total().to_string()));
        out.push(("rejected_connections".into(), conns.rejected().to_string()));
        out.push((
            "max_connections".into(),
            conns.max_connections().to_string(),
        ));
        for i in 0..conns.loops() {
            out.push((format!("conns:loop:{i}"), conns.loop_curr(i).to_string()));
        }
        out.push((
            "idle_closed_connections".into(),
            conns.idle_closed().to_string(),
        ));
    }
    for t in 0..nt {
        let name = &snap.tenant_names[t];
        let wire = tenant_wire[t];
        out.push((format!("tenant:{name}:cmd_get"), wire.gets.to_string()));
        out.push((format!("tenant:{name}:cmd_set"), wire.sets.to_string()));
        out.push((format!("tenant:{name}:get_hits"), wire.hits.to_string()));
        out.push((format!("tenant:{name}:get_misses"), wire.misses.to_string()));
        out.push((
            format!("tenant:{name}:cmd_delete"),
            wire.deletes.to_string(),
        ));
        out.push((format!("tenant:{name}:bytes"), tenant_used[t].to_string()));
        out.push((
            format!("tenant:{name}:curr_items"),
            tenant_items[t].to_string(),
        ));
        out.push((
            format!("tenant:{name}:evictions"),
            tenant_core[t].evictions.to_string(),
        ));
        out.push((
            format!("tenant:{name}:budget"),
            snap.tenant_budgets[t].to_string(),
        ));
        out.push((
            format!("tenant:{name}:shadow_hits"),
            tenant_core[t].shadow_hits.to_string(),
        ));
    }
    for s in 0..ns {
        let wire = shard_wire[s];
        out.push((format!("shard:{s}:cmd_get"), wire.gets.to_string()));
        out.push((format!("shard:{s}:cmd_set"), wire.sets.to_string()));
        out.push((format!("shard:{s}:get_hits"), wire.hits.to_string()));
        out.push((format!("shard:{s}:get_misses"), wire.misses.to_string()));
        out.push((format!("shard:{s}:cmd_delete"), wire.deletes.to_string()));
        out.push((format!("shard:{s}:bytes"), shard_used[s].to_string()));
        out.push((format!("shard:{s}:curr_items"), shard_items[s].to_string()));
        out.push((
            format!("shard:{s}:evictions"),
            shard_core[s].evictions.to_string(),
        ));
        out.push((
            format!("shard:{s}:budget"),
            snap.shard_budgets[s].to_string(),
        ));
        out.push((
            format!("shard:{s}:shadow_hits"),
            shard_core[s].shadow_hits.to_string(),
        ));
    }
    if let Some(plane) = plane {
        let local: u64 = plane.per_loop.iter().map(|l| l.0).sum();
        let remote: u64 = plane.per_loop.iter().map(|l| l.1).sum();
        out.push(("plane:event_loops".into(), plane.per_loop.len().to_string()));
        out.push(("plane:local_ops".into(), local.to_string()));
        out.push(("plane:remote_ops".into(), remote.to_string()));
        out.push(("plane:admin_msgs".into(), plane.admin_msgs.to_string()));
        out.push((
            "plane:idle_timeout_ms".into(),
            plane.idle_timeout_ms.to_string(),
        ));
        for (i, (local_ops, remote_in, remote_out)) in plane.per_loop.iter().enumerate() {
            out.push((format!("loop:{i}:local_ops"), local_ops.to_string()));
            out.push((format!("loop:{i}:remote_in"), remote_in.to_string()));
            out.push((format!("loop:{i}:remote_out"), remote_out.to_string()));
        }
        for (s, owner) in plane.owner_of.iter().enumerate() {
            out.push((format!("shard:{s}:owner_loop"), owner.to_string()));
        }
    }
    out
}
