//! Cliffhanger configuration.
//!
//! Defaults follow the paper's §5.1 and §5.3: 1 MB hill-climbing shadow
//! queues, 128-item cliff-scaling shadow queues, 1–4 KB credits, and cliff
//! scaling only on queues larger than 1000 items.

use cache_core::{PolicyKind, SlabConfig};
use serde::{Deserialize, Serialize};

/// Configuration of a [`crate::Cliffhanger`] cache.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CliffhangerConfig {
    /// Slab-class geometry shared with the rest of the system.
    pub slab: SlabConfig,
    /// Total memory available to the application on this server, in bytes.
    pub total_bytes: u64,
    /// Eviction policy of the physical queues (LRU by default; the Facebook
    /// scheme and others compose with Cliffhanger, §5.5).
    pub policy: PolicyKind,
    /// Credit granted/removed per shadow-queue hit, in bytes (1–4 KB, §5.3).
    pub credit_bytes: u64,
    /// Size of the hill-climbing shadow queue per class, expressed in bytes
    /// of simulated requests (1 MB, §5.3); entry counts are derived from the
    /// class chunk size.
    pub hill_shadow_bytes: u64,
    /// Size of each cliff-scaling shadow queue / physical tail region, in
    /// items (128, §5.1).
    pub cliff_shadow_items: usize,
    /// Cliff scaling only runs on queues with at least this many items
    /// (1000, §5.1).
    pub cliff_min_items: u64,
    /// Whether Algorithm 1 (hill climbing across queues) runs.
    pub enable_hill_climbing: bool,
    /// Whether Algorithms 2–3 (cliff scaling within a queue) run.
    pub enable_cliff_scaling: bool,
    /// Floor below which hill climbing will not shrink a class, in bytes.
    pub min_class_bytes: u64,
    /// Seed for the random "loser" selection in Algorithm 1 (deterministic
    /// runs for experiments).
    pub seed: u64,
}

impl Default for CliffhangerConfig {
    fn default() -> Self {
        CliffhangerConfig {
            slab: SlabConfig::default(),
            total_bytes: 64 << 20,
            policy: PolicyKind::Lru,
            credit_bytes: 4 << 10,
            hill_shadow_bytes: 1 << 20,
            cliff_shadow_items: 128,
            cliff_min_items: 1_000,
            enable_hill_climbing: true,
            enable_cliff_scaling: true,
            min_class_bytes: 64 << 10,
            seed: 0xC11F_F00D,
        }
    }
}

impl CliffhangerConfig {
    /// A configuration with the given memory budget and defaults elsewhere.
    pub fn with_total_bytes(total_bytes: u64) -> Self {
        CliffhangerConfig {
            total_bytes,
            ..CliffhangerConfig::default()
        }
    }

    /// A configuration whose shadow-queue and credit sizes are scaled to the
    /// memory budget, preserving the paper's *ratios* (1 MB shadow queues
    /// and 1–4 KB credits against 50 MB-plus applications) when the budget
    /// is much smaller than a production reservation. Simulation at reduced
    /// scale uses this constructor; at 50 MB and above it coincides with the
    /// paper's constants.
    pub fn scaled_for(total_bytes: u64) -> Self {
        let defaults = CliffhangerConfig::default();
        // 1 MB per 50 MB of reservation, never below 16 KB or above 1 MB.
        let hill_shadow_bytes = (total_bytes / 50).clamp(16 << 10, 1 << 20);
        // 4 KB per 50 MB of reservation, never below 256 B or above 4 KB.
        let credit_bytes = (total_bytes / 12_800).clamp(256, 4 << 10);
        // Keep the floor proportional too so small reservations stay mobile.
        let min_class_bytes = (total_bytes / 1_024).clamp(1 << 10, 64 << 10);
        // The cliff shadows bound how *deep* a cliff the pointers can see:
        // a cyclically-scanned key is only observed if it is re-referenced
        // within `cliff_shadow_items` evictions, so a fixed 128 caps
        // detection at a ~2% overshoot on multi-thousand-item queues. Scale
        // the window with the reservation (~1 entry per 8 KB) so the
        // detectable overshoot stays a constant fraction of the queue.
        let cliff_shadow_items = (total_bytes / (8 << 10)).clamp(128, 2_048) as usize;
        CliffhangerConfig {
            total_bytes,
            hill_shadow_bytes,
            credit_bytes,
            min_class_bytes,
            cliff_shadow_items,
            ..defaults
        }
    }

    /// Disables cliff scaling (the hill-climbing-only ablation of Table 4).
    pub fn hill_climbing_only(mut self) -> Self {
        self.enable_cliff_scaling = false;
        self.enable_hill_climbing = true;
        self
    }

    /// Disables hill climbing (the cliff-scaling-only ablation of Table 4).
    pub fn cliff_scaling_only(mut self) -> Self {
        self.enable_cliff_scaling = true;
        self.enable_hill_climbing = false;
        self
    }

    /// Disables both algorithms (useful as a managed-cache baseline).
    pub fn disabled(mut self) -> Self {
        self.enable_cliff_scaling = false;
        self.enable_hill_climbing = false;
        self
    }

    /// Charge per item in a class: chunk size plus fixed item overhead.
    pub fn charge_per_item(&self, class: cache_core::ClassId) -> u64 {
        self.slab.chunk_size(class) + cache_core::ITEM_OVERHEAD
    }

    /// Hill-climbing shadow-queue capacity, in entries, for a class.
    pub fn hill_shadow_entries(&self, class: cache_core::ClassId) -> usize {
        if self.hill_shadow_bytes == 0 {
            return 0;
        }
        (self.hill_shadow_bytes / self.slab.chunk_size(class)).max(1) as usize
    }

    /// Credit size in items for a class (at least one item).
    pub fn credit_items(&self, class: cache_core::ClassId) -> u64 {
        (self.credit_bytes / self.charge_per_item(class)).max(1)
    }

    /// Validates the configuration, panicking on nonsensical values.
    pub fn validate(&self) {
        assert!(self.total_bytes > 0, "total_bytes must be positive");
        assert!(self.credit_bytes > 0, "credit_bytes must be positive");
        assert!(
            self.cliff_shadow_items > 0,
            "cliff_shadow_items must be positive"
        );
    }
}

/// Configuration of the cross-shard rebalancer
/// ([`crate::shard_balance::ShardRebalancer`]).
///
/// The defaults follow the same shape as Algorithm 1's knobs, one level up:
/// a small fixed credit moved per decision, a floor that keeps every shard's
/// shadow queues alive, and an observation interval long enough for the
/// shadow-hit deltas to dominate sampling noise.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ShardBalanceConfig {
    /// Whether cross-shard rebalancing runs at all.
    pub enabled: bool,
    /// How many wire requests between rebalancing rounds (the host counts).
    pub interval_requests: u64,
    /// Budget moved per transfer, in bytes. Like the per-class credit, small
    /// relative to a shard's budget so the walk stays incremental.
    pub credit_bytes: u64,
    /// Floor below which no shard's budget is shrunk. A shard at the floor
    /// can still climb back: its shadow queues keep observing demand.
    pub min_shard_bytes: u64,
    /// Minimum absolute shadow-hit-delta gap between a winner and a donor
    /// before a transfer happens (absorbs counting noise near uniformity).
    pub min_gradient_gap: u64,
    /// Exponential smoothing factor applied to the per-interval shadow-hit
    /// deltas (1.0 = use the raw delta of the last interval only). One
    /// interval's delta is a noisy gradient estimate; transfers that chase
    /// it evict real items on the donor, so the rebalancer follows the
    /// smoothed demand instead.
    pub smoothing: f64,
    /// Relative band on top of `min_gradient_gap`: the winner's delta must
    /// exceed the donor's by this fraction (0.2 = 20%) before budget moves.
    pub hysteresis: f64,
    /// At most this many winner/donor pairs transfer per round.
    pub max_transfers_per_round: usize,
}

impl Default for ShardBalanceConfig {
    fn default() -> Self {
        ShardBalanceConfig {
            enabled: true,
            interval_requests: 4_096,
            credit_bytes: 256 << 10,
            min_shard_bytes: 1 << 20,
            min_gradient_gap: 4,
            smoothing: 0.25,
            hysteresis: 0.05,
            max_transfers_per_round: 4,
        }
    }
}

impl ShardBalanceConfig {
    /// A disabled configuration (static per-shard budgets, the PR 2
    /// behaviour).
    pub fn disabled() -> Self {
        ShardBalanceConfig {
            enabled: false,
            ..ShardBalanceConfig::default()
        }
    }

    /// A configuration whose credit and floor are scaled to the per-shard
    /// budget, mirroring [`CliffhangerConfig::scaled_for`]: experiments at
    /// reduced scale keep the paper's *ratios* instead of its absolute
    /// constants.
    pub fn scaled_for(total_bytes: u64, shards: usize) -> Self {
        let shard_bytes = total_bytes / shards.max(1) as u64;
        // Move ~1/64 of a shard's budget per decision, never below 16 KB or
        // above the 256 KB default.
        let credit_bytes = (shard_bytes / 64).clamp(16 << 10, 256 << 10);
        // Keep every shard at least an eighth of its even share.
        let min_shard_bytes = (shard_bytes / 8).max(64 << 10);
        ShardBalanceConfig {
            credit_bytes,
            min_shard_bytes,
            ..ShardBalanceConfig::default()
        }
    }

    /// Validates the configuration, panicking on nonsensical values.
    pub fn validate(&self) {
        assert!(self.credit_bytes > 0, "credit_bytes must be positive");
        assert!(
            self.interval_requests > 0,
            "interval_requests must be positive"
        );
        assert!(self.hysteresis >= 0.0, "hysteresis must be non-negative");
        assert!(
            self.smoothing > 0.0 && self.smoothing <= 1.0,
            "smoothing must be in (0, 1]"
        );
        assert!(
            self.max_transfers_per_round > 0,
            "max_transfers_per_round must be positive"
        );
    }
}

/// Configuration of the cross-tenant arbiter
/// ([`crate::tenant_arbiter::TenantArbiter`]).
///
/// The same gradient machinery as [`ShardBalanceConfig`], one level further
/// up: the "queues" are now whole applications sharing a server (the paper's
/// §4.1 "queue of an entire application" reading, and the setting of its §3
/// Memcachier analysis — static reservations leave hit rate on the table).
/// Tenant moves are rarer and chunkier than shard moves: an application's
/// demand shifts on minutes, not thousands of requests, so the defaults use
/// a longer interval and a larger credit than the shard rebalancer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TenantBalanceConfig {
    /// Whether cross-tenant arbitration runs at all. Off reproduces
    /// Memcachier's static reservations exactly.
    pub enabled: bool,
    /// How many wire requests between arbitration rounds (the host counts).
    pub interval_requests: u64,
    /// Budget moved per tenant transfer, in bytes.
    pub credit_bytes: u64,
    /// Floor below which no tenant's budget is shrunk — a paying tenant is
    /// never arbitrated down to nothing, and its shadow queues keep
    /// observing demand so it can climb back.
    pub min_tenant_bytes: u64,
    /// Minimum absolute shadow-hit-delta gap between winner and donor.
    pub min_gradient_gap: u64,
    /// EWMA factor on the per-interval shadow-hit deltas (1.0 = raw delta).
    pub smoothing: f64,
    /// Relative band on top of `min_gradient_gap` (0.1 = winner's delta must
    /// exceed the donor's by 10%).
    pub hysteresis: f64,
    /// At most this many winner/donor pairs transfer per round.
    pub max_transfers_per_round: usize,
}

impl Default for TenantBalanceConfig {
    fn default() -> Self {
        TenantBalanceConfig {
            enabled: true,
            interval_requests: 8_192,
            credit_bytes: 512 << 10,
            min_tenant_bytes: 1 << 20,
            // Deliberately more conservative than the shard rebalancer:
            // identically-loaded tenants produce shadow-hit deltas that
            // differ only by sampling noise, and every transfer evicts real
            // items from the donor — a wider gap and band keep balanced
            // tenants from trading budget back and forth on that noise,
            // while a genuinely starved tenant clears both within a few
            // intervals.
            min_gradient_gap: 32,
            smoothing: 0.25,
            hysteresis: 0.2,
            max_transfers_per_round: 2,
        }
    }
}

impl TenantBalanceConfig {
    /// A disabled configuration: static per-tenant reservations, stock
    /// Memcachier behaviour.
    pub fn disabled() -> Self {
        TenantBalanceConfig {
            enabled: false,
            ..TenantBalanceConfig::default()
        }
    }

    /// A configuration whose credit and floor are scaled to the per-tenant
    /// share, mirroring [`ShardBalanceConfig::scaled_for`] so reduced-scale
    /// experiments keep the production *ratios*.
    pub fn scaled_for(total_bytes: u64, tenants: usize) -> Self {
        let tenant_bytes = total_bytes / tenants.max(1) as u64;
        // Move ~1/32 of a tenant's share per decision; tenant-level demand
        // shifts are coarse, so the walk can take bigger steps than the
        // per-shard one without churning.
        let credit_bytes = (tenant_bytes / 32).clamp(16 << 10, 512 << 10);
        // Keep every tenant at least an eighth of its even share.
        let min_tenant_bytes = (tenant_bytes / 8).max(64 << 10);
        TenantBalanceConfig {
            credit_bytes,
            min_tenant_bytes,
            ..TenantBalanceConfig::default()
        }
    }

    /// The equivalent [`ShardBalanceConfig`] for the inner gradient engine
    /// ([`crate::ShardRebalancer`] does the actual climbing; tenants are its
    /// "shards").
    pub fn as_shard_balance(&self) -> ShardBalanceConfig {
        ShardBalanceConfig {
            enabled: self.enabled,
            interval_requests: self.interval_requests,
            credit_bytes: self.credit_bytes,
            min_shard_bytes: self.min_tenant_bytes,
            min_gradient_gap: self.min_gradient_gap,
            smoothing: self.smoothing,
            hysteresis: self.hysteresis,
            max_transfers_per_round: self.max_transfers_per_round,
        }
    }

    /// Validates the configuration, panicking on nonsensical values.
    pub fn validate(&self) {
        self.as_shard_balance().validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_core::ClassId;

    #[test]
    fn defaults_match_the_paper() {
        let c = CliffhangerConfig::default();
        assert_eq!(c.credit_bytes, 4 << 10);
        assert_eq!(c.hill_shadow_bytes, 1 << 20);
        assert_eq!(c.cliff_shadow_items, 128);
        assert_eq!(c.cliff_min_items, 1_000);
        assert!(c.enable_hill_climbing && c.enable_cliff_scaling);
        c.validate();
    }

    #[test]
    fn shadow_entries_follow_the_papers_example() {
        // §5.7: with a 64-byte slab class the 1 MB shadow queue stores 16384
        // keys; with a 1 KB class it stores 1024.
        let c = CliffhangerConfig::default();
        let class64 = c.slab.class_for_size(64).unwrap();
        assert_eq!(c.hill_shadow_entries(class64), 16_384);
        let class1k = c.slab.class_for_size(1_024).unwrap();
        assert_eq!(c.hill_shadow_entries(class1k), 1_024);
    }

    #[test]
    fn credit_items_at_least_one() {
        let c = CliffhangerConfig::default();
        // 4 KB credits on a 1 MB chunk class still move at least one item.
        let big = ClassId::new((c.slab.num_classes() - 1) as u32);
        assert_eq!(c.credit_items(big), 1);
        // On a 64-byte class a 4 KB credit is dozens of items.
        let small = c.slab.class_for_size(64).unwrap();
        assert!(c.credit_items(small) > 30);
    }

    #[test]
    fn ablation_helpers_toggle_flags() {
        let hc = CliffhangerConfig::default().hill_climbing_only();
        assert!(hc.enable_hill_climbing && !hc.enable_cliff_scaling);
        let cs = CliffhangerConfig::default().cliff_scaling_only();
        assert!(!cs.enable_hill_climbing && cs.enable_cliff_scaling);
        let off = CliffhangerConfig::default().disabled();
        assert!(!off.enable_hill_climbing && !off.enable_cliff_scaling);
    }

    #[test]
    #[should_panic(expected = "credit_bytes")]
    fn zero_credit_rejected() {
        let c = CliffhangerConfig {
            credit_bytes: 0,
            ..CliffhangerConfig::default()
        };
        c.validate();
    }

    #[test]
    fn shard_balance_defaults_and_scaling() {
        let c = ShardBalanceConfig::default();
        assert!(c.enabled);
        c.validate();
        assert!(!ShardBalanceConfig::disabled().enabled);
        // 64 MB over 8 shards: 8 MB/shard => 128 KB credits, 1 MB floor.
        let scaled = ShardBalanceConfig::scaled_for(64 << 20, 8);
        assert_eq!(scaled.credit_bytes, 128 << 10);
        assert_eq!(scaled.min_shard_bytes, 1 << 20);
        scaled.validate();
        // Tiny budgets stay above the clamps and below the shard share.
        let tiny = ShardBalanceConfig::scaled_for(4 << 20, 16);
        assert_eq!(tiny.credit_bytes, 16 << 10);
        assert!(tiny.min_shard_bytes <= (4 << 20) / 16);
    }

    #[test]
    #[should_panic(expected = "interval_requests")]
    fn zero_interval_rejected() {
        let c = ShardBalanceConfig {
            interval_requests: 0,
            ..ShardBalanceConfig::default()
        };
        c.validate();
    }

    #[test]
    fn tenant_balance_defaults_and_scaling() {
        let c = TenantBalanceConfig::default();
        assert!(c.enabled);
        c.validate();
        assert!(!TenantBalanceConfig::disabled().enabled);
        let inner = c.as_shard_balance();
        assert_eq!(inner.credit_bytes, c.credit_bytes);
        assert_eq!(inner.min_shard_bytes, c.min_tenant_bytes);
        assert_eq!(inner.interval_requests, c.interval_requests);
        // 64 MB over 2 tenants: 32 MB/tenant => 512 KB credits (cap), 4 MB floor.
        let scaled = TenantBalanceConfig::scaled_for(64 << 20, 2);
        assert_eq!(scaled.credit_bytes, 512 << 10);
        assert_eq!(scaled.min_tenant_bytes, 4 << 20);
        scaled.validate();
        let tiny = TenantBalanceConfig::scaled_for(2 << 20, 4);
        assert_eq!(tiny.credit_bytes, 16 << 10);
        assert!(tiny.min_tenant_bytes <= (2 << 20) / 4);
    }

    #[test]
    #[should_panic(expected = "credit_bytes")]
    fn tenant_zero_credit_rejected() {
        let c = TenantBalanceConfig {
            credit_bytes: 0,
            ..TenantBalanceConfig::default()
        };
        c.validate();
    }
}
