#!/usr/bin/env python3
"""Schema validator for the repo's versioned JSON reports.

Validates any mix of report files against the shapes documented in
docs/report-schemas.md, dispatching on each document's `schema` tag:

  cliffhanger-loadgen/v1          single loadgen run
  cliffhanger-loadgen-sweep/v1    shard sweep
  cliffhanger-stats/v1            scraped server telemetry document
  cliffhanger-tenant-sweep/v1     tenant arbiter on/off sweep
  cliffhanger-rebalance-sweep/v1  shard rebalancer on/off sweep
  cliffhanger-scenario/v1         one resilience scenario run
  cliffhanger-scenario-matrix/v1  a matrix of scenario runs
  cliffhanger-hotkey-sweep/v1     hot-key mitigation on/off A/B sweep
  (no tag, "pr" + "shard_sweep")  committed BENCH_PR<N>.json wrapper

Usage:
  python3 scripts/validate_reports.py FILE [FILE ...]
  python3 scripts/validate_reports.py            # all committed BENCH_PR*.json

Fails fast: the first file that does not match its schema stops the run
with a non-zero exit, printing the offending file and the first mismatch —
both as a plain `SCHEMA VALIDATION FAILED` line and as a GitHub `::error`
annotation so the message surfaces in the workflow UI, not just the log.
"""

import glob
import json
import sys


class Mismatch(Exception):
    """First schema mismatch found, with a path into the document."""

    def __init__(self, where, message):
        super().__init__(f"{where}: {message}")


def require(cond, where, message):
    if not cond:
        raise Mismatch(where, message)


def check_summary(s, where):
    """A telemetry::LatencySummary: quantiles present and ordered."""
    for field in ("count", "p50_us", "p99_us", "p999_us", "max_us"):
        require(field in s, where, f"latency summary lacks {field}")
    require(
        s["count"] == 0 or s["p50_us"] <= s["p999_us"] <= s["max_us"] * 1.01,
        where,
        f"latency quantiles out of order: {s}",
    )


def check_mrc(mrc, where):
    """The live-profiled miss-ratio-curve section (stats documents that
    carry one; absent/null means profiling was off or predates PR 9)."""
    require("sample_shift" in mrc, where, "mrc lacks sample_shift")
    require("sample_rate" in mrc, where, "mrc lacks sample_rate")
    require(
        0.0 < mrc["sample_rate"] <= 1.0,
        where,
        f"mrc sample_rate out of range: {mrc['sample_rate']}",
    )
    for t in mrc.get("tenants", []):
        tw = f"{where}/tenant={t.get('name')}"
        require(t.get("name"), tw, "mrc tenant without a name")
        require(t["sampled"] <= t["offered"], tw, "sampled exceeds offered GETs")
        for p in t.get("points", []):
            require(
                p["scale"] > 0 and p["items"] >= 1,
                tw,
                f"degenerate mrc point {p}",
            )
            require(
                0.0 <= p["hit_rate"] <= 1.0,
                tw,
                f"mrc hit_rate out of range: {p}",
            )


def check_history(history, where):
    """The windowed counter-rate time series (always present post-PR 9)."""
    require(history.get("interval_us", 0) > 0, where, "history lacks interval_us")
    for w in history.get("windows", []):
        ww = f"{where}/window={w.get('unix_us')}"
        require(w.get("seconds", 0) > 0, ww, "window spans no time")
        for t in w.get("tenants", []):
            require(t.get("name"), ww, "history tenant without a name")
            require(t["ops_per_sec"] >= 0, ww, "negative ops rate")
            hr = t.get("hit_rate")
            require(
                hr is None or 0.0 <= hr <= 1.0,
                ww,
                f"history hit_rate out of range: {hr}",
            )


def check_allocator(allocator, where):
    """The predicted-vs-realized allocator introspection join."""
    require(
        allocator.get("window_us", 0) > 0, where, "allocator lacks window_us"
    )
    for tr in allocator.get("transfers", []):
        tw = f"{where}/transfer={tr.get('seq')}"
        require(tr.get("kind") in ("shard", "tenant"), tw, f"bad kind {tr.get('kind')!r}")
        require(tr.get("tenant"), tw, "transfer without a tenant")
        require(tr.get("bytes", 0) > 0, tw, "transfer moved no bytes")
        if tr.get("kind") == "tenant":
            require(tr.get("donor"), tw, "tenant transfer without a donor")
        for side in ("hit_rate_before", "hit_rate_after"):
            hr = tr.get(side)
            require(
                hr is None or 0.0 <= hr <= 1.0,
                tw,
                f"{side} out of range: {hr}",
            )


def check_stats(stats, where):
    require(
        stats.get("schema") == "cliffhanger-stats/v1",
        where,
        f"bad stats schema tag {stats.get('schema')!r}",
    )
    for section in ("counters", "capacity", "service_latency", "tenants", "shards"):
        require(section in stats, where, f"missing section {section}")
    c = stats["counters"]
    require(
        c["get_hits"] + c["get_misses"] == c["cmd_get"],
        where,
        f"hit/miss accounting broken: {c}",
    )
    limit = stats["capacity"]["limit_maxbytes"]
    tenant_sum = sum(t["budget"] for t in stats["tenants"])
    require(
        tenant_sum == limit,
        where,
        f"tenant budgets sum to {tenant_sum}, limit_maxbytes is {limit}",
    )
    # Additive sections: committed pre-PR-9 baselines lack them, so only
    # assert their shape where the document carries them.
    if "server_start" in stats:
        require(
            stats["server_start"] <= stats["snapshot_unix_us"],
            where,
            "snapshot taken before the server started",
        )
    if stats.get("mrc") is not None:
        check_mrc(stats["mrc"], f"{where}/mrc")
    if "history" in stats:
        check_history(stats["history"], f"{where}/history")
    if "allocator" in stats:
        check_allocator(stats["allocator"], f"{where}/allocator")


def check_load(r, where):
    require(
        r.get("schema") == "cliffhanger-loadgen/v1",
        where,
        f"bad schema tag {r.get('schema')!r}",
    )
    require(r["requests"] > 0 and r["elapsed_secs"] > 0, where, "empty run")
    require(r["throughput_rps"] > 0, where, "zero throughput")
    require(0.0 <= r["hit_rate"] <= 1.0, where, f"hit_rate {r['hit_rate']}")
    require(r["get_hits"] <= r["gets"], where, "more hits than gets")
    # Schema evolution is additive: only assert accreted fields where the
    # recording carries them.
    if "fills" in r:
        require(r["fills"] <= r["sets"], where, "fills must ride inside sets")
    for summary in ("latency", "get_latency", "set_latency", "fill_latency"):
        if summary in r:
            check_summary(r[summary], f"{where}/{summary}")
    for t in r.get("tenants", []):
        if "fills" in t:
            require(t["fills"] <= t["sets"], where, f"tenant {t['tenant']} fills > sets")
    if r.get("server_stats") is not None:
        check_stats(r["server_stats"], f"{where}/server_stats")


def check_sweep(s, where):
    require(
        s.get("schema") == "cliffhanger-loadgen-sweep/v1",
        where,
        f"bad schema tag {s.get('schema')!r}",
    )
    require(s.get("points"), where, "sweep has no points")
    for p in s["points"]:
        require(
            p["shards"] > 0 and p["throughput_rps"] > 0,
            where,
            f"degenerate point at {p.get('shards')} shards",
        )
        # Some baselines were committed with the embedded per-point
        # reports trimmed; later ones keep them.
        if "report" in p:
            check_load(p["report"], f"{where}/shards={p['shards']}")


def check_tenant_sweep(ts, where):
    require(
        ts.get("schema") == "cliffhanger-tenant-sweep/v1",
        where,
        f"bad schema tag {ts.get('schema')!r}",
    )
    for point in ts["points"]:
        for side in ("off", "on"):
            check_load(point[side], f"{where}/{point['point']}/{side}")


def check_rebalance_sweep(rs, where):
    require(
        rs.get("schema") == "cliffhanger-rebalance-sweep/v1",
        where,
        f"bad schema tag {rs.get('schema')!r}",
    )
    for side in ("off", "on"):
        check_sweep(rs[side], f"{where}/{side}")


def check_scenario(r, where):
    require(
        r.get("schema") == "cliffhanger-scenario/v1",
        where,
        f"bad schema tag {r.get('schema')!r}",
    )
    for field in ("scenario", "scale", "phases", "invariants", "passed", "chaos"):
        require(field in r, where, f"missing field {field}")
    require(r["phases"], where, "scenario has no phases")
    for p in r["phases"]:
        pw = f"{where}/phase={p.get('name')}"
        require(p.get("name"), pw, "phase without a name")
        require(p["mode"] in ("open", "closed"), pw, f"bad mode {p.get('mode')!r}")
        require(p["requests"] > 0, pw, "phase completed no requests")
        require(p["throughput_rps"] > 0, pw, "zero throughput")
        check_summary(p["latency"], pw)
    require(r["invariants"], where, "scenario has no invariant verdicts")
    for v in r["invariants"]:
        vw = f"{where}/invariant={v.get('name')}"
        require(v.get("name"), vw, "verdict without a name")
        require("pass" in v and "detail" in v, vw, "verdict lacks pass/detail")
    require(
        r["passed"] == all(v["pass"] for v in r["invariants"]),
        where,
        "passed flag disagrees with the verdicts",
    )
    if r.get("server_stats") is not None:
        check_stats(r["server_stats"], f"{where}/server_stats")


def check_scenario_matrix(m, where):
    require(
        m.get("schema") == "cliffhanger-scenario-matrix/v1",
        where,
        f"bad schema tag {m.get('schema')!r}",
    )
    require(m.get("scenarios"), where, "matrix has no scenarios")
    for s in m["scenarios"]:
        check_scenario(s, f"{where}/{s.get('scenario')}")


def check_hotkey_sweep(hs, where):
    require(
        hs.get("schema") == "cliffhanger-hotkey-sweep/v1",
        where,
        f"bad schema tag {hs.get('schema')!r}",
    )
    require(hs.get("scenario") == "flash_crowd", where, "unexpected scenario")
    for side in ("off", "on"):
        arm = hs[side]
        aw = f"{where}/{side}"
        require(arm["mitigation"] == (side == "on"), aw, "mitigation flag disagrees")
        require(arm["errors"] == 0, aw, f"arm ran with errors: {arm['errors']}")
        require(
            arm["probe_stale_reads"] == 0 and arm["probe_reads"] > 0,
            aw,
            f"probe saw {arm['probe_stale_reads']} stale of {arm['probe_reads']} reads",
        )
        require(
            0.0 <= arm["remote_share"] <= 1.0,
            aw,
            f"remote_share out of range: {arm['remote_share']}",
        )
        check_scenario(arm["report"], f"{aw}/report")
    require(
        hs["on"]["replica_hits"] > 0 and hs["on"]["promotions"] > 0,
        f"{where}/on",
        "mitigation arm never promoted or served replicas",
    )
    require(
        hs["off"]["replica_hits"] == 0,
        f"{where}/off",
        "baseline arm served replica hits with the feature off",
    )
    c = hs["comparison"]
    require(
        c["spike_throughput_ratio"] > 0 and c["spike_p99_ratio"] > 0,
        f"{where}/comparison",
        f"degenerate comparison: {c}",
    )


def check_bench_wrapper(bench, where):
    require(bench.get("pr", 0) > 0 and bench.get("date"), where, "bad BENCH wrapper")
    check_sweep(bench["shard_sweep"], f"{where}/shard_sweep")
    if "loadgen_tenant_smoke" in bench:
        check_load(bench["loadgen_tenant_smoke"]["report"], f"{where}/tenant_smoke")
    if "tenant_sweep" in bench:
        check_tenant_sweep(bench["tenant_sweep"], f"{where}/tenant_sweep")
    if "rebalance_sweep" in bench:
        check_rebalance_sweep(bench["rebalance_sweep"], f"{where}/rebalance_sweep")
    if "scenario_matrix" in bench:
        check_scenario_matrix(bench["scenario_matrix"], f"{where}/scenario_matrix")
    if "hotkey_sweep" in bench:
        check_hotkey_sweep(bench["hotkey_sweep"], f"{where}/hotkey_sweep")


DISPATCH = {
    "cliffhanger-loadgen/v1": check_load,
    "cliffhanger-loadgen-sweep/v1": check_sweep,
    "cliffhanger-stats/v1": check_stats,
    "cliffhanger-tenant-sweep/v1": check_tenant_sweep,
    "cliffhanger-rebalance-sweep/v1": check_rebalance_sweep,
    "cliffhanger-scenario/v1": check_scenario,
    "cliffhanger-scenario-matrix/v1": check_scenario_matrix,
    "cliffhanger-hotkey-sweep/v1": check_hotkey_sweep,
}


def validate_file(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise Mismatch(path, f"not readable JSON: {e}")
    schema = doc.get("schema") if isinstance(doc, dict) else None
    if schema in DISPATCH:
        DISPATCH[schema](doc, path)
    elif isinstance(doc, dict) and "shard_sweep" in doc:
        check_bench_wrapper(doc, path)
    else:
        raise Mismatch(path, f"unrecognized document (schema tag {schema!r})")


def main(argv):
    paths = argv or sorted(glob.glob("BENCH_PR*.json"))
    if not paths:
        print("validate_reports: no files given and no BENCH_PR*.json found")
        return 1
    for path in paths:
        try:
            validate_file(path)
        except Mismatch as e:
            print(f"::error file={path}::schema validation failed: {e}")
            print(f"SCHEMA VALIDATION FAILED: {e}")
            return 1
        print(f"ok: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
