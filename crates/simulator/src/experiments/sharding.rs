//! Hit rate vs shard count at fixed total memory (beyond-paper experiment).
//!
//! The server backend splits its memory across N independent Cliffhanger
//! shards. Each shard hill-climbs *within* its slice, but a static split
//! between slices re-creates the rigid-partition problem the paper exists
//! to fix: key-hash routing spreads *keys* evenly, yet the byte demand and
//! request pressure behind those keys is anything but even (Zipf popularity
//! concentrates traffic on a few ranks, heavy-tailed value sizes concentrate
//! bytes on a few keys), so some shards starve while others idle and the
//! total hit rate decays as N grows.
//!
//! This experiment quantifies that decay and what the cross-shard
//! rebalancer ([`cliffhanger::shard_balance`]) wins back: the same trace is
//! replayed against 1, 2, 4, 8 and 16 shards at a *fixed total budget*,
//! once with static per-shard budgets and once with periodic shadow-gradient
//! rebalancing, and the table reports total hit rate per point. The CI
//! `hit-rate-smoke` job runs the down-scaled [`ShardingOptions::smoke`]
//! variant and asserts the rebalancer never loses to the static split.

use crate::report::Table;
use cache_core::key::mix64;
use cache_core::Key;
use cliffhanger::{
    Cliffhanger, CliffhangerConfig, ShardBalanceConfig, ShardRebalancer, ShardSample,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use workloads::{KeyPopularity, SizeDistribution};

/// Knobs of the shard-count experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ShardingOptions {
    /// Fixed total memory, split across the shards of every point.
    pub total_bytes: u64,
    /// Shard counts to measure.
    pub shard_counts: Vec<usize>,
    /// Measured requests per point (after warm-up).
    pub requests: u64,
    /// Untimed warm-up requests per point.
    pub warmup_requests: u64,
    /// Key-universe size.
    pub num_keys: u64,
    /// Zipf exponent of the key popularity.
    pub zipf_exponent: f64,
    /// The hottest `hot_keys` ranks carry large values (think rendered
    /// fragments next to small session objects). Key-hash routing spreads
    /// the *count* of keys evenly, but these few heavy keys land unevenly,
    /// so the bytes they pin differ per shard — each shard's small-item
    /// tail then runs at a different point of the same concave hit-rate
    /// curve, which is exactly the imbalance gradient rebalancing can see
    /// and repair.
    pub hot_keys: u64,
    /// Smallest hot-value size in bytes.
    pub hot_min_bytes: u64,
    /// Largest hot-value size in bytes.
    pub hot_max_bytes: u64,
    /// Generalized-Pareto scale of the small tail-value sizes, in bytes.
    pub tail_scale: f64,
    /// Cap on the tail-value sizes, in bytes.
    pub tail_cap: u64,
    /// Requests between rebalancing rounds.
    pub interval_requests: u64,
    /// Base RNG seed (the trace is identical across points and modes).
    pub seed: u64,
}

impl ShardingOptions {
    /// The scale the committed experiment artifacts use: large enough for
    /// the decay and the recovery to be well clear of noise, small enough to
    /// run in tens of seconds.
    pub fn standard() -> Self {
        ShardingOptions {
            total_bytes: 32 << 20,
            shard_counts: vec![1, 2, 4, 8, 16],
            requests: 1_600_000,
            warmup_requests: 800_000,
            num_keys: 120_000,
            zipf_exponent: 0.9,
            hot_keys: 192,
            hot_min_bytes: 16 << 10,
            hot_max_bytes: 64 << 10,
            tail_scale: 214.476,
            tail_cap: 2 << 10,
            interval_requests: 4_096,
            seed: 0x5AAD_CAFE,
        }
    }

    /// A down-scaled variant for CI smoke runs and unit tests.
    pub fn smoke() -> Self {
        ShardingOptions {
            total_bytes: 8 << 20,
            shard_counts: vec![1, 4, 8],
            requests: 400_000,
            warmup_requests: 200_000,
            num_keys: 30_000,
            hot_keys: 48,
            ..ShardingOptions::standard()
        }
    }
}

/// One measured shard count.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ShardingPoint {
    /// Number of shards.
    pub shards: usize,
    /// Total hit rate with static per-shard budgets (rebalancer off).
    pub static_hit_rate: f64,
    /// Total hit rate with the cross-shard rebalancer on.
    pub rebalanced_hit_rate: f64,
    /// Budget transfers the rebalancer applied.
    pub transfers: u64,
    /// Bytes the rebalancer moved.
    pub bytes_moved: u64,
}

/// The full experiment result (schema `cliffhanger-shard-experiment/v1`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ShardingResult {
    /// Schema tag.
    pub schema: String,
    /// The options the experiment ran with.
    pub options: ShardingOptions,
    /// One point per shard count.
    pub points: Vec<ShardingPoint>,
}

/// Schema tag for [`ShardingResult`].
pub const SHARDING_SCHEMA: &str = "cliffhanger-shard-experiment/v1";

/// Replays the trace against `shards` Cliffhanger instances sharing
/// `opts.total_bytes`, with or without cross-shard rebalancing. Returns
/// `(hit_rate, transfers, bytes_moved)` over the measured window.
fn run_point(opts: &ShardingOptions, shards: usize, rebalance: bool) -> (f64, u64, u64) {
    let shard_bytes = (opts.total_bytes / shards as u64).max(1);
    let mut caches: Vec<Cliffhanger<()>> = (0..shards)
        .map(|i| {
            let mut cfg = CliffhangerConfig::scaled_for(shard_bytes);
            cfg.seed = opts.seed.wrapping_add(i as u64);
            // The paper's 2% shadow:budget ratio leaves large-chunk classes
            // with one-entry shadow queues at sub-megabyte shard slices;
            // widen it so every class still produces a usable gradient
            // (shadow queues store keys only, so this stays cheap).
            cfg.hill_shadow_bytes = (shard_bytes / 8).clamp(64 << 10, 1 << 20);

            Cliffhanger::new(cfg)
        })
        .collect();
    let balance = ShardBalanceConfig {
        interval_requests: opts.interval_requests,
        ..ShardBalanceConfig::scaled_for(opts.total_bytes, shards)
    };
    let mut balancer = ShardRebalancer::new(shards, balance);
    let mut transfers = 0u64;
    let mut bytes_moved = 0u64;

    let sampler = KeyPopularity::Zipf {
        num_keys: opts.num_keys,
        exponent: opts.zipf_exponent,
    }
    .sampler();
    // The hottest ranks carry large values; everything else is a small
    // ETC-like object. Both assignments are deterministic per key.
    let hot_sizes = SizeDistribution::Uniform {
        min: opts.hot_min_bytes,
        max: opts.hot_max_bytes,
    };
    let tail_sizes = SizeDistribution::GeneralizedPareto {
        location: 0.0,
        scale: opts.tail_scale,
        shape: 0.348_468,
        cap: opts.tail_cap,
    };
    let size_of = |rank: u64| -> u64 {
        if rank < opts.hot_keys {
            hot_sizes.size_for_key(rank, opts.seed)
        } else {
            tail_sizes.size_for_key(rank, opts.seed)
        }
        .max(1)
    };
    let mut rng = StdRng::seed_from_u64(opts.seed);

    let total_requests = opts.warmup_requests + opts.requests;
    let mut measured_gets = 0u64;
    let mut measured_hits = 0u64;
    for r in 0..total_requests {
        let rank = sampler.sample(&mut rng);
        // Same routing as the server backend: a second mix of the key id,
        // decorrelated from the bits the engines hash internally.
        let shard = (mix64(rank) % shards as u64) as usize;
        let size = size_of(rank);
        let key = Key::new(rank);
        let hit = caches[shard]
            .get(key, size)
            .map(|(_, event)| event.hit)
            .unwrap_or(false);
        if !hit {
            caches[shard].set(key, size, ());
        }
        if r >= opts.warmup_requests {
            measured_gets += 1;
            measured_hits += hit as u64;
        }
        if rebalance && shards > 1 && (r + 1) % opts.interval_requests == 0 {
            let samples: Vec<ShardSample> = caches
                .iter()
                .map(|c| ShardSample {
                    shadow_hits: c.stats().shadow_hits,
                    budget_bytes: c.total_bytes(),
                })
                .collect();
            for t in balancer.rebalance(&samples) {
                if caches[t.from].shrink_total(t.bytes) {
                    caches[t.to].grow_total(t.bytes);
                    transfers += 1;
                    bytes_moved += t.bytes;
                    if std::env::var_os("SHARD_EXP_DEBUG_TRANSFERS").is_some() {
                        eprintln!(
                            "      [xfer r={r}] {} -> {} {} KB",
                            t.from,
                            t.to,
                            t.bytes >> 10
                        );
                    }
                }
            }
        }
    }
    debug_assert_eq!(
        caches.iter().map(|c| c.total_bytes()).sum::<u64>(),
        opts.total_bytes / shards as u64 * shards as u64,
        "rebalancing must conserve the fixed total budget"
    );
    if std::env::var_os("SHARD_EXP_DEBUG").is_some() {
        for (i, c) in caches.iter().enumerate() {
            let stats = c.stats();
            eprintln!(
                "  [debug {} shards rebalance={}] shard {i}: budget {:.2} MB used {:.2} MB \
                 gets {} hit {:.3} shadow_hits {} evictions {}",
                shards,
                rebalance,
                c.total_bytes() as f64 / (1 << 20) as f64,
                c.used_bytes() as f64 / (1 << 20) as f64,
                stats.gets,
                stats.hit_ratio().value(),
                stats.shadow_hits,
                stats.evictions,
            );
            if std::env::var_os("SHARD_EXP_DEBUG_CLASSES").is_some() {
                for snap in c.class_snapshots() {
                    if snap.stats.gets > 0 || snap.target_bytes > 2048 {
                        eprintln!(
                            "      class {} chunk {} target {:.0}KB used {:.0}KB items {} gets {} hit {:.3} shadow {}",
                            snap.class, snap.chunk_size,
                            snap.target_bytes as f64 / 1024.0,
                            snap.used_bytes as f64 / 1024.0,
                            snap.items, snap.stats.gets,
                            snap.stats.hit_ratio().value(),
                            snap.stats.shadow_hits,
                        );
                    }
                }
            }
        }
    }
    (
        measured_hits as f64 / measured_gets.max(1) as f64,
        transfers,
        bytes_moved,
    )
}

/// Runs the full experiment: every shard count, rebalancer off and on.
pub fn shard_count_experiment(opts: &ShardingOptions) -> ShardingResult {
    let points = opts
        .shard_counts
        .iter()
        .map(|&shards| {
            let (static_hit_rate, _, _) = run_point(opts, shards, false);
            let (rebalanced_hit_rate, transfers, bytes_moved) = run_point(opts, shards, true);
            ShardingPoint {
                shards,
                static_hit_rate,
                rebalanced_hit_rate,
                transfers,
                bytes_moved,
            }
        })
        .collect();
    ShardingResult {
        schema: SHARDING_SCHEMA.to_string(),
        options: opts.clone(),
        points,
    }
}

impl ShardingResult {
    /// The hit rate of the 1-shard point (the unsharded controller), if the
    /// experiment measured one. Rebalancing is a no-op at one shard, so
    /// either column works; the static one is used.
    pub fn unsharded_hit_rate(&self) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.shards == 1)
            .map(|p| p.static_hit_rate)
    }

    /// Renders the result as a report table.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "Hit rate vs shard count (fixed total memory)",
            &[
                "Shards",
                "Static split",
                "Rebalanced",
                "Recovered",
                "Transfers",
                "MB moved",
            ],
        );
        let baseline = self.unsharded_hit_rate();
        for p in &self.points {
            let recovered = match baseline {
                // How much of the sharding-induced loss the rebalancer won
                // back, as points of hit rate.
                Some(_) => format!(
                    "{:+.2}pp",
                    (p.rebalanced_hit_rate - p.static_hit_rate) * 100.0
                ),
                None => "-".to_string(),
            };
            table.push_row(vec![
                p.shards.to_string(),
                Table::pct(p.static_hit_rate),
                Table::pct(p.rebalanced_hit_rate),
                recovered,
                p.transfers.to_string(),
                format!("{:.1}", p.bytes_moved as f64 / (1 << 20) as f64),
            ]);
        }
        table
    }

    /// Serialises to compact JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("result serialisation cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rebalancer_recovers_hit_rate_lost_to_sharding() {
        // A deliberately tiny run — the CI smoke job runs the real assertion
        // at ShardingOptions::smoke() scale.
        let opts = ShardingOptions {
            total_bytes: 4 << 20,
            shard_counts: vec![1, 4],
            requests: 80_000,
            warmup_requests: 40_000,
            num_keys: 8_000,
            ..ShardingOptions::standard()
        };
        let result = shard_count_experiment(&opts);
        assert_eq!(result.points.len(), 2);
        let one = &result.points[0];
        assert_eq!(one.shards, 1);
        assert!(one.static_hit_rate > 0.2, "sane baseline hit rate");
        assert_eq!(one.transfers, 0, "single shard cannot rebalance");
        let four = &result.points[1];
        assert!(four.transfers > 0, "imbalance must trigger transfers");
        assert!(
            four.rebalanced_hit_rate + 1e-9 >= four.static_hit_rate,
            "rebalancing must not lose to the static split: {:.4} vs {:.4}",
            four.rebalanced_hit_rate,
            four.static_hit_rate
        );
        assert_eq!(result.unsharded_hit_rate(), Some(one.static_hit_rate));
    }

    #[test]
    fn table_and_json_round_trip() {
        let result = ShardingResult {
            schema: SHARDING_SCHEMA.to_string(),
            options: ShardingOptions::smoke(),
            points: vec![ShardingPoint {
                shards: 4,
                static_hit_rate: 0.71,
                rebalanced_hit_rate: 0.74,
                transfers: 12,
                bytes_moved: 3 << 20,
            }],
        };
        let table = result.table();
        assert_eq!(table.rows.len(), 1);
        assert!(table.to_string().contains("74.0%"));
        let back: ShardingResult = serde_json::from_str(&result.to_json()).unwrap();
        assert_eq!(back.points[0].transfers, 12);
        assert_eq!(back.schema, SHARDING_SCHEMA);
    }
}
