//! The load-generation engine: N worker threads, one TCP connection each,
//! driving the server in closed-loop (memtier/mutilate style: a fixed
//! concurrency, each connection keeps `pipeline` requests in flight) or
//! open-loop mode (a target arrival rate with latencies measured from the
//! *scheduled* send time, so queueing delay is charged to the server — the
//! coordinated-omission correction wrk2 popularised).
//!
//! Workers share only two pieces of state: an atomic request budget they
//! claim batches from, and a start barrier. All telemetry is recorded into
//! per-worker histograms and merged after the workers join.

use crate::report::{LoadReport, TenantSection, WorkloadEcho, LOAD_SCHEMA};
use crate::telemetry::Histogram;
use crate::workload::{GenOp, RequestGen, TenantLoad, WorkloadSpec};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};
use workloads::{KeyPopularity, SizeDistribution};

/// Closed- vs open-loop driving.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LoadMode {
    /// Fixed concurrency: every connection keeps `pipeline` requests in
    /// flight and sends the next batch as soon as the previous one is
    /// answered. Measures capacity.
    Closed,
    /// Fixed arrival rate (requests/sec across all connections), one
    /// request outstanding per connection. Measures latency at a load
    /// point; latencies include any backlog the server builds up.
    Open {
        /// Total target arrival rate across every connection.
        target_rps: f64,
    },
}

/// Everything a run needs.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Worker threads, one TCP connection each.
    pub connections: usize,
    /// Requests in the measured window (split across workers on demand).
    pub requests: u64,
    /// Untimed SETs of the hottest keys issued before the window, so GETs
    /// in the window see a populated cache.
    pub warmup_keys: u64,
    /// Requests per pipelined batch in closed-loop mode.
    pub pipeline: usize,
    /// Closed- or open-loop.
    pub mode: LoadMode,
    /// Traffic shape (of the single tenant when `tenants` is empty).
    pub workload: WorkloadSpec,
    /// Multi-tenant mode: drive several application namespaces at once, each
    /// with its own workload and a connection/budget share proportional to
    /// its weight. Empty (the default) is the single-tenant run over
    /// `workload`; non-empty ignores `workload` and requires at least one
    /// connection per tenant.
    pub tenants: Vec<TenantLoad>,
    /// Cache-aside demand fill: every GET miss is followed by a SET of the
    /// missed key, the way a real application repopulates its cache. In
    /// closed loop the fill rides in the next pipelined batch; in open loop
    /// it occupies the *next scheduled arrival slot* and its latency is
    /// measured from that scheduled time — a fill is part of the
    /// application's offered load, so sending it out-of-band would hide the
    /// queueing it causes (coordinated omission by another name). Fill SETs
    /// ride on top of the request budget — `requests` counts the generated
    /// stream, the report counts everything completed, and fills also get
    /// their own `fills` / `fill_latency` report section. Off by default,
    /// preserving the pre-PR4 pure GET/SET stream.
    pub fill_on_miss: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:11211".to_string(),
            connections: 4,
            requests: 100_000,
            warmup_keys: 10_000,
            pipeline: 16,
            mode: LoadMode::Closed,
            workload: WorkloadSpec::default(),
            tenants: Vec::new(),
            fill_on_miss: false,
        }
    }
}

/// Payloads are slices of one shared pattern buffer; sizes beyond it clamp.
pub(crate) const PAYLOAD_POOL_BYTES: usize = 1 << 20;

/// The open-loop arrival schedule: a deadline chain at a fixed spacing,
/// the anchor of the coordinated-omission correction (latencies are
/// measured from the *scheduled* arrival, so server backlog shows up in
/// the tail instead of silently stretching the send times).
///
/// Rate changes mid-run (a diurnal scenario crossing a phase boundary)
/// must continue the chain: the first arrival at the new rate is the old
/// schedule's boundary plus the *new* interval. The two tempting
/// alternatives are both wrong — recomputing the schedule from the run
/// start at the new rate teleports the chain, and re-anchoring to the
/// wall clock forgives whatever backlog the server had built, which is
/// coordinated omission reintroduced at every phase boundary.
#[derive(Clone, Copy, Debug)]
pub struct Pacer {
    next: Instant,
    interval: Duration,
}

impl Pacer {
    /// A schedule starting at `start`, spacing arrivals at `per_conn_rps`
    /// per second (clamped below at one). The first arrival is one interval
    /// after `start`.
    pub fn new(start: Instant, per_conn_rps: f64) -> Pacer {
        let interval = Duration::from_secs_f64(1.0 / per_conn_rps.max(1.0));
        Pacer {
            next: start + interval,
            interval,
        }
    }

    /// Changes the arrival rate without breaking the chain: the schedule
    /// continues from the last claimed slot (the phase boundary), spaced
    /// at the new interval. `next` was pre-committed one *old* interval
    /// past that boundary, so it is rebased rather than kept — keeping it
    /// would leak one old-rate gap into the new phase.
    pub fn set_rate(&mut self, per_conn_rps: f64) {
        let boundary = self.next - self.interval;
        self.interval = Duration::from_secs_f64(1.0 / per_conn_rps.max(1.0));
        self.next = boundary + self.interval;
    }

    /// Claims the next scheduled arrival slot and advances the chain.
    pub fn next_arrival(&mut self) -> Instant {
        let slot = self.next;
        self.next += self.interval;
        slot
    }

    /// The slot `next_arrival` would return, without claiming it.
    pub fn peek(&self) -> Instant {
        self.next
    }

    /// The current spacing between arrivals.
    pub fn interval(&self) -> Duration {
        self.interval
    }
}

/// Per-worker telemetry, merged after the run.
#[derive(Default)]
pub(crate) struct WorkerStats {
    pub(crate) all: Histogram,
    pub(crate) get: Histogram,
    pub(crate) set: Histogram,
    pub(crate) fill: Histogram,
    pub(crate) gets: u64,
    pub(crate) hits: u64,
    pub(crate) sets: u64,
    pub(crate) fills: u64,
    pub(crate) errors: u64,
}

impl WorkerStats {
    pub(crate) fn merge(&mut self, other: &WorkerStats) {
        self.all.merge(&other.all);
        self.get.merge(&other.get);
        self.set.merge(&other.set);
        self.fill.merge(&other.fill);
        self.gets += other.gets;
        self.hits += other.hits;
        self.sets += other.sets;
        self.fills += other.fills;
        self.errors += other.errors;
    }
}

/// One pipelined connection: buffered reads, raw writes.
pub(crate) struct Conn {
    reader: BufReader<TcpStream>,
    pub(crate) writer: TcpStream,
    line: String,
}

impl Conn {
    pub(crate) fn connect(addr: &str) -> std::io::Result<Conn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            reader: BufReader::with_capacity(64 * 1024, stream.try_clone()?),
            writer: stream,
            line: String::new(),
        })
    }

    pub(crate) fn read_line(&mut self) -> std::io::Result<&str> {
        self.line.clear();
        if self.reader.read_line(&mut self.line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-run",
            ));
        }
        Ok(self.line.trim_end_matches(['\r', '\n']))
    }

    /// Reads one GET response (`VALUE …\r\n<data>\r\nEND\r\n` or `END\r\n`).
    /// Returns whether it was a hit.
    pub(crate) fn read_get_response(&mut self) -> std::io::Result<Option<bool>> {
        let line = self.read_line()?;
        if line == "END" {
            return Ok(Some(false));
        }
        let Some(rest) = line.strip_prefix("VALUE ") else {
            return Ok(None); // protocol surprise; caller counts an error
        };
        // Strict `<key> <flags> <bytes>` header: guessing at the payload
        // length would desynchronize every later response in the pipeline,
        // so an unparseable header is a framing error, not a miscount.
        let len: usize = match rest.split_ascii_whitespace().nth(2).map(str::parse) {
            Some(Ok(len)) => len,
            _ => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("unparseable VALUE header: VALUE {rest}"),
                ));
            }
        };
        // Payload + CRLF, then the END line.
        let mut sink = vec![0u8; len + 2];
        self.reader.read_exact(&mut sink)?;
        let end = self.read_line()?;
        Ok(if end == "END" { Some(true) } else { None })
    }

    /// Reads one SET response. Returns whether the server stored it.
    pub(crate) fn read_set_response(&mut self) -> std::io::Result<Option<bool>> {
        match self.read_line()? {
            "STORED" => Ok(Some(true)),
            "NOT_STORED" => Ok(Some(false)),
            _ => Ok(None),
        }
    }
}

/// Appends the wire encoding of `op` to `buf`.
pub(crate) fn encode_op(op: &GenOp, buf: &mut Vec<u8>, payload_pool: &[u8]) {
    match op {
        GenOp::Get { key } => {
            buf.extend_from_slice(b"get ");
            buf.extend_from_slice(key.as_bytes());
            buf.extend_from_slice(b"\r\n");
        }
        GenOp::Set { key, size } => {
            let size = (*size).min(payload_pool.len());
            // write! straight into the batch buffer — no temporary String
            // per request in the measurement hot path.
            let _ = write!(buf, "set {key} 0 0 {size}\r\n");
            buf.extend_from_slice(&payload_pool[..size]);
            buf.extend_from_slice(b"\r\n");
        }
    }
}

/// Claims up to `want` requests from the shared budget; 0 means done.
pub(crate) fn claim(budget: &AtomicU64, want: u64) -> u64 {
    let mut current = budget.load(Ordering::Relaxed);
    loop {
        if current == 0 {
            return 0;
        }
        let take = want.min(current);
        match budget.compare_exchange_weak(
            current,
            current - take,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return take,
            Err(actual) => current = actual,
        }
    }
}

/// What a completed request was, for telemetry purposes.
#[derive(Clone, Copy, PartialEq)]
pub(crate) enum OpKind {
    Get,
    Set,
    /// A demand-fill SET: counted as a SET *and* in its own section, so
    /// fill latencies are separable from the generated stream's.
    Fill,
}

/// Records one completed request into the worker's histograms.
pub(crate) fn record(
    stats: &mut WorkerStats,
    kind: OpKind,
    latency_ns: u64,
    outcome: Option<bool>,
) {
    stats.all.record(latency_ns);
    match kind {
        OpKind::Get => {
            stats.get.record(latency_ns);
            stats.gets += 1;
            match outcome {
                Some(true) => stats.hits += 1,
                Some(false) => {}
                None => stats.errors += 1,
            }
        }
        OpKind::Set | OpKind::Fill => {
            stats.set.record(latency_ns);
            stats.sets += 1;
            if outcome != Some(true) {
                stats.errors += 1;
            }
            if kind == OpKind::Fill {
                stats.fill.record(latency_ns);
                stats.fills += 1;
            }
        }
    }
}

/// Untimed warm-up: worker `w` SETs ranks `w, w+W, w+2W, …` below
/// `warmup_keys`, so the hottest portion of the universe is resident before
/// the measured window opens.
fn warmup(
    conn: &mut Conn,
    gen: &RequestGen,
    worker: usize,
    workers: usize,
    warmup_keys: u64,
    payload_pool: &[u8],
) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(64 * 1024);
    let mut pending = 0usize;
    let mut rank = worker as u64;
    while rank < warmup_keys {
        encode_op(&gen.set_for_rank(rank), &mut buf, payload_pool);
        pending += 1;
        if pending == 64 {
            conn.writer.write_all(&buf)?;
            buf.clear();
            for _ in 0..pending {
                conn.read_set_response()?;
            }
            pending = 0;
        }
        rank += workers as u64;
    }
    if pending > 0 {
        conn.writer.write_all(&buf)?;
        for _ in 0..pending {
            conn.read_set_response()?;
        }
    }
    Ok(())
}

fn run_closed_worker(
    conn: &mut Conn,
    gen: &mut RequestGen,
    budget: &AtomicU64,
    pipeline: u64,
    payload_pool: &[u8],
    fill_on_miss: bool,
) -> std::io::Result<WorkerStats> {
    let mut stats = WorkerStats::default();
    let mut buf = Vec::with_capacity(64 * 1024);
    let mut ops: Vec<GenOp> = Vec::with_capacity(pipeline as usize);
    // Demand fills discovered in the previous batch, sent with the next.
    let mut fills: Vec<GenOp> = Vec::new();
    loop {
        let batch = claim(budget, pipeline);
        if batch == 0 && fills.is_empty() {
            return Ok(stats);
        }
        buf.clear();
        ops.clear();
        // Fills go first, so the first `batch_fills` responses are theirs.
        let batch_fills = fills.len();
        for op in fills.drain(..) {
            encode_op(&op, &mut buf, payload_pool);
            ops.push(op);
        }
        for _ in 0..batch {
            let op = gen.next_op();
            encode_op(&op, &mut buf, payload_pool);
            ops.push(op);
        }
        let sent = Instant::now();
        conn.writer.write_all(&buf)?;
        for (i, op) in ops.iter().enumerate() {
            let (kind, outcome) = match op {
                GenOp::Get { .. } => (OpKind::Get, conn.read_get_response()?),
                GenOp::Set { .. } if i < batch_fills => (OpKind::Fill, conn.read_set_response()?),
                GenOp::Set { .. } => (OpKind::Set, conn.read_set_response()?),
            };
            if fill_on_miss && kind == OpKind::Get && outcome == Some(false) {
                if let Some(rank) = RequestGen::rank_for_key(op.key()) {
                    fills.push(gen.set_for_rank(rank));
                }
            }
            // Pipelined latency: from batch send to this response parsed,
            // i.e. queueing behind earlier responses in the batch counts.
            record(&mut stats, kind, sent.elapsed().as_nanos() as u64, outcome);
        }
    }
}

fn run_open_worker(
    conn: &mut Conn,
    gen: &mut RequestGen,
    budget: &AtomicU64,
    per_conn_rps: f64,
    payload_pool: &[u8],
    fill_on_miss: bool,
) -> std::io::Result<WorkerStats> {
    let mut stats = WorkerStats::default();
    let mut buf = Vec::with_capacity(16 * 1024);
    let mut pacer = Pacer::new(Instant::now(), per_conn_rps);
    // Demand fills waiting for their arrival slot. A fill is part of the
    // application's offered load, so it occupies the *next scheduled slot*
    // — sending it out-of-band (as pre-PR5 code did) both exceeded the
    // configured arrival rate and hid the queueing the fill causes from
    // the schedule-anchored latencies (coordinated omission, reinvented).
    let mut fills: std::collections::VecDeque<GenOp> = std::collections::VecDeque::new();
    loop {
        let (op, kind) = match fills.pop_front() {
            Some(op) => (op, OpKind::Fill),
            None => {
                if claim(budget, 1) == 0 {
                    return Ok(stats);
                }
                let op = gen.next_op();
                let kind = match op {
                    GenOp::Get { .. } => OpKind::Get,
                    GenOp::Set { .. } => OpKind::Set,
                };
                (op, kind)
            }
        };
        let outcome = open_loop_step(
            conn,
            &op,
            kind,
            &mut pacer,
            payload_pool,
            &mut buf,
            &mut stats,
        )?;
        if fill_on_miss && kind == OpKind::Get && outcome == Some(false) {
            if let Some(rank) = RequestGen::rank_for_key(op.key()) {
                fills.push_back(gen.set_for_rank(rank));
            }
        }
    }
}

/// Sends one operation in its scheduled arrival slot and records its
/// schedule-anchored latency: sleep until the pacer's next slot, send, read
/// the response, and measure from the *scheduled* time — if the server
/// falls behind the arrival rate, the backlog shows up in the tail (no
/// coordinated omission). Returns the op's outcome for fill decisions.
#[allow(clippy::too_many_arguments)]
pub(crate) fn open_loop_step(
    conn: &mut Conn,
    op: &GenOp,
    kind: OpKind,
    pacer: &mut Pacer,
    payload_pool: &[u8],
    buf: &mut Vec<u8>,
    stats: &mut WorkerStats,
) -> std::io::Result<Option<bool>> {
    let scheduled = pacer.next_arrival();
    let now = Instant::now();
    if scheduled > now {
        std::thread::sleep(scheduled - now);
    }
    buf.clear();
    encode_op(op, buf, payload_pool);
    conn.writer.write_all(buf)?;
    let outcome = match op {
        GenOp::Get { .. } => conn.read_get_response()?,
        GenOp::Set { .. } => conn.read_set_response()?,
    };
    record(stats, kind, scheduled.elapsed().as_nanos() as u64, outcome);
    Ok(outcome)
}

/// Selects the connection's application namespace (`app <name>`). The
/// `default` tenant sends nothing — it exercises the exact path of a
/// pre-extension client.
pub(crate) fn select_app(conn: &mut Conn, name: &str) -> std::io::Result<()> {
    if name == "default" {
        return Ok(());
    }
    conn.writer
        .write_all(format!("app {name}\r\n").as_bytes())?;
    let line = conn.read_line()?;
    if line != "OK" {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("server refused `app {name}`: {line}"),
        ));
    }
    Ok(())
}

/// Splits `connections` across the tenants proportionally to their weights,
/// every tenant getting at least one (largest-remainder rounding).
fn allocate_connections(connections: usize, tenants: &[TenantLoad]) -> Vec<usize> {
    let total_weight: u64 = tenants.iter().map(|t| t.weight.max(1)).sum();
    // Start everyone at 1 connection, distribute the rest by weight.
    let mut counts = vec![1usize; tenants.len()];
    let mut spare = connections - tenants.len();
    // Fractional entitlements to the spare pool, floor first.
    let entitlements: Vec<f64> = tenants
        .iter()
        .map(|t| spare as f64 * t.weight.max(1) as f64 / total_weight as f64)
        .collect();
    for (count, entitlement) in counts.iter_mut().zip(&entitlements) {
        let floor = entitlement.floor() as usize;
        *count += floor;
        spare -= floor;
    }
    // Hand the remainder out by descending fractional part (ties: order).
    let mut order: Vec<usize> = (0..tenants.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = entitlements[a].fract();
        let fb = entitlements[b].fract();
        fb.partial_cmp(&fa).unwrap_or(std::cmp::Ordering::Equal)
    });
    for &t in order.iter().take(spare) {
        counts[t] += 1;
    }
    counts
}

/// Splits the request budget across tenants by weight (remainder on the
/// first tenant), so traffic shares follow weights even in closed loop.
fn allocate_requests(requests: u64, tenants: &[TenantLoad]) -> Vec<u64> {
    let total_weight: u64 = tenants.iter().map(|t| t.weight.max(1)).sum();
    let mut shares: Vec<u64> = tenants
        .iter()
        .map(|t| (requests as u128 * t.weight.max(1) as u128 / total_weight as u128) as u64)
        .collect();
    let assigned: u64 = shares.iter().sum();
    shares[0] += requests - assigned;
    shares
}

fn describe_keys(keys: &KeyPopularity) -> (String, u64) {
    match keys {
        KeyPopularity::Uniform { num_keys } => ("uniform".to_string(), *num_keys),
        KeyPopularity::Zipf { num_keys, exponent } => (format!("zipf:{exponent}"), *num_keys),
        KeyPopularity::HotSet {
            num_keys,
            hot_keys,
            hot_fraction,
        } => (format!("hotset:{hot_keys}:{hot_fraction}"), *num_keys),
    }
}

fn describe_sizes(sizes: &SizeDistribution) -> String {
    match sizes {
        SizeDistribution::Fixed(n) => format!("fixed:{n}"),
        SizeDistribution::Uniform { min, max } => format!("uniform:{min}-{max}"),
        SizeDistribution::LogNormal { mu, sigma, cap } => {
            format!("lognormal:mu={mu},sigma={sigma},cap={cap}")
        }
        SizeDistribution::GeneralizedPareto {
            scale, shape, cap, ..
        } => {
            format!("pareto:scale={scale},shape={shape},cap={cap}")
        }
        SizeDistribution::Mixture(parts) => format!("mixture:{}", parts.len()),
    }
}

fn workload_echo(spec: &WorkloadSpec) -> WorkloadEcho {
    let (keys_desc, num_keys) = describe_keys(&spec.keys);
    WorkloadEcho {
        keys: keys_desc,
        num_keys,
        get_fraction: spec.get_fraction,
        sizes: describe_sizes(&spec.sizes),
        seed: spec.seed,
    }
}

/// Runs one load-generation pass and returns its report.
///
/// Fails fast on connection or protocol-framing errors (including a refused
/// `app` selector); per-request rejections (`NOT_STORED`, unexpected status
/// lines) are counted in `errors` instead. With `config.tenants` set, each
/// tenant gets a weight-proportional share of the connections and request
/// budget, every connection pins itself to its tenant's namespace before
/// warm-up, and the report carries one [`TenantSection`] per tenant.
pub fn run_load(config: &LoadgenConfig) -> std::io::Result<LoadReport> {
    if config.connections == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "loadgen needs at least one connection",
        ));
    }
    if config.pipeline == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "pipeline depth must be at least 1",
        ));
    }
    // A single-tenant run is a multi-tenant run with one implicit tenant —
    // the default namespace, no `app` command, the whole budget.
    let tenants: Vec<TenantLoad> = if config.tenants.is_empty() {
        vec![TenantLoad::new("default", 1, config.workload.clone())]
    } else {
        config.tenants.clone()
    };
    if config.connections < tenants.len() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!(
                "{} tenants need at least {} connections (got {})",
                tenants.len(),
                tenants.len(),
                config.connections
            ),
        ));
    }
    let payload_pool: Arc<Vec<u8>> = Arc::new(
        (0..PAYLOAD_POOL_BYTES)
            .map(|i| b'a' + (i % 26) as u8)
            .collect(),
    );
    let tenant_connections = allocate_connections(config.connections, &tenants);
    let tenant_requests = allocate_requests(config.requests, &tenants);
    let budgets: Vec<Arc<AtomicU64>> = tenant_requests
        .iter()
        .map(|&r| Arc::new(AtomicU64::new(r)))
        .collect();
    // worker -> (tenant, index within the tenant's workers).
    let assignments: Vec<(usize, usize)> = tenant_connections
        .iter()
        .enumerate()
        .flat_map(|(t, &count)| (0..count).map(move |i| (t, i)))
        .collect();
    // connections workers + the coordinating thread.
    let start_gate = Arc::new(Barrier::new(config.connections + 1));
    let tenants = Arc::new(tenants);
    let tenant_connections = Arc::new(tenant_connections);

    let handles: Vec<_> = assignments
        .iter()
        .map(|&(tenant, tw)| {
            let config = config.clone();
            let tenants = Arc::clone(&tenants);
            let tenant_connections = Arc::clone(&tenant_connections);
            let budget = Arc::clone(&budgets[tenant]);
            let start_gate = Arc::clone(&start_gate);
            let payload_pool = Arc::clone(&payload_pool);
            std::thread::Builder::new()
                .name(format!("loadgen-{}-{tw}", tenants[tenant].name))
                .spawn(move || -> std::io::Result<WorkerStats> {
                    let load = &tenants[tenant];
                    let siblings = tenant_connections[tenant];
                    // Connect + warm up, but *always* reach the barrier —
                    // an early return here would strand the coordinator.
                    let setup = (|| -> std::io::Result<(Conn, RequestGen)> {
                        let mut conn = Conn::connect(&config.addr)?;
                        select_app(&mut conn, &load.name)?;
                        let gen = RequestGen::new(&load.spec, tw as u64);
                        // Warm-up stripes each tenant's hottest keys across
                        // that tenant's own workers (the namespaces are
                        // independent, so cross-tenant striping would leave
                        // gaps).
                        let capped_warmup = config.warmup_keys.min(load.spec.keys.num_keys());
                        warmup(&mut conn, &gen, tw, siblings, capped_warmup, &payload_pool)?;
                        Ok((conn, gen))
                    })();
                    start_gate.wait();
                    let (mut conn, mut gen) = setup?;
                    match config.mode {
                        LoadMode::Closed => run_closed_worker(
                            &mut conn,
                            &mut gen,
                            &budget,
                            config.pipeline as u64,
                            &payload_pool,
                            config.fill_on_miss,
                        ),
                        LoadMode::Open { target_rps } => {
                            let per_conn = (target_rps / config.connections as f64).max(1.0);
                            run_open_worker(
                                &mut conn,
                                &mut gen,
                                &budget,
                                per_conn,
                                &payload_pool,
                                config.fill_on_miss,
                            )
                        }
                    }
                })
                .expect("failed to spawn loadgen worker")
        })
        .collect();

    // Every worker has finished warming up once the barrier releases; the
    // measured window is from here to the last join.
    start_gate.wait();
    let window_start = Instant::now();
    let mut total = WorkerStats::default();
    let mut per_tenant: Vec<WorkerStats> =
        (0..tenants.len()).map(|_| WorkerStats::default()).collect();
    let mut first_error: Option<std::io::Error> = None;
    for (handle, &(tenant, _)) in handles.into_iter().zip(&assignments) {
        match handle.join() {
            Ok(Ok(stats)) => {
                total.merge(&stats);
                per_tenant[tenant].merge(&stats);
            }
            Ok(Err(err)) => first_error = first_error.or(Some(err)),
            Err(_) => {
                first_error =
                    first_error.or_else(|| Some(std::io::Error::other("a loadgen worker panicked")))
            }
        }
    }
    let elapsed = window_start.elapsed().as_secs_f64().max(f64::EPSILON);
    if let Some(err) = first_error {
        return Err(err);
    }

    let tenant_sections: Vec<TenantSection> = if config.tenants.is_empty() {
        Vec::new()
    } else {
        tenants
            .iter()
            .zip(&per_tenant)
            .zip(tenant_connections.iter())
            .map(|((load, stats), &conns)| TenantSection {
                tenant: load.name.clone(),
                connections: conns as u64,
                requests: stats.gets + stats.sets,
                gets: stats.gets,
                get_hits: stats.hits,
                hit_rate: if stats.gets > 0 {
                    stats.hits as f64 / stats.gets as f64
                } else {
                    0.0
                },
                sets: stats.sets,
                fills: stats.fills,
                errors: stats.errors,
                latency: stats.all.summarize_us(),
                get_latency: stats.get.summarize_us(),
                set_latency: stats.set.summarize_us(),
                fill_latency: stats.fill.summarize_us(),
                workload: workload_echo(&load.spec),
                budget_bytes: 0,
                shadow_hits: 0,
                evictions: 0,
            })
            .collect()
    };

    let completed = total.gets + total.sets;
    Ok(LoadReport {
        schema: LOAD_SCHEMA.to_string(),
        mode: match config.mode {
            LoadMode::Closed => "closed".to_string(),
            LoadMode::Open { .. } => "open".to_string(),
        },
        addr: config.addr.clone(),
        connections: config.connections as u64,
        pipeline: match config.mode {
            LoadMode::Closed => config.pipeline as u64,
            LoadMode::Open { .. } => 1,
        },
        target_rps: match config.mode {
            LoadMode::Closed => 0.0,
            LoadMode::Open { target_rps } => target_rps,
        },
        requests: completed,
        warmup_requests: tenants
            .iter()
            .map(|t| config.warmup_keys.min(t.spec.keys.num_keys()))
            .sum(),
        elapsed_secs: elapsed,
        throughput_rps: completed as f64 / elapsed,
        gets: total.gets,
        get_hits: total.hits,
        hit_rate: if total.gets > 0 {
            total.hits as f64 / total.gets as f64
        } else {
            0.0
        },
        sets: total.sets,
        fills: total.fills,
        errors: total.errors,
        latency: total.all.summarize_us(),
        get_latency: total.get.summarize_us(),
        set_latency: total.set.summarize_us(),
        fill_latency: total.fill.summarize_us(),
        workload: workload_echo(&config.workload),
        server: None,
        server_stats: None,
        tenants: tenant_sections,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_server::{BackendConfig, CacheServer, ServerConfig};

    fn test_server(shards: usize) -> CacheServer {
        CacheServer::start(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            // Fewer event loops than loadgen connections, on purpose.
            workers: 2,
            backend: BackendConfig {
                total_bytes: 32 << 20,
                shards,
                ..BackendConfig::default()
            },
            ..ServerConfig::default()
        })
        .expect("server must start")
    }

    fn small_config(addr: String) -> LoadgenConfig {
        LoadgenConfig {
            addr,
            connections: 2,
            requests: 2_000,
            warmup_keys: 500,
            pipeline: 8,
            workload: WorkloadSpec {
                keys: KeyPopularity::Zipf {
                    num_keys: 1_000,
                    exponent: 0.99,
                },
                sizes: SizeDistribution::Fixed(128),
                ..WorkloadSpec::default()
            },
            ..LoadgenConfig::default()
        }
    }

    #[test]
    fn closed_loop_completes_the_budget_and_reports() {
        let server = test_server(2);
        let report = run_load(&small_config(server.local_addr().to_string())).unwrap();
        assert_eq!(report.requests, 2_000);
        assert_eq!(report.gets + report.sets, 2_000);
        assert!(report.throughput_rps > 0.0);
        assert!(
            report.hit_rate > 0.5,
            "warmed Zipf run: {}",
            report.hit_rate
        );
        assert_eq!(report.errors, 0);
        assert_eq!(report.latency.count, 2_000);
        assert!(report.latency.p50_us > 0.0);
        assert!(report.latency.p999_us >= report.latency.p99_us);
        assert_eq!(report.schema, LOAD_SCHEMA);
    }

    #[test]
    fn open_loop_respects_the_budget_and_measures_from_schedule() {
        let server = test_server(1);
        let mut config = small_config(server.local_addr().to_string());
        config.requests = 400;
        config.mode = LoadMode::Open {
            target_rps: 4_000.0,
        };
        let report = run_load(&config).unwrap();
        assert_eq!(report.requests, 400);
        assert_eq!(report.mode, "open");
        assert_eq!(report.pipeline, 1);
        // 400 requests at 4k rps should take roughly 0.1 s of schedule.
        assert!(report.elapsed_secs < 5.0);
    }

    #[test]
    fn fill_on_miss_repopulates_the_cache() {
        // A pure-GET stream over an unwarmed cache: without demand fill the
        // hit rate is zero forever; with it, every miss SETs the key and the
        // hot Zipf ranks become resident inside the run.
        let server = test_server(1);
        let mut config = small_config(server.local_addr().to_string());
        config.requests = 6_000;
        config.warmup_keys = 0;
        config.fill_on_miss = true;
        config.workload.get_fraction = 1.0;
        let report = run_load(&config).unwrap();
        assert_eq!(report.gets, 6_000, "the budget counts the generated GETs");
        assert!(report.sets > 0, "misses must demand-fill");
        assert_eq!(
            report.requests,
            report.gets + report.sets,
            "fills ride on top of the budget"
        );
        assert!(
            report.hit_rate > 0.3,
            "demand fill must lift the hit rate off zero: {}",
            report.hit_rate
        );
        assert_eq!(report.errors, 0);
        // A pure-GET stream: every SET is a fill, and the fill section is a
        // real histogram over exactly those SETs.
        assert_eq!(report.fills, report.sets);
        assert_eq!(report.fill_latency.count, report.fills);
        assert!(report.fill_latency.p50_us > 0.0);
    }

    #[test]
    fn open_loop_fills_are_scheduled_arrivals() {
        // Open-loop with fills: each fill consumes an arrival slot, so the
        // run's wall clock stretches to cover (requests + fills) at the
        // configured rate, and fill latencies are schedule-anchored.
        let server = test_server(1);
        let mut config = small_config(server.local_addr().to_string());
        config.requests = 600;
        config.warmup_keys = 0;
        config.fill_on_miss = true;
        config.workload.get_fraction = 1.0;
        config.mode = LoadMode::Open {
            target_rps: 6_000.0,
        };
        let report = run_load(&config).unwrap();
        assert_eq!(report.gets, 600, "the budget counts the generated GETs");
        assert!(report.fills > 0, "an unwarmed pure-GET stream must fill");
        assert_eq!(report.fills, report.sets);
        assert_eq!(report.requests, report.gets + report.fills);
        assert_eq!(report.fill_latency.count, report.fills);
        assert_eq!(report.errors, 0);
        // The schedule covered every completed request (fills included): at
        // an aggregate 6k rps, (gets + fills) arrivals need at least
        // requests/6000 seconds of schedule — out-of-band fills (the old
        // behaviour) would finish in roughly gets/6000 alone and fail this.
        let min_schedule = report.requests as f64 / 6_000.0;
        assert!(
            report.elapsed_secs >= min_schedule * 0.9,
            "fills must stretch the schedule: {} < {}",
            report.elapsed_secs,
            min_schedule
        );
    }

    /// |a - b| as a Duration, for schedule assertions with a tolerance.
    fn delta(a: Instant, b: Instant) -> Duration {
        if a > b {
            a.duration_since(b)
        } else {
            b.duration_since(a)
        }
    }

    #[test]
    fn pacer_spaces_arrivals_at_the_configured_interval() {
        let t0 = Instant::now();
        let mut pacer = Pacer::new(t0, 1_000.0); // 1 ms spacing
        for k in 1..=5u32 {
            let slot = pacer.next_arrival();
            let want = t0 + Duration::from_millis(k as u64);
            assert!(delta(slot, want) < Duration::from_micros(2), "slot {k}");
        }
    }

    #[test]
    fn pacer_rate_change_continues_the_chain_from_the_boundary() {
        // Regression test for the diurnal phase-boundary bug: after a rate
        // change, the schedule must continue from where the old schedule
        // ended — 5 arrivals at 1 ms then arrivals every 100 µs — not be
        // recomputed from the run start at the new rate (which would
        // teleport the chain to t0 + 600 µs, in the past) and not re-anchor
        // to the wall clock (which would forgive server backlog:
        // coordinated omission at every phase boundary).
        let t0 = Instant::now();
        let mut pacer = Pacer::new(t0, 1_000.0);
        let mut boundary = t0;
        for _ in 0..5 {
            boundary = pacer.next_arrival();
        }
        assert!(delta(boundary, t0 + Duration::from_millis(5)) < Duration::from_micros(2));
        pacer.set_rate(10_000.0);
        let first = pacer.next_arrival();
        let second = pacer.next_arrival();
        let want_first = t0 + Duration::from_millis(5) + Duration::from_micros(100);
        assert!(
            delta(first, want_first) < Duration::from_micros(2),
            "first new-rate arrival must extend the old boundary by the new interval"
        );
        assert!(delta(second, want_first + Duration::from_micros(100)) < Duration::from_micros(2));
        // The new slots are nowhere near a from-scratch schedule at the new
        // rate (t0 + 600 µs / 700 µs): the chain kept its history.
        assert!(first > t0 + Duration::from_millis(4));
    }

    #[test]
    fn pacer_peek_does_not_claim_the_slot() {
        let t0 = Instant::now();
        let mut pacer = Pacer::new(t0, 1_000.0);
        let peeked = pacer.peek();
        assert_eq!(peeked, pacer.next_arrival());
        assert!(pacer.peek() > peeked);
        let one_ms = Duration::from_millis(1);
        assert!(pacer.interval() >= one_ms - Duration::from_nanos(10));
        assert!(pacer.interval() <= one_ms + Duration::from_nanos(10));
    }

    #[test]
    fn connection_and_request_allocation_follow_weights() {
        let tenants = vec![
            TenantLoad::new("a", 3, WorkloadSpec::default()),
            TenantLoad::new("b", 1, WorkloadSpec::default()),
        ];
        assert_eq!(allocate_connections(8, &tenants), vec![6, 2]);
        // Every tenant keeps at least one connection even when outweighed.
        assert_eq!(allocate_connections(2, &tenants), vec![1, 1]);
        let requests = allocate_requests(100_000, &tenants);
        assert_eq!(requests, vec![75_000, 25_000]);
        assert_eq!(requests.iter().sum::<u64>(), 100_000);
        let lone = vec![TenantLoad::new("only", 5, WorkloadSpec::default())];
        assert_eq!(allocate_connections(3, &lone), vec![3]);
        assert_eq!(allocate_requests(7, &lone), vec![7]);
    }

    fn tenant_server() -> CacheServer {
        CacheServer::start(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            backend: BackendConfig {
                total_bytes: 32 << 20,
                shards: 2,
                tenants: vec![
                    cache_server::TenantSpec::new("hot", 1),
                    cache_server::TenantSpec::new("cold", 1),
                ],
                ..BackendConfig::default()
            },
            ..ServerConfig::default()
        })
        .expect("server must start")
    }

    #[test]
    fn multi_tenant_run_reports_per_tenant_sections() {
        let server = tenant_server();
        let mut config = small_config(server.local_addr().to_string());
        config.connections = 4;
        config.requests = 4_000;
        config.tenants = vec![
            TenantLoad::new(
                "hot",
                3,
                WorkloadSpec {
                    keys: KeyPopularity::Zipf {
                        num_keys: 500,
                        exponent: 1.1,
                    },
                    sizes: SizeDistribution::Fixed(128),
                    ..WorkloadSpec::default()
                },
            ),
            TenantLoad::new(
                "cold",
                1,
                WorkloadSpec {
                    keys: KeyPopularity::Uniform { num_keys: 2_000 },
                    sizes: SizeDistribution::Fixed(64),
                    ..WorkloadSpec::default()
                },
            ),
        ];
        let report = run_load(&config).unwrap();
        assert_eq!(report.requests, 4_000);
        assert_eq!(report.errors, 0);
        assert_eq!(report.tenants.len(), 2);
        let hot = &report.tenants[0];
        let cold = &report.tenants[1];
        assert_eq!(hot.tenant, "hot");
        assert_eq!(cold.tenant, "cold");
        // Weighted budget split: 3:1.
        assert_eq!(hot.requests, 3_000);
        assert_eq!(cold.requests, 1_000);
        assert_eq!(hot.connections, 3);
        assert_eq!(cold.connections, 1);
        assert_eq!(hot.requests + cold.requests, report.requests);
        assert_eq!(hot.gets + cold.gets, report.gets);
        assert_eq!(hot.latency.count, 3_000);
        assert!(hot.hit_rate > 0.5, "warmed Zipf tenant: {}", hot.hit_rate);
        assert_eq!(hot.workload.keys, "zipf:1.1");
        assert_eq!(cold.workload.keys, "uniform");
        // Section latencies are real measurements.
        assert!(hot.latency.p50_us > 0.0);
        assert!(cold.latency.p50_us > 0.0);
    }

    #[test]
    fn unknown_tenant_fails_the_run() {
        let server = tenant_server();
        let mut config = small_config(server.local_addr().to_string());
        config.tenants = vec![TenantLoad::new("nope", 1, WorkloadSpec::default())];
        let err = run_load(&config).expect_err("unknown app must fail fast");
        assert!(err.to_string().contains("app nope"), "{err}");
    }

    #[test]
    fn more_tenants_than_connections_rejected() {
        let mut config = small_config("127.0.0.1:1".to_string());
        config.connections = 1;
        config.tenants = vec![
            TenantLoad::new("a", 1, WorkloadSpec::default()),
            TenantLoad::new("b", 1, WorkloadSpec::default()),
        ];
        assert!(run_load(&config).is_err());
    }

    #[test]
    fn unreachable_server_is_an_error() {
        let config = LoadgenConfig {
            addr: "127.0.0.1:1".to_string(),
            ..LoadgenConfig::default()
        };
        assert!(run_load(&config).is_err());
    }

    #[test]
    fn zero_connections_rejected() {
        let config = LoadgenConfig {
            connections: 0,
            ..LoadgenConfig::default()
        };
        assert!(run_load(&config).is_err());
    }
}
