//! Static per-tenant reservations vs live cross-tenant arbitration at fixed
//! total memory.
//!
//! Run with: `cargo run --release -p simulator --bin tenant_experiment`
//!
//! Prints the experiment JSON (`cliffhanger-tenant-experiment/v1`) on stdout
//! and the human-readable table on stderr.
//!
//! `--smoke` runs the down-scaled CI variant and *asserts* the experiment's
//! promises — the arbiter never loses to static reservations on any
//! scenario, and clearly beats them on the skewed mix — exiting non-zero on
//! violation (the `tenant-smoke` CI job gates on this).

use simulator::experiments::tenants::{tenant_experiment, TenantOptions};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut requests: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--requests" => {
                requests = args.get(i + 1).and_then(|s| s.parse().ok());
                if requests.is_none() {
                    eprintln!("--requests needs a number");
                    return ExitCode::FAILURE;
                }
                i += 1;
            }
            other => {
                eprintln!(
                    "unknown flag {other:?}\n\
                     usage: tenant_experiment [--smoke] [--requests <n>]\n\
                     table on stderr, cliffhanger-tenant-experiment/v1 JSON on stdout"
                );
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let mut opts = if smoke {
        TenantOptions::smoke()
    } else {
        TenantOptions::standard()
    };
    if let Some(requests) = requests {
        opts.requests = requests;
    }

    let result = tenant_experiment(&opts);
    eprint!("{}", result.table());
    println!("{}", result.to_json());

    if smoke {
        for p in &result.points {
            if p.arbitrated_hit_rate + 1e-9 < p.static_hit_rate - 0.01 {
                eprintln!(
                    "FAIL: arbiter-on hit rate {:.4} more than 1 point below static \
                     reservations' {:.4} on scenario {:?}",
                    p.arbitrated_hit_rate, p.static_hit_rate, p.scenario
                );
                return ExitCode::FAILURE;
            }
        }
        let skewed = result
            .point("skewed")
            .expect("smoke options include the skewed scenario");
        if skewed.arbitrated_hit_rate < skewed.static_hit_rate + 0.02 {
            eprintln!(
                "FAIL: the arbiter should clearly beat static reservations on the \
                 skewed mix (got {:.4} vs {:.4}, want >= 2pp)",
                skewed.arbitrated_hit_rate, skewed.static_hit_rate
            );
            return ExitCode::FAILURE;
        }
        if skewed.transfers == 0 {
            eprintln!("FAIL: the skewed mix must trigger tenant transfers");
            return ExitCode::FAILURE;
        }
        eprintln!("tenant smoke: ok");
    }
    ExitCode::SUCCESS
}
