//! The TCP listener and the event-driven serving front end.
//!
//! The acceptor thread owns the listener; every accepted socket is checked
//! against the `max_connections` gate (shed with `SERVER_ERROR out of
//! connections` past it, instead of queueing unboundedly) and handed
//! round-robin to one of `workers` reactor event loops (see
//! [`crate::reactor`]). Connection count is bounded by the gate and by fds
//! — not by the worker count: a 2-loop server happily serves hundreds of
//! concurrent connections, the configuration the old thread-per-connection
//! front end deadlocked on.
//!
//! The cache behind the loops is the shared-nothing data plane
//! (`crate::plane`): each loop owns the engines of its shard group
//! outright, and [`CacheServer::cache`] hands out a [`PlaneHandle`] whose
//! operations are message round-trips to the owning loop.

use crate::backend::BackendConfig;
use crate::plane::{Plane, PlaneHandle};
use crate::reactor::ConnTelemetry;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind; use port 0 for an ephemeral port.
    pub addr: String,
    /// Number of event-loop worker threads. Each loop multiplexes many
    /// connections, so size this to the CPUs you want serving traffic (see
    /// [`default_event_loops`]), not to the connection count. Must be at
    /// least 1; [`CacheServer::start`] rejects 0 with
    /// [`std::io::ErrorKind::InvalidInput`].
    pub workers: usize,
    /// Maximum concurrently served connections. The acceptor sheds
    /// connections past it with `SERVER_ERROR out of connections`; shed
    /// attempts are counted in the `rejected_connections` stat. Must be at
    /// least 1.
    pub max_connections: usize,
    /// Close connections that have been silent this long (`None` — the
    /// default — never reaps). With the `max_connections` gate, a leaked
    /// client fleet would otherwise pin the gate shut forever; reaped
    /// connections are counted in the `idle_closed_connections` stat.
    /// Connections with an operation in flight are never reaped.
    pub idle_timeout: Option<Duration>,
    /// Service-time threshold, in microseconds, above which an operation
    /// counts as *slow*: it increments the `plane:slow_ops` stat and (one
    /// in every few) lands in the flight-recorder journal with its event
    /// loop, command class and duration. `0` (the default) disables the
    /// slow-op log entirely — the histograms still record every operation.
    pub slow_op_micros: u64,
    /// Backend (cache) configuration.
    pub backend: BackendConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            max_connections: 4096,
            idle_timeout: None,
            slow_op_micros: 0,
            backend: BackendConfig::default(),
        }
    }
}

/// Event-loop count auto-detection: one loop per available CPU, capped at
/// 8 — loops are CPU-bound multiplexers, and past the core count extra
/// loops only add context switching.
pub fn default_event_loops() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 8)
}

/// A running cache server.
pub struct CacheServer {
    local_addr: SocketAddr,
    plane: Plane,
    telemetry: Arc<ConnTelemetry>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl CacheServer {
    /// Binds and starts serving in background threads.
    ///
    /// Returns `InvalidInput` if `config.workers == 0` or
    /// `config.max_connections == 0` — a silent clamp would hide a
    /// misconfigured deployment.
    pub fn start(config: ServerConfig) -> std::io::Result<CacheServer> {
        if config.workers == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "ServerConfig::workers must be at least 1 (got 0); \
                 each event loop serves many connections, so one per CPU is plenty",
            ));
        }
        if config.max_connections == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "ServerConfig::max_connections must be at least 1 (got 0)",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let telemetry = Arc::new(ConnTelemetry::new(
            config.workers,
            config.max_connections as u64,
        ));
        let plane = Plane::start(
            config.backend.clone(),
            config.workers,
            Arc::clone(&telemetry),
            config.idle_timeout,
            config.slow_op_micros,
        )?;
        let shutdown = Arc::new(AtomicBool::new(false));

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_loops = Arc::clone(&plane.loops);
        let accept_telemetry = Arc::clone(&telemetry);
        let accept_plane = Arc::clone(&plane.handle);
        let max_connections = config.max_connections as u64;
        let accept_thread = std::thread::Builder::new()
            .name("cache-acceptor".to_string())
            .spawn(move || {
                let mut next_loop = 0usize;
                for stream in listener.incoming() {
                    if accept_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    match stream {
                        Ok(stream) => {
                            if accept_telemetry.curr() >= max_connections {
                                accept_telemetry.on_reject();
                                accept_plane.note_connection_shed();
                                shed(stream);
                                continue;
                            }
                            // Round-robin, failing over past any loop that
                            // has stopped serving (a loop that died on a
                            // hard epoll error must not black-hole 1/N of
                            // all new connections). The per-loop count goes
                            // up before the hand-off so the gate above can
                            // never over-admit, and comes back on refusal.
                            let mut stream = Some(stream);
                            for _ in 0..accept_loops.len() {
                                let index = next_loop % accept_loops.len();
                                next_loop = next_loop.wrapping_add(1);
                                accept_telemetry.on_accept(index);
                                match accept_loops[index].dispatch(stream.take().unwrap()) {
                                    Ok(()) => break,
                                    Err(refused) => {
                                        accept_telemetry.on_dispatch_refused(index);
                                        stream = Some(refused);
                                    }
                                }
                            }
                            // Every loop refused: the server is tearing
                            // down (or fully wedged); drop the connection.
                            drop(stream);
                        }
                        Err(_) => {
                            // accept() errors are almost always transient
                            // (EMFILE under an fd spike, ECONNABORTED from
                            // a client that gave up in the backlog) —
                            // treating them as fatal would silently kill
                            // the acceptor while the server looks healthy.
                            // Back off briefly and keep accepting; shutdown
                            // still exits via the flag check above.
                            std::thread::sleep(Duration::from_millis(10));
                        }
                    }
                }
            })?;

        Ok(CacheServer {
            local_addr,
            plane,
            telemetry,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The data-plane handle (e.g. for out-of-band statistics in
    /// benchmarks). Operations are synchronous message round-trips to the
    /// event loop owning the key's shard.
    pub fn cache(&self) -> &Arc<PlaneHandle> {
        &self.plane.handle
    }

    /// Live connection counters (also exposed as `curr_connections` /
    /// `total_connections` / `conns:loop:<i>` stats lines).
    pub fn connections(&self) -> &Arc<ConnTelemetry> {
        &self.telemetry
    }

    /// Stops accepting connections, closes live connections after the
    /// readiness pass they are currently in, and joins every server thread.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor with a dummy connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // The acceptor is gone, so no new dispatches can race the plane's
        // teardown: the control thread exits first (with the loops still
        // alive to answer any in-flight admin fan-out), then each loop
        // closes every connection it owns and exits.
        self.plane.shutdown();
    }
}

impl Drop for CacheServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Refuses a connection at the accept gate: tell the client why, then
/// close. Best-effort with a short timeout — a blocked write here would
/// stall the acceptor for everyone.
fn shed(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let _ = stream.write_all(b"SERVER_ERROR out of connections\r\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BackendMode, TenantSpec};
    use crate::client::CacheClient;
    use std::io::{BufRead, BufReader};

    fn start_test_server(mode: BackendMode) -> CacheServer {
        CacheServer::start(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            backend: crate::backend::BackendConfig {
                total_bytes: 8 << 20,
                mode,
                ..crate::backend::BackendConfig::default()
            },
            ..ServerConfig::default()
        })
        .expect("server must start")
    }

    #[test]
    fn end_to_end_set_get_delete() {
        let server = start_test_server(BackendMode::Cliffhanger);
        let mut client = CacheClient::connect(server.local_addr()).unwrap();
        assert!(client.set(b"greeting", 5, b"hello world").unwrap());
        let got = client.get(b"greeting").unwrap().expect("hit");
        assert_eq!(got.0, 5);
        assert_eq!(got.1, b"hello world");
        assert!(client.delete(b"greeting").unwrap());
        assert!(client.get(b"greeting").unwrap().is_none());
        assert!(!client.delete(b"greeting").unwrap());
    }

    #[test]
    fn stats_and_version_and_flush() {
        let server = start_test_server(BackendMode::Default);
        let mut client = CacheClient::connect(server.local_addr()).unwrap();
        client.set(b"a", 0, b"1").unwrap();
        client.get(b"a").unwrap();
        let version = client.version().unwrap();
        assert!(version.contains("cliffhanger"));
        let stats = client.stats().unwrap();
        let map: std::collections::HashMap<_, _> = stats.into_iter().collect();
        assert_eq!(map["cmd_set"], "1");
        assert_eq!(map["get_hits"], "1");
        assert!(map.contains_key("shard_count"));
        assert!(map.contains_key("plane:event_loops"));
        client.flush_all().unwrap();
        assert!(client.get(b"a").unwrap().is_none());
    }

    #[test]
    fn stats_report_connection_counters() {
        let server = start_test_server(BackendMode::Default);
        let mut a = CacheClient::connect(server.local_addr()).unwrap();
        let mut b = CacheClient::connect(server.local_addr()).unwrap();
        a.set(b"k", 0, b"v").unwrap();
        // Round-trip on `b` too, so both registrations have fully landed
        // before the counters are sampled (an in-flight on_accept could
        // otherwise race the stats reads).
        b.set(b"k2", 0, b"v").unwrap();
        let stats: std::collections::HashMap<_, _> = a.stats().unwrap().into_iter().collect();
        let curr: u64 = stats["curr_connections"].parse().unwrap();
        let total: u64 = stats["total_connections"].parse().unwrap();
        assert!(curr >= 2);
        assert!(total >= curr);
        assert_eq!(stats["rejected_connections"], "0");
        assert_eq!(stats["max_connections"], "4096");
        let per_loop: u64 = (0..2)
            .map(|i| stats[&format!("conns:loop:{i}")].parse::<u64>().unwrap())
            .sum();
        assert_eq!(per_loop, curr);
    }

    #[test]
    fn acceptor_sheds_past_max_connections() {
        let server = CacheServer::start(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            max_connections: 2,
            backend: crate::backend::BackendConfig {
                total_bytes: 8 << 20,
                ..crate::backend::BackendConfig::default()
            },
            ..ServerConfig::default()
        })
        .expect("server must start");
        // Round-trips guarantee both connections are registered before the
        // third arrives, so the gate's view of `curr` is deterministic.
        let mut a = CacheClient::connect(server.local_addr()).unwrap();
        let mut b = CacheClient::connect(server.local_addr()).unwrap();
        assert!(a.set(b"a", 0, b"1").unwrap());
        assert!(b.set(b"b", 0, b"1").unwrap());
        let shed = TcpStream::connect(server.local_addr()).unwrap();
        let mut line = String::new();
        BufReader::new(shed).read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "SERVER_ERROR out of connections");
        // The admitted connections keep working, and the shed one counted.
        assert!(a.get(b"a").unwrap().is_some());
        let stats: std::collections::HashMap<_, _> = b.stats().unwrap().into_iter().collect();
        assert_eq!(stats["rejected_connections"], "1");
        assert_eq!(stats["max_connections"], "2");
        // Once a slot frees up, new connections are admitted again.
        drop(a);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            if let Ok(mut c) = CacheClient::connect(server.local_addr()) {
                if c.get(b"b").is_ok() {
                    break;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "a freed slot must re-open the gate"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
    }

    #[test]
    fn multiple_clients_share_the_cache() {
        let server = start_test_server(BackendMode::HillClimbing);
        let mut writer = CacheClient::connect(server.local_addr()).unwrap();
        let mut reader = CacheClient::connect(server.local_addr()).unwrap();
        writer.set(b"shared", 1, b"data").unwrap();
        let got = reader
            .get(b"shared")
            .unwrap()
            .expect("visible across connections");
        assert_eq!(got.1, b"data");
    }

    #[test]
    fn concurrent_load_is_consistent() {
        let server = start_test_server(BackendMode::Cliffhanger);
        let addr = server.local_addr();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut client = CacheClient::connect(addr).unwrap();
                    for i in 0..200 {
                        let key = format!("t{t}-k{i}");
                        let value = format!("value-{t}-{i}");
                        assert!(client.set(key.as_bytes(), 0, value.as_bytes()).unwrap());
                        let got = client
                            .get(key.as_bytes())
                            .unwrap()
                            .expect("own write visible");
                        assert_eq!(got.1, value.as_bytes());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats: std::collections::HashMap<_, _> = server.cache().stats().into_iter().collect();
        let sets: u64 = stats["cmd_set"].parse().unwrap();
        assert_eq!(sets, 800);
    }

    #[test]
    fn binary_values_survive_the_wire() {
        let server = start_test_server(BackendMode::Cliffhanger);
        let mut client = CacheClient::connect(server.local_addr()).unwrap();
        let payload: Vec<u8> = (0..=255u8).cycle().take(4_096).collect();
        assert!(client.set(b"binary", 0, &payload).unwrap());
        let got = client.get(b"binary").unwrap().expect("hit");
        assert_eq!(got.1, payload);
    }

    #[test]
    fn idle_connections_are_reaped_but_active_ones_survive() {
        let server = CacheServer::start(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            idle_timeout: Some(Duration::from_millis(200)),
            backend: crate::backend::BackendConfig {
                total_bytes: 8 << 20,
                ..crate::backend::BackendConfig::default()
            },
            ..ServerConfig::default()
        })
        .expect("server must start");
        let mut active = CacheClient::connect(server.local_addr()).unwrap();
        let mut leaked = CacheClient::connect(server.local_addr()).unwrap();
        assert!(leaked.set(b"leak", 0, b"1").unwrap());
        // Keep `active` busy past the timeout while `leaked` goes silent.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            assert!(active.set(b"ping", 0, b"1").unwrap());
            let stats: std::collections::HashMap<_, _> =
                active.stats().unwrap().into_iter().collect();
            if stats["idle_closed_connections"].parse::<u64>().unwrap() >= 1 {
                assert_eq!(stats["plane:idle_timeout_ms"], "200");
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "the idle reaper must close the silent connection"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
        // The active connection was never reaped; the leaked one is dead.
        assert!(active.get(b"ping").unwrap().is_some());
        assert!(leaked.get(b"leak").is_err());
    }

    fn start_tenant_server() -> CacheServer {
        CacheServer::start(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            // Fewer event loops than concurrent test clients on purpose:
            // connections no longer pin a worker for life, so this is the
            // configuration the reactor exists to serve.
            workers: 2,
            backend: crate::backend::BackendConfig {
                total_bytes: 12 << 20,
                mode: BackendMode::Cliffhanger,
                shards: 2,
                tenants: vec![TenantSpec::new("alpha", 1), TenantSpec::new("beta", 1)],
                ..crate::backend::BackendConfig::default()
            },
            ..ServerConfig::default()
        })
        .expect("server must start")
    }

    #[test]
    fn app_selector_scopes_sessions_end_to_end() {
        let server = start_tenant_server();
        let mut alpha = CacheClient::connect(server.local_addr()).unwrap();
        let mut beta = CacheClient::connect(server.local_addr()).unwrap();
        let mut plain = CacheClient::connect(server.local_addr()).unwrap();
        assert!(alpha.app("alpha").unwrap());
        assert!(beta.app("beta").unwrap());
        // The same wire key is independent per namespace.
        assert!(alpha.set(b"k", 1, b"from-alpha").unwrap());
        assert!(beta.set(b"k", 2, b"from-beta").unwrap());
        assert!(plain.set(b"k", 3, b"from-default").unwrap());
        assert_eq!(alpha.get(b"k").unwrap().unwrap().1, b"from-alpha");
        assert_eq!(beta.get(b"k").unwrap().unwrap().1, b"from-beta");
        assert_eq!(plain.get(b"k").unwrap().unwrap().1, b"from-default");
        // Stats carry per-tenant sections.
        let stats: std::collections::HashMap<_, _> = plain.stats().unwrap().into_iter().collect();
        assert_eq!(stats["tenant_count"], "3");
        assert_eq!(stats["tenant:alpha:cmd_set"], "1");
        assert_eq!(stats["tenant:beta:cmd_set"], "1");
        assert_eq!(stats["tenant:default:cmd_set"], "1");
    }

    #[test]
    fn unknown_app_is_a_client_error_and_keeps_the_session_tenant() {
        let server = start_tenant_server();
        let mut client = CacheClient::connect(server.local_addr()).unwrap();
        assert!(client.app("alpha").unwrap());
        assert!(client.set(b"k", 0, b"v").unwrap());
        assert!(!client.app("nope").unwrap(), "unknown app must be refused");
        // Still scoped to alpha after the failed switch.
        assert_eq!(client.get(b"k").unwrap().unwrap().1, b"v");
    }

    #[test]
    fn app_create_onboards_a_tenant_live() {
        let server = start_tenant_server();
        let mut admin = CacheClient::connect(server.local_addr()).unwrap();
        let mut other = CacheClient::connect(server.local_addr()).unwrap();
        assert!(
            !admin.app("gamma").unwrap(),
            "gamma must not exist before app_create"
        );
        assert!(admin.app_create("gamma", 2).unwrap());
        // Visible to every session, immediately, without a restart.
        assert!(other.app("gamma").unwrap());
        assert!(other.set(b"k", 9, b"gamma-v").unwrap());
        assert_eq!(other.get(b"k").unwrap().unwrap().1, b"gamma-v");
        // The new namespace is isolated from the default one.
        assert!(admin.get(b"k").unwrap().is_none());
        // The carve-out gave it a real budget and the listing shows it.
        let apps = admin.app_list().unwrap();
        let gamma = apps
            .iter()
            .find(|(name, _, _)| name == "gamma")
            .expect("gamma listed");
        assert_eq!(gamma.1, 2, "weight echoed");
        assert!(gamma.2 > 0, "carved budget must be nonzero: {apps:?}");
        let total: u64 = apps.iter().map(|(_, _, b)| b).sum();
        assert_eq!(total, 12 << 20, "carve-out conserves the total budget");
        // Duplicates and invalid names are CLIENT_ERRORs.
        assert!(!admin.app_create("gamma", 1).unwrap());
        assert!(!admin.app_create("bad:name", 1).unwrap());
        let stats: std::collections::HashMap<_, _> = admin.stats().unwrap().into_iter().collect();
        assert_eq!(stats["tenant_count"], "4");
        assert!(stats.contains_key("tenant:gamma:budget"));
    }

    #[test]
    fn flush_all_is_tenant_scoped() {
        let server = start_tenant_server();
        let mut alpha = CacheClient::connect(server.local_addr()).unwrap();
        let mut plain = CacheClient::connect(server.local_addr()).unwrap();
        assert!(alpha.app("alpha").unwrap());
        assert!(alpha.set(b"a", 0, b"1").unwrap());
        assert!(plain.set(b"d", 0, b"1").unwrap());
        alpha.flush_all().unwrap();
        assert!(alpha.get(b"a").unwrap().is_none(), "alpha flushed itself");
        assert_eq!(
            plain.get(b"d").unwrap().unwrap().1,
            b"1",
            "alpha's flush must not touch the default namespace"
        );
    }

    #[test]
    fn shutdown_is_idempotent() {
        let mut server = start_test_server(BackendMode::Default);
        server.shutdown();
        server.shutdown();
    }

    #[test]
    fn zero_workers_is_rejected_with_a_clear_error() {
        let err = match CacheServer::start(ServerConfig {
            workers: 0,
            ..ServerConfig::default()
        }) {
            Ok(_) => panic!("workers = 0 must be rejected"),
            Err(err) => err,
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("workers"));
        let err = match CacheServer::start(ServerConfig {
            max_connections: 0,
            ..ServerConfig::default()
        }) {
            Ok(_) => panic!("max_connections = 0 must be rejected"),
            Err(err) => err,
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("max_connections"));
    }

    #[test]
    fn shutdown_unblocks_idle_connections() {
        let mut server = start_test_server(BackendMode::Default);
        let mut client = CacheClient::connect(server.local_addr()).unwrap();
        assert!(client.set(b"live", 0, b"1").unwrap());
        // The client is idle (its connection parked in the event loop);
        // shutdown must not hang waiting for it to disconnect.
        server.shutdown();
        // The connection is now closed from the server side.
        assert!(client.get(b"live").is_err());
    }
}
