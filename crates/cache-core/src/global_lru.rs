//! The log-structured-memory model: a single global LRU queue.
//!
//! RAMCloud-style log-structured memory (LSM) stores items contiguously in a
//! log rather than in slab classes, which lets the cache run one global LRU
//! queue at (ideally) 100% memory utilisation (paper §3.2, Table 2). The
//! paper simulates exactly that idealised model — a global LRU with no
//! fragmentation — and so do we.

use crate::key::Key;
use crate::policy::PolicyKind;
use crate::queue::{CacheQueue, GetResult, QueueConfig, SetResult};
use crate::stats::CacheStats;

/// A cache with a single global eviction queue over bytes.
#[derive(Debug)]
pub struct GlobalLruCache<V> {
    queue: CacheQueue<V>,
}

impl<V> GlobalLruCache<V> {
    /// Creates a global-LRU cache with the given byte budget.
    pub fn new(total_bytes: u64) -> Self {
        Self::with_policy(total_bytes, PolicyKind::Lru)
    }

    /// Creates a global cache with an arbitrary eviction policy.
    pub fn with_policy(total_bytes: u64, policy: PolicyKind) -> Self {
        GlobalLruCache {
            queue: CacheQueue::new(QueueConfig {
                policy,
                target_bytes: total_bytes,
                tail_region_items: 0,
                shadow_capacity: 0,
            }),
        }
    }

    /// Enables a shadow queue of `capacity` keys on the global queue.
    pub fn with_shadow(total_bytes: u64, capacity: usize) -> Self {
        GlobalLruCache {
            queue: CacheQueue::new(QueueConfig {
                policy: PolicyKind::Lru,
                target_bytes: total_bytes,
                tail_region_items: 0,
                shadow_capacity: capacity,
            }),
        }
    }

    /// Looks up `key`.
    pub fn get(&mut self, key: Key) -> GetResult {
        self.queue.get(key)
    }

    /// Stores `key` with a payload of `size` bytes.
    pub fn set(&mut self, key: Key, size: u64, value: V) -> SetResult {
        self.queue.set(key, size, value)
    }

    /// Deletes `key`.
    pub fn delete(&mut self, key: Key) -> bool {
        self.queue.delete(key)
    }

    /// Stored value for `key`.
    pub fn value(&self, key: Key) -> Option<&V> {
        self.queue.value(key)
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> CacheStats {
        self.queue.stats()
    }

    /// Resets statistics.
    pub fn reset_stats(&mut self) {
        self.queue.reset_stats();
    }

    /// Bytes in use.
    pub fn used_bytes(&self) -> u64 {
        self.queue.used_bytes()
    }

    /// Byte budget.
    pub fn total_bytes(&self) -> u64 {
        self.queue.target_bytes()
    }

    /// Number of resident items.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The underlying queue (for allocators and tests).
    pub fn queue_mut(&mut self) -> &mut CacheQueue<V> {
        &mut self.queue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> Key {
        Key::new(i)
    }

    #[test]
    fn large_and_small_items_share_one_queue() {
        let mut c: GlobalLruCache<()> = GlobalLruCache::new(10_000);
        c.set(key(1), 4_000, ());
        c.set(key(2), 100, ());
        c.set(key(3), 100, ());
        assert!(c.get(key(1)).hit);
        assert!(c.get(key(2)).hit);
        // A single large insertion can push out many small ones — the
        // behaviour the paper attributes to global LRU queues (§3.2).
        c.set(key(4), 9_000, ());
        assert!(c.get(key(4)).hit);
        assert!(!c.get(key(3)).hit, "small items evicted by the large one");
        assert!(c.used_bytes() <= 10_000);
    }

    #[test]
    fn utilisation_reaches_budget() {
        let mut c: GlobalLruCache<()> = GlobalLruCache::new(100_000);
        for i in 0..10_000 {
            c.set(key(i), 52, ()); // charge = 100 bytes
        }
        assert_eq!(c.len(), 1_000);
        assert_eq!(c.used_bytes(), 100_000);
    }

    #[test]
    fn works_with_facebook_policy() {
        let mut c: GlobalLruCache<()> = GlobalLruCache::with_policy(5_000, PolicyKind::Facebook);
        for i in 0..100 {
            c.set(key(i), 52, ());
        }
        assert!(c.used_bytes() <= 5_000);
        assert!(!c.is_empty());
    }

    #[test]
    fn shadow_queue_reports_near_misses() {
        let mut c: GlobalLruCache<()> = GlobalLruCache::with_shadow(1_000, 64);
        for i in 0..50 {
            c.set(key(i), 52, ());
        }
        // Early keys were evicted; they should register as shadow hits.
        let res = c.get(key(0));
        assert!(!res.hit);
        assert!(res.shadow_hit.is_some());
    }

    #[test]
    fn delete_and_value() {
        let mut c: GlobalLruCache<u32> = GlobalLruCache::new(1_000);
        c.set(key(1), 10, 99);
        assert_eq!(c.value(key(1)), Some(&99));
        assert!(c.delete(key(1)));
        assert!(c.value(key(1)).is_none());
        assert!(c.is_empty());
    }
}
