//! Cost of the profiling machinery the curve-based baselines rely on —
//! the complexity Cliffhanger avoids (exact stack distances vs the Mimir
//! buckets vs a plain shadow-queue probe).

use cache_core::Key;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use profiler::{DynacacheSolver, MimirEstimator, QueueProfile, StackDistanceTracker};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_stack_distance(c: &mut Criterion) {
    let mut group = c.benchmark_group("stack_distance");
    group.throughput(Throughput::Elements(1));

    group.bench_function("exact_record", |b| {
        let mut tracker = StackDistanceTracker::new();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50_000 {
            tracker.record(Key::new(rng.gen_range(0..100_000)));
        }
        b.iter(|| {
            let key = Key::new(rng.gen_range(0..100_000));
            black_box(tracker.record(key))
        });
    });

    group.bench_function("mimir_record", |b| {
        let mut estimator = MimirEstimator::new(100, 1_000_000);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50_000 {
            estimator.record(Key::new(rng.gen_range(0..100_000)));
        }
        b.iter(|| {
            let key = Key::new(rng.gen_range(0..100_000));
            black_box(estimator.record(key))
        });
    });
    group.finish();
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynacache_solver");
    // Build 15 synthetic concave curves, one per slab class.
    let profiles: Vec<QueueProfile> = (0..15)
        .map(|i| {
            let knee = 2_000.0 + 500.0 * i as f64;
            let points = (1..=200u64)
                .map(|j| {
                    let x = j * 200;
                    (x, 0.9 * x as f64 / (x as f64 + knee))
                })
                .collect();
            QueueProfile::new(
                profiler::HitRateCurve::from_points(points),
                1.0 / 15.0,
                64 << i.min(10),
            )
        })
        .collect();

    group.bench_function("allocate_64mb", |b| {
        let solver = DynacacheSolver::new(1 << 20);
        b.iter(|| black_box(solver.allocate(&profiles, 64 << 20)));
    });
    group.finish();
}

criterion_group!(benches, bench_stack_distance, bench_solver);
criterion_main!(benches);
