//! Per-request overhead of the Cliffhanger controller compared to the
//! unmanaged slab cache — the in-process counterpart of Tables 6 and 7.

use cache_core::{Key, SlabCache, SlabCacheConfig};
use cliffhanger::{Cliffhanger, CliffhangerConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_get_miss_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("worst_case_all_miss");
    group.throughput(Throughput::Elements(1));

    group.bench_function("stock_get_then_fill", |b| {
        let mut cache: SlabCache<()> = SlabCache::new(SlabCacheConfig {
            total_bytes: 8 << 20,
            ..SlabCacheConfig::default()
        });
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let key = Key::new(i);
            if !cache.get(key, 200).map(|r| r.result.hit).unwrap_or(false) {
                cache.set(key, 200, ());
            }
            black_box(&cache);
        });
    });

    group.bench_function("cliffhanger_get_then_fill", |b| {
        let mut cache: Cliffhanger<()> =
            Cliffhanger::new(CliffhangerConfig::with_total_bytes(8 << 20));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let key = Key::new(i);
            if !cache.get(key, 200).map(|(_, e)| e.hit).unwrap_or(false) {
                cache.set(key, 200, ());
            }
            black_box(&cache);
        });
    });

    group.bench_function("hill_climbing_only_get_then_fill", |b| {
        let mut cache: Cliffhanger<()> =
            Cliffhanger::new(CliffhangerConfig::with_total_bytes(8 << 20).hill_climbing_only());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let key = Key::new(i);
            if !cache.get(key, 200).map(|(_, e)| e.hit).unwrap_or(false) {
                cache.set(key, 200, ());
            }
            black_box(&cache);
        });
    });
    group.finish();
}

fn bench_get_hit_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("get_hit");
    group.throughput(Throughput::Elements(1));

    group.bench_function("stock", |b| {
        let mut cache: SlabCache<()> = SlabCache::new(SlabCacheConfig {
            total_bytes: 32 << 20,
            ..SlabCacheConfig::default()
        });
        for i in 0..20_000u64 {
            cache.set(Key::new(i), 200, ());
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 20_000;
            black_box(cache.get(Key::new(i), 200))
        });
    });

    group.bench_function("cliffhanger", |b| {
        let mut cache: Cliffhanger<()> =
            Cliffhanger::new(CliffhangerConfig::with_total_bytes(32 << 20));
        for i in 0..20_000u64 {
            cache.set(Key::new(i), 200, ());
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 20_000;
            black_box(cache.get(Key::new(i), 200))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_get_miss_paths, bench_get_hit_paths);
criterion_main!(benches);
