//! Rebalancing safety: budget moves must never corrupt or silently lose
//! entries.
//!
//! Two angles:
//! * a threaded stress test where writers hammer the sharded backend while
//!   rebalancing rounds run organically (interval ticks) and forcibly
//!   (`rebalance_now` from a dedicated thread) under genuine memory
//!   pressure — every read must see either the exact value last written or
//!   a clean miss, budgets must keep summing to the configured total, and
//!   transfers must actually have happened for the test to mean anything;
//! * a property test driving random op sequences with rebalancing rounds
//!   interleaved at arbitrary points, in a no-eviction regime: with zero
//!   evictions, *every* entry ever stored must still be present with its
//!   exact value — a transfer can only move budget, never entries.

use bytes::Bytes;
use cache_core::hash_bytes;
use cache_core::key::mix64;
use cache_server::{BackendConfig, BackendMode, SharedCache};
use cliffhanger::ShardBalanceConfig;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn stats_map(cache: &SharedCache) -> HashMap<String, String> {
    cache.stats().into_iter().collect()
}

/// The shard a byte-string key routes to (same double hash as the backend),
/// so the test can pin each writer's keys to one shard and give the shards
/// deliberately unequal demand — uniform demand would make rebalancing a
/// no-op and the test vacuous.
fn shard_of(key: &str, shards: u64) -> usize {
    (mix64(hash_bytes(key.as_bytes())) % shards) as usize
}

#[test]
fn concurrent_ops_during_rebalance_see_exact_values() {
    let total: u64 = 16 << 20;
    let cache = Arc::new(SharedCache::new(BackendConfig {
        total_bytes: total,
        mode: BackendMode::Cliffhanger,
        shards: 4,
        rebalance: ShardBalanceConfig {
            interval_requests: 512,
            credit_bytes: 64 << 10,
            min_shard_bytes: 512 << 10,
            min_gradient_gap: 2,
            hysteresis: 0.05,
            ..ShardBalanceConfig::default()
        },
        ..BackendConfig::default()
    }));

    let stop = Arc::new(AtomicBool::new(false));
    // A poker thread forces extra rounds on top of the organic ticks, so
    // rounds overlap request traffic as often as possible.
    let poker = {
        let cache = Arc::clone(&cache);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                cache.rebalance_now();
                std::thread::yield_now();
            }
        })
    };

    // Writer t hammers shard t alone. Shard 0 cycles a working set past its
    // 4 MB even share (evictions + shadow hits — the rebalancer's fuel);
    // shard 3 idles, so the gradients stay unequal and budget must move.
    let key_counts = [16_000usize, 6_000, 2_000, 400];
    let writers: Vec<_> = (0..4u32)
        .map(|t| {
            let cache = Arc::clone(&cache);
            let keys: Vec<String> = (0u64..)
                .map(|i| format!("t{t}-k{i}"))
                .filter(|k| shard_of(k, 4) == t as usize)
                .take(key_counts[t as usize])
                .collect();
            std::thread::spawn(move || {
                let mut wrong = 0u64;
                for round in 0..3u32 {
                    for key in &keys {
                        let value = format!("{key}-r{round}-{}", "x".repeat(180));
                        cache.set(key.as_bytes(), t, Bytes::from(value.clone()));
                        // A concurrent eviction (a miss) is legitimate; a
                        // value from another key or a stale round is not
                        // (keys are single-writer, so the set above is the
                        // latest).
                        if let Some((flags, data)) = cache.get(key.as_bytes()) {
                            if flags != t || data != Bytes::from(value) {
                                wrong += 1;
                            }
                        }
                    }
                }
                wrong
            })
        })
        .collect();

    let wrong: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
    stop.store(true, Ordering::Relaxed);
    poker.join().unwrap();

    assert_eq!(wrong, 0, "reads must never observe another key's value");
    let budgets = cache.shard_budgets();
    assert_eq!(
        budgets.iter().sum::<u64>(),
        total,
        "rebalancing must conserve the total budget: {budgets:?}"
    );
    let stats = stats_map(&cache);
    assert!(
        stats["rebalance:transfers"].parse::<u64>().unwrap() > 0,
        "the stress run must actually exercise transfers: {stats:?}"
    );
    // The pressure must have been real for the no-corruption claim to carry
    // weight.
    assert!(stats["evictions"].parse::<u64>().unwrap() > 0);
}

/// One scripted backend operation.
#[derive(Clone, Debug)]
enum Op {
    Set(u8, u8),
    Delete(u8),
    Get(u8),
    Rebalance,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::Set(k, v)),
        any::<u8>().prop_map(Op::Delete),
        any::<u8>().prop_map(Op::Get),
        Just(Op::Rebalance),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// In a no-eviction regime, rebalancing rounds interleaved anywhere in
    /// an op sequence lose nothing: every stored entry stays readable with
    /// its exact bytes.
    #[test]
    fn rebalance_rounds_lose_no_entries(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let total: u64 = 32 << 20;
        let cache = SharedCache::new(BackendConfig {
            total_bytes: total,
            mode: BackendMode::Cliffhanger,
            shards: 4,
            rebalance: ShardBalanceConfig {
                interval_requests: 16,
                min_shard_bytes: 1 << 20,
                ..ShardBalanceConfig::default()
            },
            ..BackendConfig::default()
        });
        let mut model: HashMap<u8, u8> = HashMap::new();
        for op in &ops {
            match *op {
                Op::Set(k, v) => {
                    let stored = cache.set(format!("key-{k}").as_bytes(), v as u32,
                        Bytes::from(vec![v; 32]));
                    prop_assert!(stored, "a 32-byte value must always be admitted");
                    model.insert(k, v);
                }
                Op::Delete(k) => {
                    let was_present = cache.delete(format!("key-{k}").as_bytes());
                    prop_assert_eq!(was_present, model.remove(&k).is_some());
                }
                Op::Get(k) => {
                    let got = cache.get(format!("key-{k}").as_bytes());
                    match model.get(&k) {
                        Some(&v) => {
                            let (flags, data) = got.expect("entry must not vanish");
                            prop_assert_eq!(flags, v as u32);
                            prop_assert_eq!(data, Bytes::from(vec![v; 32]));
                        }
                        None => prop_assert!(got.is_none()),
                    }
                }
                Op::Rebalance => cache.rebalance_now(),
            }
        }
        // Final audit: every modelled entry is still there, bit-exact.
        for (&k, &v) in &model {
            let (flags, data) = cache
                .get(format!("key-{k}").as_bytes())
                .expect("entry must survive all rebalancing rounds");
            prop_assert_eq!(flags, v as u32);
            prop_assert_eq!(data, Bytes::from(vec![v; 32]));
        }
        let stats: HashMap<String, String> = cache.stats().into_iter().collect();
        prop_assert_eq!(&stats["evictions"], "0");
        prop_assert_eq!(
            cache.shard_budgets().iter().sum::<u64>(),
            total
        );
    }
}
