//! The shared cache behind the TCP connections.
//!
//! The wire protocol uses arbitrary byte-string keys while the cache core
//! uses compact 64-bit keys, so the backend hashes the byte key (FNV-1a) and
//! stores the full key alongside the value to verify exact matches on
//! lookup — a hash collision is simply treated as a miss for the colliding
//! key, never as a wrong value.
//!
//! # Sharding
//!
//! The engine is partitioned into N independent shards, each owning a slice
//! of the key space (selected by a second hash of the key, decorrelated from
//! the 64-bit cache key), its own `SlabCache`/`Cliffhanger` instance with an
//! equal share of the memory budget, its own mutex and its own wire-level
//! counters. Requests for different shards never contend; `flush_all` and
//! `stats` fan out across every shard. This is the same shape as
//! Memcached's `-t`-threaded hash table + per-partition slab engines (and
//! pelikan's per-worker storage): the global-mutex design it replaces
//! serialized every request in the workspace's earlier revisions.

use bytes::Bytes;
use cache_core::key::mix64;
use cache_core::store::AllocationMode;
use cache_core::{hash_bytes, CacheStats, Key, PolicyKind, SlabCache, SlabCacheConfig, SlabConfig};
use cliffhanger::{Cliffhanger, CliffhangerConfig};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Which allocation scheme the server runs (Tables 6–7 compare these).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendMode {
    /// Stock Memcached behaviour: first-come-first-serve slab allocation.
    Default,
    /// Hill climbing only (Algorithm 1).
    HillClimbing,
    /// The full Cliffhanger system (both algorithms).
    Cliffhanger,
}

/// Sharding below this per-shard budget hurts more than it helps (the slab
/// classes no longer fit), so auto-detection caps the shard count to keep
/// every shard at least this large.
const MIN_SHARD_BYTES: u64 = 1 << 20;

/// Upper bound on auto-detected shards; explicit configuration may exceed it.
const MAX_AUTO_SHARDS: usize = 64;

/// Returns the number of shards auto-detection would pick for this host:
/// one per available CPU (`num_cpus`-style), capped at [`MAX_AUTO_SHARDS`].
pub fn detect_shards() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_AUTO_SHARDS)
}

/// Backend configuration.
#[derive(Clone, Debug)]
pub struct BackendConfig {
    /// Total cache memory in bytes, split evenly across the shards.
    pub total_bytes: u64,
    /// Which allocation scheme to run.
    pub mode: BackendMode,
    /// Slab-class geometry.
    pub slab: SlabConfig,
    /// Number of independent shards; `0` auto-detects from the host's
    /// available parallelism. Both explicit and detected counts are capped
    /// so every shard keeps at least 1 MB of budget — check
    /// [`SharedCache::shard_count`] (or `resolved_shards`) for the count
    /// actually running.
    pub shards: usize,
}

impl Default for BackendConfig {
    fn default() -> Self {
        BackendConfig {
            total_bytes: 64 << 20,
            mode: BackendMode::Cliffhanger,
            slab: SlabConfig::default(),
            shards: 0,
        }
    }
}

impl BackendConfig {
    /// The shard count this configuration resolves to: the explicit value,
    /// or CPU-count detection when `shards == 0`, in both cases capped so no
    /// shard drops below [`MIN_SHARD_BYTES`].
    pub fn resolved_shards(&self) -> usize {
        let requested = if self.shards > 0 {
            self.shards
        } else {
            detect_shards()
        };
        let budget_cap = (self.total_bytes / MIN_SHARD_BYTES).max(1) as usize;
        requested.clamp(1, budget_cap.max(1))
    }
}

/// A value as stored by the server.
#[derive(Clone, Debug)]
struct StoredValue {
    /// The full byte-string key (for exact-match verification).
    key: Bytes,
    /// Client flags.
    flags: u32,
    /// The payload.
    data: Bytes,
}

impl StoredValue {
    fn new(key: &[u8], flags: u32, data: Bytes) -> StoredValue {
        StoredValue {
            key: Bytes::copy_from_slice(key),
            flags,
            data,
        }
    }
}

enum Inner {
    Plain(Box<SlabCache<StoredValue>>),
    Managed(Box<Cliffhanger<StoredValue>>),
}

impl Inner {
    fn build(config: &BackendConfig, shard_bytes: u64) -> Inner {
        match config.mode {
            BackendMode::Default => Inner::Plain(Box::new(SlabCache::new(SlabCacheConfig {
                slab: config.slab.clone(),
                total_bytes: shard_bytes,
                policy: PolicyKind::Lru,
                mode: AllocationMode::FirstComeFirstServe { page_size: 1 << 20 },
                shadow_bytes: 0,
                tail_region_items: 0,
            }))),
            BackendMode::HillClimbing | BackendMode::Cliffhanger => {
                let cfg = CliffhangerConfig {
                    slab: config.slab.clone(),
                    total_bytes: shard_bytes,
                    enable_hill_climbing: true,
                    enable_cliff_scaling: config.mode == BackendMode::Cliffhanger,
                    ..CliffhangerConfig::default()
                };
                Inner::Managed(Box::new(Cliffhanger::new(cfg)))
            }
        }
    }

    fn value(&self, id: Key) -> Option<&StoredValue> {
        match self {
            Inner::Plain(cache) => cache.value(id),
            Inner::Managed(cache) => cache.value(id),
        }
    }

    /// Whether `key` is resident with an exact byte-string match.
    fn contains_exact(&self, id: Key, key: &[u8]) -> bool {
        self.value(id).map(|s| s.key == key).unwrap_or(false)
    }

    fn set(&mut self, id: Key, size: u64, stored: StoredValue) -> bool {
        match self {
            Inner::Plain(cache) => cache
                .set(id, size, stored)
                .map(|(_, r)| r.admitted)
                .unwrap_or(false),
            Inner::Managed(cache) => cache
                .set(id, size, stored)
                .map(|(_, admitted)| admitted)
                .unwrap_or(false),
        }
    }

    fn stats(&self) -> CacheStats {
        match self {
            Inner::Plain(cache) => cache.stats(),
            Inner::Managed(cache) => cache.stats(),
        }
    }

    fn used_bytes(&self) -> u64 {
        match self {
            Inner::Plain(cache) => cache.used_bytes(),
            Inner::Managed(cache) => cache.used_bytes(),
        }
    }

    fn len(&self) -> usize {
        match self {
            Inner::Plain(cache) => cache.len(),
            Inner::Managed(cache) => cache.len(),
        }
    }
}

/// One partition of the cache: an independent engine plus its counters.
///
/// The wire-level counters live outside the mutex and are updated with
/// relaxed atomics — `stats` never takes a shard lock just to read them.
struct Shard {
    inner: Mutex<Inner>,
    gets: AtomicU64,
    hits: AtomicU64,
    sets: AtomicU64,
    deletes: AtomicU64,
}

impl Shard {
    fn new(config: &BackendConfig, shard_bytes: u64) -> Shard {
        Shard {
            inner: Mutex::new(Inner::build(config, shard_bytes)),
            gets: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            sets: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
        }
    }

    /// Wire counters as a [`CacheStats`]-shaped snapshot (relaxed reads).
    fn wire_counts(&self) -> WireCounts {
        let gets = self.gets.load(Ordering::Relaxed);
        let hits = self.hits.load(Ordering::Relaxed);
        WireCounts {
            gets,
            hits,
            // Relaxed counters can be momentarily skewed between the two
            // loads under concurrent traffic; never underflow.
            misses: gets.saturating_sub(hits),
            sets: self.sets.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
        }
    }
}

/// A snapshot of one shard's wire-level counters.
#[derive(Clone, Copy, Debug, Default)]
struct WireCounts {
    gets: u64,
    hits: u64,
    misses: u64,
    sets: u64,
    deletes: u64,
}

impl WireCounts {
    fn accumulate(&mut self, other: WireCounts) {
        self.gets += other.gets;
        self.hits += other.hits;
        self.misses += other.misses;
        self.sets += other.sets;
        self.deletes += other.deletes;
    }
}

/// A thread-safe, sharded cache shared by every connection.
pub struct SharedCache {
    config: BackendConfig,
    shards: Vec<Shard>,
    shard_bytes: u64,
}

impl SharedCache {
    /// Creates a shared cache with the configured (or detected) shard count.
    pub fn new(config: BackendConfig) -> Self {
        let n = config.resolved_shards();
        let shard_bytes = (config.total_bytes / n as u64).max(1);
        let shards = (0..n).map(|_| Shard::new(&config, shard_bytes)).collect();
        SharedCache {
            config,
            shards,
            shard_bytes,
        }
    }

    fn charge_size(key: &[u8], data: &[u8]) -> u64 {
        (key.len() + data.len()) as u64
    }

    /// Routes a byte-string key to its shard and 64-bit cache key.
    ///
    /// The shard selector re-mixes the FNV hash so that shard membership is
    /// decorrelated from the bits the per-shard engines use.
    fn route(&self, key: &[u8]) -> (&Shard, Key) {
        let hash = hash_bytes(key);
        let index = (mix64(hash) % self.shards.len() as u64) as usize;
        (&self.shards[index], Key::new(hash))
    }

    /// Number of shards the cache is running.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Looks up a key, returning its flags and value on an exact match.
    pub fn get(&self, key: &[u8]) -> Option<(u32, Bytes)> {
        let (shard, id) = self.route(key);
        shard.gets.fetch_add(1, Ordering::Relaxed);
        let mut inner = shard.inner.lock();
        let found = match &mut *inner {
            Inner::Plain(cache) => {
                let hit = cache.get_untyped(id).result.hit;
                if hit {
                    cache.value(id).cloned()
                } else {
                    None
                }
            }
            Inner::Managed(cache) => {
                let (_, event) = cache.get_untyped(id);
                if event.hit {
                    cache.value(id).cloned()
                } else {
                    None
                }
            }
        };
        drop(inner);
        match found {
            Some(stored) if stored.key == key => {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                Some((stored.flags, stored.data))
            }
            _ => None,
        }
    }

    /// Whether a key is resident (exact match), without recording a GET.
    pub fn contains(&self, key: &[u8]) -> bool {
        let (shard, id) = self.route(key);
        shard.inner.lock().contains_exact(id, key)
    }

    /// Stores a key unconditionally. Returns `false` only if the item could
    /// not be admitted (e.g. larger than the largest slab class).
    pub fn set(&self, key: &[u8], flags: u32, data: Bytes) -> bool {
        let (shard, id) = self.route(key);
        shard.sets.fetch_add(1, Ordering::Relaxed);
        let size = Self::charge_size(key, &data);
        let stored = StoredValue::new(key, flags, data);
        shard.inner.lock().set(id, size, stored)
    }

    /// Stores a key only if it is absent (`add`). Atomic with respect to
    /// concurrent writers on the same shard.
    pub fn add(&self, key: &[u8], flags: u32, data: Bytes) -> bool {
        let (shard, id) = self.route(key);
        let size = Self::charge_size(key, &data);
        let stored = StoredValue::new(key, flags, data);
        let mut inner = shard.inner.lock();
        if inner.contains_exact(id, key) {
            return false;
        }
        shard.sets.fetch_add(1, Ordering::Relaxed);
        inner.set(id, size, stored)
    }

    /// Stores a key only if it is present (`replace`). Atomic with respect
    /// to concurrent writers on the same shard.
    pub fn replace(&self, key: &[u8], flags: u32, data: Bytes) -> bool {
        let (shard, id) = self.route(key);
        let size = Self::charge_size(key, &data);
        let stored = StoredValue::new(key, flags, data);
        let mut inner = shard.inner.lock();
        if !inner.contains_exact(id, key) {
            return false;
        }
        shard.sets.fetch_add(1, Ordering::Relaxed);
        inner.set(id, size, stored)
    }

    /// Deletes a key; returns whether it was present.
    pub fn delete(&self, key: &[u8]) -> bool {
        let (shard, id) = self.route(key);
        shard.deletes.fetch_add(1, Ordering::Relaxed);
        let mut inner = shard.inner.lock();
        if !inner.contains_exact(id, key) {
            return false;
        }
        match &mut *inner {
            Inner::Plain(cache) => cache.delete(id),
            Inner::Managed(cache) => cache.delete(id),
        }
    }

    /// Drops every item (`flush_all`), fanning out across the shards.
    pub fn flush(&self) {
        for shard in &self.shards {
            let mut inner = shard.inner.lock();
            *inner = Inner::build(&self.config, self.shard_bytes);
        }
    }

    /// Wire-level and cache-level statistics as `STAT` pairs.
    ///
    /// Aggregated counters come first (summed over every shard), followed by
    /// per-shard breakdowns as `shard:<i>:<name>` lines. Wire counters are
    /// read with relaxed atomics; only the cache-core statistics (bytes,
    /// items, evictions) briefly take each shard's lock in turn.
    pub fn stats(&self) -> Vec<(String, String)> {
        let mut totals = WireCounts::default();
        let mut used = 0u64;
        let mut items = 0usize;
        let mut core_total = CacheStats::default();
        let mut per_shard = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let wire = shard.wire_counts();
            totals.accumulate(wire);
            let (core, shard_used, shard_items) = {
                let inner = shard.inner.lock();
                (inner.stats(), inner.used_bytes(), inner.len())
            };
            used += shard_used;
            items += shard_items;
            core_total += core;
            per_shard.push((wire, core, shard_used, shard_items));
        }

        let mut out = vec![
            ("cmd_get".into(), totals.gets.to_string()),
            ("cmd_set".into(), totals.sets.to_string()),
            ("get_hits".into(), totals.hits.to_string()),
            ("get_misses".into(), totals.misses.to_string()),
            ("cmd_delete".into(), totals.deletes.to_string()),
            ("bytes".into(), used.to_string()),
            ("curr_items".into(), items.to_string()),
            ("evictions".into(), core_total.evictions.to_string()),
            ("limit_maxbytes".into(), self.config.total_bytes.to_string()),
            (
                "allocator".into(),
                format!("{:?}", self.config.mode).to_lowercase(),
            ),
            ("shard_count".into(), self.shards.len().to_string()),
            ("shard_bytes".into(), self.shard_bytes.to_string()),
        ];
        for (i, (wire, core, shard_used, shard_items)) in per_shard.into_iter().enumerate() {
            out.push((format!("shard:{i}:cmd_get"), wire.gets.to_string()));
            out.push((format!("shard:{i}:cmd_set"), wire.sets.to_string()));
            out.push((format!("shard:{i}:get_hits"), wire.hits.to_string()));
            out.push((format!("shard:{i}:get_misses"), wire.misses.to_string()));
            out.push((format!("shard:{i}:cmd_delete"), wire.deletes.to_string()));
            out.push((format!("shard:{i}:bytes"), shard_used.to_string()));
            out.push((format!("shard:{i}:curr_items"), shard_items.to_string()));
            out.push((format!("shard:{i}:evictions"), core.evictions.to_string()));
        }
        out
    }

    /// The backend mode this cache runs.
    pub fn mode(&self) -> BackendMode {
        self.config.mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(mode: BackendMode) -> SharedCache {
        SharedCache::new(BackendConfig {
            total_bytes: 4 << 20,
            mode,
            slab: SlabConfig::default(),
            shards: 2,
        })
    }

    #[test]
    fn set_get_delete_roundtrip_all_modes() {
        for mode in [
            BackendMode::Default,
            BackendMode::HillClimbing,
            BackendMode::Cliffhanger,
        ] {
            let c = cache(mode);
            assert!(c.get(b"missing").is_none());
            assert!(c.set(b"hello", 7, Bytes::from("world")));
            let (flags, value) = c.get(b"hello").expect("must hit");
            assert_eq!(flags, 7);
            assert_eq!(value, Bytes::from("world"));
            assert!(c.delete(b"hello"));
            assert!(!c.delete(b"hello"));
            assert!(c.get(b"hello").is_none());
        }
    }

    #[test]
    fn add_and_replace_semantics() {
        let c = cache(BackendMode::Cliffhanger);
        assert!(c.add(b"k", 0, Bytes::from("1")));
        assert!(!c.add(b"k", 0, Bytes::from("2")), "add must not overwrite");
        assert_eq!(c.get(b"k").unwrap().1, Bytes::from("1"));
        assert!(c.replace(b"k", 0, Bytes::from("3")));
        assert_eq!(c.get(b"k").unwrap().1, Bytes::from("3"));
        assert!(!c.replace(b"absent", 0, Bytes::from("x")));
    }

    #[test]
    fn eviction_under_pressure_keeps_running() {
        let c = SharedCache::new(BackendConfig {
            total_bytes: 256 << 10,
            mode: BackendMode::Cliffhanger,
            slab: SlabConfig::default(),
            shards: 1,
        });
        let payload = Bytes::from(vec![0u8; 1_000]);
        for i in 0..2_000u32 {
            assert!(c.set(format!("key{i}").as_bytes(), 0, payload.clone()));
        }
        // Recent keys should be resident; the cache stays within budget.
        let stats: std::collections::HashMap<String, String> = c.stats().into_iter().collect();
        let bytes: u64 = stats["bytes"].parse().unwrap();
        assert!(bytes <= 256 << 10);
        let hits_recent = (1_990..2_000)
            .filter(|i| c.get(format!("key{i}").as_bytes()).is_some())
            .count();
        assert!(
            hits_recent >= 5,
            "recent keys mostly resident, got {hits_recent}"
        );
    }

    #[test]
    fn flush_clears_everything() {
        let c = cache(BackendMode::Default);
        c.set(b"a", 0, Bytes::from("1"));
        c.flush();
        assert!(c.get(b"a").is_none());
        let stats: std::collections::HashMap<String, String> = c.stats().into_iter().collect();
        assert_eq!(stats["curr_items"], "0");
    }

    #[test]
    fn stats_report_wire_counters() {
        let c = cache(BackendMode::HillClimbing);
        c.set(b"a", 0, Bytes::from("1"));
        c.get(b"a");
        c.get(b"b");
        let stats: std::collections::HashMap<String, String> = c.stats().into_iter().collect();
        assert_eq!(stats["cmd_get"], "2");
        assert_eq!(stats["get_hits"], "1");
        assert_eq!(stats["get_misses"], "1");
        assert_eq!(stats["cmd_set"], "1");
        assert_eq!(stats["allocator"], "hillclimbing");
        assert_eq!(stats["shard_count"], "2");
    }

    #[test]
    fn per_shard_stats_sum_to_aggregates() {
        let c = SharedCache::new(BackendConfig {
            total_bytes: 16 << 20,
            mode: BackendMode::Cliffhanger,
            slab: SlabConfig::default(),
            shards: 4,
        });
        assert_eq!(c.shard_count(), 4);
        for i in 0..500u32 {
            assert!(c.set(format!("key-{i}").as_bytes(), 0, Bytes::from("v")));
        }
        for i in 0..250u32 {
            c.get(format!("key-{i}").as_bytes());
            c.get(format!("absent-{i}").as_bytes());
        }
        let stats: std::collections::HashMap<String, String> = c.stats().into_iter().collect();
        for counter in ["cmd_get", "cmd_set", "get_hits", "curr_items", "bytes"] {
            let total: u64 = stats[counter].parse().unwrap();
            let summed: u64 = (0..4)
                .map(|i| {
                    stats[&format!("shard:{i}:{counter}")]
                        .parse::<u64>()
                        .unwrap()
                })
                .sum();
            assert_eq!(total, summed, "{counter} must equal the per-shard sum");
        }
        // The router must actually spread keys: no shard holds everything.
        let max_shard_items: u64 = (0..4)
            .map(|i| stats[&format!("shard:{i}:curr_items")].parse().unwrap())
            .max()
            .unwrap();
        let total_items: u64 = stats["curr_items"].parse().unwrap();
        assert_eq!(total_items, 500);
        assert!(
            max_shard_items < total_items,
            "keys must be spread across shards (max shard has {max_shard_items})"
        );
    }

    #[test]
    fn shard_auto_detection_is_budget_capped() {
        let tiny = BackendConfig {
            total_bytes: 2 << 20,
            shards: 0,
            ..BackendConfig::default()
        };
        assert!(tiny.resolved_shards() <= 2, "2 MB cannot exceed 2 shards");
        let explicit = BackendConfig {
            total_bytes: 64 << 20,
            shards: 8,
            ..BackendConfig::default()
        };
        assert_eq!(explicit.resolved_shards(), 8);
        let zero = BackendConfig {
            total_bytes: 64 << 20,
            shards: 0,
            ..BackendConfig::default()
        };
        assert!(zero.resolved_shards() >= 1);
    }

    #[test]
    fn shards_are_independent_for_flush_scoped_load() {
        let c = SharedCache::new(BackendConfig {
            total_bytes: 8 << 20,
            mode: BackendMode::Default,
            slab: SlabConfig::default(),
            shards: 8,
        });
        for i in 0..1_000u32 {
            assert!(c.set(format!("ind-{i}").as_bytes(), 0, Bytes::from("x")));
        }
        c.flush();
        for i in 0..1_000u32 {
            assert!(c.get(format!("ind-{i}").as_bytes()).is_none());
        }
    }
}
