//! Regenerates every *table* of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin paper_tables -- [--quick] [--table N]... [--sweep-iters K]
//! ```
//!
//! With no `--table` arguments every table (1–7), the ARC comparison of
//! §5.5 and the headline summary are printed. `--quick` uses a small trace
//! (seconds instead of minutes); the default uses the standard experiment
//! context described in DESIGN.md.

use bench::{table6_latency_overhead, table7_throughput_overhead, OverheadOptions};
use simulator::experiments::allocation::{table1_slab_misses, table2_global_lru, table3_cross_app};
use simulator::experiments::comparison::{
    arc_comparison, compare_apps, figure7_savings, headline_summary,
};
use simulator::experiments::dynamics::table4_ablation;
use simulator::experiments::policies::table5_eviction_schemes;
use simulator::experiments::ExperimentContext;

struct Args {
    quick: bool,
    tables: Vec<u32>,
    sweep_iters: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        tables: Vec::new(),
        sweep_iters: 3,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--table" => {
                if let Some(n) = iter.next().and_then(|v| v.parse().ok()) {
                    args.tables.push(n);
                }
            }
            "--sweep-iters" => {
                if let Some(n) = iter.next().and_then(|v| v.parse().ok()) {
                    args.sweep_iters = n;
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: paper_tables [--quick] [--table N]... [--sweep-iters K]\n\
                     tables: 1 2 3 4 5 6 7; no --table prints everything"
                );
                std::process::exit(0);
            }
            other => eprintln!("ignoring unknown argument {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let all = args.tables.is_empty();
    let wants = |n: u32| all || args.tables.contains(&n);

    let needs_trace = wants(1) || wants(2) || wants(3) || wants(4) || wants(5) || all;
    let ctx = if needs_trace {
        eprintln!(
            "generating the {} Memcachier-like trace...",
            if args.quick { "quick" } else { "standard" }
        );
        Some(if args.quick {
            ExperimentContext::quick()
        } else {
            ExperimentContext::standard()
        })
    } else {
        None
    };

    if let Some(ctx) = &ctx {
        if wants(1) {
            println!("{}\n", table1_slab_misses(ctx));
        }
        if wants(2) {
            println!("{}\n", table2_global_lru(ctx));
        }
        if wants(3) {
            println!("{}\n", table3_cross_app(ctx));
        }
        if wants(4) {
            println!("{}\n", table4_ablation(ctx));
        }
        if wants(5) {
            println!("{}\n", table5_eviction_schemes(ctx));
            println!("{}\n", arc_comparison(ctx, &[3, 4, 5]));
        }
        if all {
            eprintln!("running the 20-application comparison and memory sweep (headline)...");
            let rows = compare_apps(ctx);
            let (_, matches) = figure7_savings(ctx, &rows, args.sweep_iters);
            println!("{}\n", headline_summary(&rows, &matches));
        }
    }

    let overhead_options = if args.quick {
        OverheadOptions::quick()
    } else {
        OverheadOptions::default()
    };
    if wants(6) {
        println!("{}\n", table6_latency_overhead(&overhead_options));
    }
    if wants(7) {
        println!("{}\n", table7_throughput_overhead(&overhead_options));
    }
}
