//! # telemetry
//!
//! Shared observability primitives for the workspace, used on both sides of
//! the wire:
//!
//! * [`histogram`] — the HDR-style log-linear latency [`Histogram`] and its
//!   JSON-ready [`LatencySummary`]. The load generator records client-side
//!   request latencies into it; the server's event loops record per-loop,
//!   per-command-class *service* times into it. One recorder, one
//!   quantisation model, directly comparable numbers.
//! * [`journal`] — the control-plane flight recorder: a fixed-size ring
//!   [`Journal`] of structured [`JournalEvent`]s (budget transfers with the
//!   gradients that justified them, carve-outs, flushes, idle reaps, shed
//!   connections, sampled slow ops), each stamped with a monotonic sequence
//!   number and timestamp.
//! * [`timeseries`] — a bounded ring of interval buckets over cumulative
//!   per-tenant counters ([`TimeSeries`]), recorded per event loop and
//!   merged at snapshot time, from which the stats document derives
//!   windowed ops/s, hit-rate and eviction rates (trajectory, not totals).
//!
//! All are deliberately dependency-light (serde only) so every crate in
//! the workspace can use them without pulling server or loadgen machinery.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod histogram;
pub mod journal;
pub mod timeseries;

pub use histogram::{Histogram, LatencySummary};
pub use journal::{EventKind, Journal, JournalEvent};
pub use timeseries::{ColumnRates, SeriesBucket, SeriesRates, SeriesSample, TimeSeries};
