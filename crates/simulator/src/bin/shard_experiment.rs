//! Hit rate vs shard count at fixed total memory, rebalancer off and on.
//!
//! Run with: `cargo run --release -p simulator --bin shard_experiment`
//!
//! Prints the experiment JSON (`cliffhanger-shard-experiment/v1`) on stdout
//! and the human-readable table on stderr.
//!
//! `--smoke` runs the down-scaled CI variant and *asserts* the experiment's
//! promises — the rebalancer never loses to the static split, and at 8
//! shards it lands within one point of the unsharded controller — exiting
//! non-zero on violation (the `hit-rate-smoke` CI job gates on this).

use simulator::experiments::sharding::{shard_count_experiment, ShardingOptions};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut requests: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--requests" => {
                requests = args.get(i + 1).and_then(|s| s.parse().ok());
                if requests.is_none() {
                    eprintln!("--requests needs a number");
                    return ExitCode::FAILURE;
                }
                i += 1;
            }
            other => {
                eprintln!(
                    "unknown flag {other:?}\n\
                     usage: shard_experiment [--smoke] [--requests <n>]\n\
                     table on stderr, cliffhanger-shard-experiment/v1 JSON on stdout"
                );
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let mut opts = if smoke {
        ShardingOptions::smoke()
    } else {
        ShardingOptions::standard()
    };
    if let Some(requests) = requests {
        opts.requests = requests;
    }

    let result = shard_count_experiment(&opts);
    eprint!("{}", result.table());
    println!("{}", result.to_json());

    if smoke {
        let baseline = result
            .unsharded_hit_rate()
            .expect("smoke options include the 1-shard point");
        for p in result.points.iter().filter(|p| p.shards > 1) {
            if p.rebalanced_hit_rate + 1e-9 < p.static_hit_rate {
                eprintln!(
                    "FAIL: rebalancer-on hit rate {:.4} below rebalancer-off {:.4} at {} shards",
                    p.rebalanced_hit_rate, p.static_hit_rate, p.shards
                );
                return ExitCode::FAILURE;
            }
            if p.shards == 8 && p.rebalanced_hit_rate < baseline - 0.01 {
                eprintln!(
                    "FAIL: 8-shard rebalanced hit rate {:.4} more than 1 point below the \
                     unsharded controller's {:.4}",
                    p.rebalanced_hit_rate, baseline
                );
                return ExitCode::FAILURE;
            }
        }
        eprintln!("hit-rate smoke: ok");
    }
    ExitCode::SUCCESS
}
