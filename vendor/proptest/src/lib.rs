//! Minimal offline stand-in for [`proptest`](https://docs.rs/proptest).
//!
//! Supports the subset the workspace's property suites use: the
//! [`proptest!`] macro with `arg in strategy` bindings and an optional
//! `#![proptest_config(...)]` header, range / tuple / `Just` / `prop_map` /
//! `prop_oneof!` strategies, `any::<T>()`, `prop::collection::vec`,
//! `prop::option::of`, and the `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! seeds: generation is deterministic (fixed seed per test function), so a
//! failure reproduces by re-running the test. That trade keeps the shim
//! tiny while preserving the model-checking value of the suites.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case (with the generated inputs' case index) rather than panicking
/// directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                left,
                right,
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Builds a strategy choosing uniformly between the given strategies, all
/// of which must produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(::std::boxed::Box::new($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                let mut __rng = $crate::test_runner::TestRng::deterministic();
                for __case in 0..__config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strategy), &mut __rng);
                    )*
                    let __result: ::std::result::Result<(), ::std::string::String> =
                        (move || {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__msg) = __result {
                        ::std::panic!(
                            "proptest case {}/{} failed: {}",
                            __case + 1,
                            __config.cases,
                            __msg
                        );
                    }
                }
            }
        )*
    };
}

/// The conventional glob-import module, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Namespace alias so `prop::collection::vec` / `prop::option::of`
    /// resolve as they do with real proptest.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn generated_values_respect_strategies(
            small in 1u8..=9,
            len in prop::collection::vec(any::<u16>(), 2..5),
            pair in (0usize..4, 10u64..20),
            maybe in prop::option::of(5i64..6),
        ) {
            prop_assert!((1..=9).contains(&small));
            prop_assert!(len.len() >= 2 && len.len() < 5);
            prop_assert!(pair.0 < 4);
            prop_assert_eq!(pair.1 / 10, 1);
            if let Some(v) = maybe {
                prop_assert_eq!(v, 5);
            }
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![
                (1u32..10).prop_map(|x| x * 2),
                Just(0u32),
            ],
        ) {
            prop_assert!(v == 0 || (v % 2 == 0 && v < 20));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_reports_the_case() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(3))]
            #[allow(unused)]
            fn always_fails(x in 0u8..10) {
                prop_assert!(x % 10 == 99, "x was {}", x);
            }
        }
        always_fails();
    }
}
