//! The single `stats` renderer behind both backends, in three expositions.
//!
//! The embedded [`crate::backend::SharedCache`] and the server's
//! shared-nothing data plane assemble a [`StatsSnapshot`] from their own
//! worlds (engine locks there, loop-snapshot messages here) and render it
//! through [`render_stats`], so the stat key set and ordering cannot drift
//! between the two — the committed benchmark baselines and the CI smoke
//! validators parse these keys by name.
//!
//! The data plane additionally renders the same state machine-readably:
//! [`build_document`] assembles one versioned [`StatsDocument`]
//! (`cliffhanger-stats/v1`) carrying per-loop service-time quantiles and
//! the flight-recorder journal, and [`render_json`] / [`render_prom`]
//! serialise it as JSON or Prometheus text exposition. Both formats come
//! from the *same* document, so they cannot disagree.

use crate::backend::BackendMode;
use crate::reactor::ConnTelemetry;
use cache_core::CacheStats;
use profiler::MrcSnapshot;
use serde::Serialize;
use telemetry::{
    EventKind, Histogram, Journal, JournalEvent, LatencySummary, SeriesRates, TimeSeries,
};

/// The version tag of the machine-readable stats document.
pub(crate) const STATS_SCHEMA: &str = "cliffhanger-stats/v1";

/// A snapshot of wire-level counters for one engine (or an aggregate).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct WireCounts {
    pub(crate) gets: u64,
    pub(crate) hits: u64,
    pub(crate) misses: u64,
    pub(crate) sets: u64,
    pub(crate) deletes: u64,
}

impl WireCounts {
    pub(crate) fn accumulate(&mut self, other: WireCounts) {
        self.gets += other.gets;
        self.hits += other.hits;
        self.misses += other.misses;
        self.sets += other.sets;
        self.deletes += other.deletes;
    }
}

/// Everything `stats` reports about one (shard, tenant) engine.
#[derive(Clone, Default)]
pub(crate) struct EngineStat {
    pub(crate) wire: WireCounts,
    pub(crate) core: CacheStats,
    pub(crate) used: u64,
    pub(crate) items: usize,
}

/// Round counters of the two balancing levels.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct BalanceCounters {
    pub(crate) rebalance_enabled: bool,
    pub(crate) rebalance_runs: u64,
    pub(crate) rebalance_transfers: u64,
    pub(crate) rebalance_bytes: u64,
    pub(crate) arbiter_enabled: bool,
    pub(crate) arbiter_runs: u64,
    pub(crate) arbiter_transfers: u64,
    pub(crate) arbiter_bytes: u64,
}

/// The backend-independent inputs of one `stats` report.
pub(crate) struct StatsSnapshot {
    pub(crate) total_bytes: u64,
    pub(crate) mode: BackendMode,
    pub(crate) requested_shards: usize,
    /// Seconds since the backend was constructed.
    pub(crate) uptime_s: u64,
    /// Engine stats indexed `[shard][tenant]`.
    pub(crate) cells: Vec<Vec<EngineStat>>,
    pub(crate) tenant_names: Vec<String>,
    pub(crate) tenant_budgets: Vec<u64>,
    pub(crate) shard_budgets: Vec<u64>,
    pub(crate) balance: BalanceCounters,
}

/// Per-event-loop counters of the shared-nothing data plane, reported only
/// by the server (`None` for the embedded backend).
pub(crate) struct PlaneStats {
    /// Owning event loop per shard index.
    pub(crate) owner_of: Vec<usize>,
    /// Per loop: (data ops executed for its own connections, data ops
    /// executed on behalf of another loop, data ops it forwarded away).
    pub(crate) per_loop: Vec<(u64, u64, u64)>,
    /// Admin commands forwarded to the control thread.
    pub(crate) admin_msgs: u64,
    /// The configured idle reaping timeout in milliseconds (0 = disabled).
    pub(crate) idle_timeout_ms: u64,
    /// Ops over the slow-op threshold, summed across loops.
    pub(crate) slow_ops: u64,
}

/// One event loop's service-time telemetry, as merged by the control
/// thread from the loop's snapshot.
#[derive(Clone, Default)]
pub(crate) struct LoopTelemetry {
    /// Service times of ops the loop ran for its own connections (ns).
    pub(crate) local: Histogram,
    /// Queue + service times of ops forwarded to the loop (ns).
    pub(crate) remote: Histogram,
    /// Ops over the slow-op threshold on this loop.
    pub(crate) slow_ops: u64,
}

/// Sums a snapshot's `[shard][tenant]` engine cells into server-wide,
/// per-tenant and per-shard aggregates — the one accumulation every
/// exposition format renders from.
struct Rollup {
    totals: WireCounts,
    core_total: CacheStats,
    used: u64,
    items: usize,
    tenant_wire: Vec<WireCounts>,
    tenant_core: Vec<CacheStats>,
    tenant_used: Vec<u64>,
    tenant_items: Vec<usize>,
    shard_wire: Vec<WireCounts>,
    shard_core: Vec<CacheStats>,
    shard_used: Vec<u64>,
    shard_items: Vec<usize>,
}

fn rollup(snap: &StatsSnapshot) -> Rollup {
    let ns = snap.cells.len();
    let nt = snap.tenant_names.len();
    let mut r = Rollup {
        totals: WireCounts::default(),
        core_total: CacheStats::default(),
        used: 0,
        items: 0,
        tenant_wire: vec![WireCounts::default(); nt],
        tenant_core: vec![CacheStats::default(); nt],
        tenant_used: vec![0u64; nt],
        tenant_items: vec![0usize; nt],
        shard_wire: vec![WireCounts::default(); ns],
        shard_core: vec![CacheStats::default(); ns],
        shard_used: vec![0u64; ns],
        shard_items: vec![0usize; ns],
    };
    for (s, cells) in snap.cells.iter().enumerate() {
        for (t, cell) in cells.iter().enumerate().take(nt) {
            r.totals.accumulate(cell.wire);
            r.core_total += cell.core;
            r.used += cell.used;
            r.items += cell.items;
            r.tenant_wire[t].accumulate(cell.wire);
            r.tenant_core[t] += cell.core;
            r.tenant_used[t] += cell.used;
            r.tenant_items[t] += cell.items;
            r.shard_wire[s].accumulate(cell.wire);
            r.shard_core[s] += cell.core;
            r.shard_used[s] += cell.used;
            r.shard_items[s] += cell.items;
        }
    }
    r
}

/// Renders a snapshot as the `STAT` key/value list: aggregated counters,
/// allocation-hierarchy counters, the optional connection section, then
/// per-tenant and per-shard breakdowns, then the optional data-plane
/// section.
pub(crate) fn render_stats(
    snap: &StatsSnapshot,
    conns: Option<&ConnTelemetry>,
    plane: Option<&PlaneStats>,
) -> Vec<(String, String)> {
    let ns = snap.cells.len();
    let nt = snap.tenant_names.len();
    let Rollup {
        totals,
        core_total,
        used,
        items,
        tenant_wire,
        tenant_core,
        tenant_used,
        tenant_items,
        shard_wire,
        shard_core,
        shard_used,
        shard_items,
    } = rollup(snap);

    let mut out = vec![
        ("cmd_get".into(), totals.gets.to_string()),
        ("cmd_set".into(), totals.sets.to_string()),
        ("get_hits".into(), totals.hits.to_string()),
        ("get_misses".into(), totals.misses.to_string()),
        ("cmd_delete".into(), totals.deletes.to_string()),
        ("bytes".into(), used.to_string()),
        ("curr_items".into(), items.to_string()),
        ("evictions".into(), core_total.evictions.to_string()),
        ("uptime".into(), snap.uptime_s.to_string()),
        ("limit_maxbytes".into(), snap.total_bytes.to_string()),
        (
            "allocator".into(),
            format!("{:?}", snap.mode).to_lowercase(),
        ),
        ("shard_count".into(), ns.to_string()),
        ("shards_requested".into(), snap.requested_shards.to_string()),
        (
            "shard_bytes".into(),
            (snap.total_bytes / ns.max(1) as u64).to_string(),
        ),
        ("tenant_count".into(), nt.to_string()),
        (
            "rebalance:enabled".into(),
            (snap.balance.rebalance_enabled as u8).to_string(),
        ),
        (
            "rebalance:runs".into(),
            snap.balance.rebalance_runs.to_string(),
        ),
        (
            "rebalance:transfers".into(),
            snap.balance.rebalance_transfers.to_string(),
        ),
        (
            "rebalance:bytes_moved".into(),
            snap.balance.rebalance_bytes.to_string(),
        ),
        (
            "arbiter:enabled".into(),
            (snap.balance.arbiter_enabled as u8).to_string(),
        ),
        ("arbiter:runs".into(), snap.balance.arbiter_runs.to_string()),
        (
            "arbiter:transfers".into(),
            snap.balance.arbiter_transfers.to_string(),
        ),
        (
            "arbiter:bytes_moved".into(),
            snap.balance.arbiter_bytes.to_string(),
        ),
    ];
    if let Some(conns) = conns {
        out.push(("curr_connections".into(), conns.curr().to_string()));
        out.push(("total_connections".into(), conns.total().to_string()));
        out.push(("rejected_connections".into(), conns.rejected().to_string()));
        out.push((
            "max_connections".into(),
            conns.max_connections().to_string(),
        ));
        for i in 0..conns.loops() {
            out.push((format!("conns:loop:{i}"), conns.loop_curr(i).to_string()));
        }
        out.push((
            "idle_closed_connections".into(),
            conns.idle_closed().to_string(),
        ));
    }
    for t in 0..nt {
        let name = &snap.tenant_names[t];
        let wire = tenant_wire[t];
        out.push((format!("tenant:{name}:cmd_get"), wire.gets.to_string()));
        out.push((format!("tenant:{name}:cmd_set"), wire.sets.to_string()));
        out.push((format!("tenant:{name}:get_hits"), wire.hits.to_string()));
        out.push((format!("tenant:{name}:get_misses"), wire.misses.to_string()));
        out.push((
            format!("tenant:{name}:cmd_delete"),
            wire.deletes.to_string(),
        ));
        out.push((format!("tenant:{name}:bytes"), tenant_used[t].to_string()));
        out.push((
            format!("tenant:{name}:curr_items"),
            tenant_items[t].to_string(),
        ));
        out.push((
            format!("tenant:{name}:evictions"),
            tenant_core[t].evictions.to_string(),
        ));
        out.push((
            format!("tenant:{name}:budget"),
            snap.tenant_budgets[t].to_string(),
        ));
        out.push((
            format!("tenant:{name}:shadow_hits"),
            tenant_core[t].shadow_hits.to_string(),
        ));
    }
    for s in 0..ns {
        let wire = shard_wire[s];
        out.push((format!("shard:{s}:cmd_get"), wire.gets.to_string()));
        out.push((format!("shard:{s}:cmd_set"), wire.sets.to_string()));
        out.push((format!("shard:{s}:get_hits"), wire.hits.to_string()));
        out.push((format!("shard:{s}:get_misses"), wire.misses.to_string()));
        out.push((format!("shard:{s}:cmd_delete"), wire.deletes.to_string()));
        out.push((format!("shard:{s}:bytes"), shard_used[s].to_string()));
        out.push((format!("shard:{s}:curr_items"), shard_items[s].to_string()));
        out.push((
            format!("shard:{s}:evictions"),
            shard_core[s].evictions.to_string(),
        ));
        out.push((
            format!("shard:{s}:budget"),
            snap.shard_budgets[s].to_string(),
        ));
        out.push((
            format!("shard:{s}:shadow_hits"),
            shard_core[s].shadow_hits.to_string(),
        ));
    }
    if let Some(plane) = plane {
        let local: u64 = plane.per_loop.iter().map(|l| l.0).sum();
        let remote: u64 = plane.per_loop.iter().map(|l| l.1).sum();
        out.push(("plane:event_loops".into(), plane.per_loop.len().to_string()));
        out.push(("plane:local_ops".into(), local.to_string()));
        out.push(("plane:remote_ops".into(), remote.to_string()));
        out.push(("plane:admin_msgs".into(), plane.admin_msgs.to_string()));
        out.push((
            "plane:idle_timeout_ms".into(),
            plane.idle_timeout_ms.to_string(),
        ));
        out.push(("plane:slow_ops".into(), plane.slow_ops.to_string()));
        for (i, (local_ops, remote_in, remote_out)) in plane.per_loop.iter().enumerate() {
            out.push((format!("loop:{i}:local_ops"), local_ops.to_string()));
            out.push((format!("loop:{i}:remote_in"), remote_in.to_string()));
            out.push((format!("loop:{i}:remote_out"), remote_out.to_string()));
        }
        for (s, owner) in plane.owner_of.iter().enumerate() {
            out.push((format!("shard:{s}:owner_loop"), owner.to_string()));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// The machine-readable exposition: one versioned document, two renderings.
// ---------------------------------------------------------------------------

/// Server-wide wire counters.
#[derive(Serialize)]
pub(crate) struct CountersDoc {
    pub(crate) cmd_get: u64,
    pub(crate) cmd_set: u64,
    pub(crate) get_hits: u64,
    pub(crate) get_misses: u64,
    pub(crate) cmd_delete: u64,
    pub(crate) bytes: u64,
    pub(crate) curr_items: u64,
    pub(crate) evictions: u64,
    pub(crate) slow_ops: u64,
}

/// Static capacity and topology facts.
#[derive(Serialize)]
pub(crate) struct CapacityDoc {
    pub(crate) limit_maxbytes: u64,
    pub(crate) allocator: String,
    pub(crate) shard_count: usize,
    pub(crate) shards_requested: usize,
    pub(crate) tenant_count: usize,
    pub(crate) event_loops: usize,
}

/// Round counters of the two balancing levels.
#[derive(Serialize)]
pub(crate) struct BalanceDoc {
    pub(crate) rebalance_enabled: bool,
    pub(crate) rebalance_runs: u64,
    pub(crate) rebalance_transfers: u64,
    pub(crate) rebalance_bytes_moved: u64,
    pub(crate) arbiter_enabled: bool,
    pub(crate) arbiter_runs: u64,
    pub(crate) arbiter_transfers: u64,
    pub(crate) arbiter_bytes_moved: u64,
}

/// The accept gate's connection counters.
#[derive(Serialize)]
pub(crate) struct ConnectionsDoc {
    pub(crate) curr: u64,
    pub(crate) total: u64,
    pub(crate) rejected: u64,
    pub(crate) idle_closed: u64,
    pub(crate) max: u64,
    pub(crate) per_loop: Vec<u64>,
}

/// One event loop's ops and service-time quantiles.
#[derive(Serialize)]
pub(crate) struct LoopDoc {
    pub(crate) index: usize,
    pub(crate) local_ops: u64,
    pub(crate) remote_in: u64,
    pub(crate) remote_out: u64,
    pub(crate) slow_ops: u64,
    pub(crate) local_latency: LatencySummary,
    pub(crate) remote_latency: LatencySummary,
}

/// One tenant's aggregated counters.
#[derive(Serialize)]
pub(crate) struct TenantDoc {
    pub(crate) name: String,
    pub(crate) cmd_get: u64,
    pub(crate) cmd_set: u64,
    pub(crate) get_hits: u64,
    pub(crate) get_misses: u64,
    pub(crate) cmd_delete: u64,
    pub(crate) bytes: u64,
    pub(crate) curr_items: u64,
    pub(crate) evictions: u64,
    pub(crate) budget: u64,
    pub(crate) shadow_hits: u64,
}

/// One shard's aggregated counters and ownership.
#[derive(Serialize)]
pub(crate) struct ShardDoc {
    pub(crate) index: usize,
    pub(crate) owner_loop: usize,
    pub(crate) cmd_get: u64,
    pub(crate) get_hits: u64,
    pub(crate) bytes: u64,
    pub(crate) curr_items: u64,
    pub(crate) evictions: u64,
    pub(crate) budget: u64,
    pub(crate) shadow_hits: u64,
}

/// Data-plane totals and the control thread's own service times.
#[derive(Serialize)]
pub(crate) struct PlaneDoc {
    pub(crate) local_ops: u64,
    pub(crate) remote_ops: u64,
    pub(crate) admin_msgs: u64,
    pub(crate) idle_timeout_ms: u64,
    pub(crate) admin_latency: LatencySummary,
}

/// Server-wide service-time quantiles merged across every loop.
#[derive(Serialize)]
pub(crate) struct ServiceLatencyDoc {
    pub(crate) local: LatencySummary,
    pub(crate) remote: LatencySummary,
}

/// The flight recorder: ring facts plus the retained events, oldest first.
#[derive(Serialize)]
pub(crate) struct JournalDoc {
    pub(crate) capacity: usize,
    pub(crate) next_seq: u64,
    pub(crate) dropped: u64,
    pub(crate) events: Vec<JournalEvent>,
}

/// One probed point of a tenant's live miss-ratio curve.
#[derive(Serialize)]
pub(crate) struct MrcPointDoc {
    /// The probe as a multiple of the tenant's current budget.
    pub(crate) scale: f64,
    /// The probe in items (`scale × budget_items`).
    pub(crate) items: u64,
    /// The estimated hit rate an LRU allocation of `items` would achieve.
    pub(crate) hit_rate: f64,
}

/// One tenant's live sampled miss-ratio curve.
#[derive(Serialize)]
pub(crate) struct MrcTenantDoc {
    pub(crate) name: String,
    /// GETs offered to the estimator since boot (sampled or not).
    pub(crate) offered: u64,
    /// GETs that passed the spatial sampling gate.
    pub(crate) sampled: u64,
    /// Distinct sampled keys currently tracked, summed across loops.
    pub(crate) tracked_keys: u64,
    /// The tenant's current budget expressed in items (budget bytes over
    /// the tenant's mean live item footprint); 0 while the tenant is empty.
    pub(crate) budget_items: u64,
    /// Curve points at 0.25×/0.5×/1×/2×/4× the current budget (empty while
    /// `budget_items` is 0).
    pub(crate) points: Vec<MrcPointDoc>,
}

/// The live MRC observability section: per-tenant sampled hit-rate curves.
#[derive(Serialize)]
pub(crate) struct MrcDoc {
    /// Spatial sampling shift: each estimator profiles keys at rate
    /// `R = 2^-sample_shift`.
    pub(crate) sample_shift: u32,
    /// `R` as a fraction.
    pub(crate) sample_rate: f64,
    pub(crate) tenants: Vec<MrcTenantDoc>,
}

/// One hot-key tally: a key and its sampled windowed op count.
#[derive(Serialize, Clone)]
pub(crate) struct HotKeyEntryDoc {
    pub(crate) app: String,
    pub(crate) key: String,
    pub(crate) ops: u64,
}

/// The hot-key subsystem section: the merged sampled tracker window, the
/// currently promoted set and the mitigation counters. Present only when
/// hot-key detection is enabled, like `mrc`.
#[derive(Serialize, Clone)]
pub(crate) struct HotKeysDoc {
    /// The hottest sampled keys, merged across loops, hottest first.
    pub(crate) tracked: Vec<HotKeyEntryDoc>,
    /// Keys currently promoted into per-loop replica caches (`ops` is the
    /// merged count at the last promotion round).
    pub(crate) promoted: Vec<HotKeyEntryDoc>,
    pub(crate) promotions: u64,
    pub(crate) demotions: u64,
    /// Promotion rounds the control thread has run.
    pub(crate) rounds: u64,
    /// GETs served from a replica cache (never crossed a loop).
    pub(crate) replica_hits: u64,
    /// Replica fills accepted by non-owning loops.
    pub(crate) replica_fills: u64,
    /// Invalidation broadcasts received by non-owning loops.
    pub(crate) invalidations: u64,
}

/// One tenant's windowed rates inside one history window.
#[derive(Serialize)]
pub(crate) struct HistoryTenantDoc {
    pub(crate) name: String,
    pub(crate) ops_per_sec: f64,
    /// `null` when the window saw no GETs for the tenant.
    pub(crate) hit_rate: Option<f64>,
    pub(crate) evictions_per_sec: f64,
}

/// One differenced interval of the stats time series.
#[derive(Serialize)]
pub(crate) struct HistoryWindowDoc {
    /// Wall-clock end of the window in unix microseconds.
    pub(crate) unix_us: u64,
    /// Window length in seconds (> interval when intervals were skipped).
    pub(crate) seconds: f64,
    pub(crate) tenants: Vec<HistoryTenantDoc>,
}

/// The stats time series: the last N intervals as per-tenant rates.
#[derive(Serialize)]
pub(crate) struct HistoryDoc {
    pub(crate) interval_us: u64,
    /// Oldest window first.
    pub(crate) windows: Vec<HistoryWindowDoc>,
}

/// One budget transfer joined against the realized hit-rate trajectory.
#[derive(Serialize)]
pub(crate) struct AllocatorTransferDoc {
    pub(crate) seq: u64,
    pub(crate) at_unix_us: u64,
    /// `"shard"` (cross-shard rebalance) or `"tenant"` (arbiter).
    pub(crate) kind: String,
    /// The tenant whose hit rate the transfer was meant to raise.
    pub(crate) tenant: String,
    /// The donor tenant (tenant transfers only).
    pub(crate) donor: Option<String>,
    pub(crate) bytes: u64,
    /// The smoothed shadow-hit gradients that justified the transfer.
    pub(crate) from_gradient: f64,
    pub(crate) to_gradient: f64,
    /// The beneficiary's hit rate over the history window containing the
    /// transfer (`null` when the window is gone or saw no GETs).
    pub(crate) hit_rate_before: Option<f64>,
    /// The beneficiary's hit rate over the following window.
    pub(crate) hit_rate_after: Option<f64>,
    /// `hit_rate_after - hit_rate_before` when both exist: the *realized*
    /// effect to hold against the gradients' prediction.
    pub(crate) realized_delta: Option<f64>,
}

/// Allocator introspection: predicted-vs-realized for every journalled
/// budget transfer still inside the history horizon.
#[derive(Serialize)]
pub(crate) struct AllocatorDoc {
    /// The hit-rate comparison window (one history interval).
    pub(crate) window_us: u64,
    pub(crate) transfers: Vec<AllocatorTransferDoc>,
}

/// What the control thread observed beyond the point-in-time snapshot:
/// wall-clock anchoring, the merged per-tenant MRC estimators and the
/// merged stats time series. Server-only (the embedded backend renders
/// text stats, never the document).
pub(crate) struct ObservedPlane {
    /// Unix microseconds at plane boot (anchors journal event times).
    pub(crate) server_start_unix_us: u64,
    /// Unix microseconds when this snapshot was taken.
    pub(crate) snapshot_unix_us: u64,
    /// The configured sampling shift; `None` when live MRC is disabled.
    pub(crate) mrc_shift: Option<u32>,
    /// Merged per-tenant MRC snapshots, aligned with the tenant table.
    pub(crate) mrc: Vec<MrcSnapshot>,
    /// The merged per-loop stats time series.
    pub(crate) history: TimeSeries,
    /// The assembled hot-key section (`None` when the feature is off).
    pub(crate) hot_keys: Option<HotKeysDoc>,
}

/// The versioned `cliffhanger-stats/v1` document behind `stats json` and
/// `stats prom`. Additive evolution only: consumers pin `schema` and
/// ignore fields they do not know.
#[derive(Serialize)]
pub(crate) struct StatsDocument {
    pub(crate) schema: String,
    /// Unix microseconds at server boot.
    pub(crate) server_start: u64,
    /// Unix microseconds when this snapshot was taken.
    pub(crate) snapshot_unix_us: u64,
    /// Seconds since boot.
    pub(crate) uptime_s: u64,
    pub(crate) counters: CountersDoc,
    pub(crate) capacity: CapacityDoc,
    pub(crate) balance: BalanceDoc,
    pub(crate) connections: Option<ConnectionsDoc>,
    pub(crate) service_latency: ServiceLatencyDoc,
    pub(crate) loops: Vec<LoopDoc>,
    pub(crate) tenants: Vec<TenantDoc>,
    pub(crate) shards: Vec<ShardDoc>,
    pub(crate) plane: PlaneDoc,
    pub(crate) journal: JournalDoc,
    /// Live sampled miss-ratio curves (absent when profiling is disabled).
    pub(crate) mrc: Option<MrcDoc>,
    /// Hot-key detection and mitigation (absent when the feature is off).
    pub(crate) hot_keys: Option<HotKeysDoc>,
    /// Windowed per-tenant rate history.
    pub(crate) history: HistoryDoc,
    /// Predicted-vs-realized join of journalled budget transfers.
    pub(crate) allocator: AllocatorDoc,
}

/// The budget-multiple scales every tenant's live MRC is probed at.
const MRC_SCALES: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 4.0];

/// Builds the `mrc` section from the merged per-tenant estimator snapshots.
fn build_mrc(snap: &StatsSnapshot, r: &Rollup, observed: &ObservedPlane) -> Option<MrcDoc> {
    let shift = observed.mrc_shift?;
    let tenants = snap
        .tenant_names
        .iter()
        .enumerate()
        .map(|(t, name)| {
            let merged = observed.mrc.get(t).cloned().unwrap_or_default();
            // The tenant's budget in items: budget bytes over the mean live
            // item footprint. No items yet means no meaningful probe sizes.
            let budget_items = if r.tenant_items[t] > 0 {
                let item_bytes = (r.tenant_used[t] / r.tenant_items[t] as u64).max(1);
                snap.tenant_budgets[t] / item_bytes
            } else {
                0
            };
            let curve = merged.to_curve();
            let points = if budget_items > 0 {
                MRC_SCALES
                    .iter()
                    .map(|&scale| {
                        let items = ((budget_items as f64 * scale).round() as u64).max(1);
                        MrcPointDoc {
                            scale,
                            items,
                            hit_rate: curve.hit_rate_at(items),
                        }
                    })
                    .collect()
            } else {
                Vec::new()
            };
            MrcTenantDoc {
                name: name.clone(),
                offered: merged.offered,
                sampled: merged.sampled,
                tracked_keys: merged.tracked_keys,
                budget_items,
                points,
            }
        })
        .collect();
    Some(MrcDoc {
        sample_shift: shift,
        sample_rate: 1.0 / (1u64 << shift) as f64,
        tenants,
    })
}

/// Builds the `history` section by differencing the merged time series.
fn build_history(snap: &StatsSnapshot, observed: &ObservedPlane) -> HistoryDoc {
    let interval_us = observed.history.interval_us();
    let windows = observed
        .history
        .rates()
        .iter()
        .map(|window| HistoryWindowDoc {
            unix_us: observed.server_start_unix_us + (window.index + 1) * interval_us,
            seconds: window.seconds,
            tenants: window
                .columns
                .iter()
                .enumerate()
                .filter_map(|(t, col)| {
                    snap.tenant_names.get(t).map(|name| HistoryTenantDoc {
                        name: name.clone(),
                        ops_per_sec: col.ops_per_sec,
                        hit_rate: col.hit_rate,
                        evictions_per_sec: col.evictions_per_sec,
                    })
                })
                .collect(),
        })
        .collect();
    HistoryDoc {
        interval_us,
        windows,
    }
}

/// A tenant's hit rate over the newest history window whose index satisfies
/// `pick` (used to read "the window containing t" and "the window after t").
fn tenant_hit_rate_where(
    rates: &[SeriesRates],
    tenant: usize,
    pick: impl Fn(u64) -> bool,
) -> Option<f64> {
    rates
        .iter()
        .rev()
        .find(|w| pick(w.index))
        .and_then(|w| w.columns.get(tenant))
        .and_then(|col| col.hit_rate)
}

/// Builds the `allocator` section: every journalled budget transfer joined
/// against the beneficiary tenant's realized hit rate before and after.
fn build_allocator(
    snap: &StatsSnapshot,
    observed: &ObservedPlane,
    journal: &Journal,
) -> AllocatorDoc {
    let interval_us = observed.history.interval_us();
    let rates = observed.history.rates();
    let tenant_index = |name: &str| snap.tenant_names.iter().position(|n| n == name);
    let transfers = journal
        .snapshot()
        .into_iter()
        .filter_map(|event| {
            let (kind, tenant, donor, bytes, from_gradient, to_gradient) = match &event.kind {
                EventKind::ShardTransfer {
                    tenant,
                    bytes,
                    from_gradient,
                    to_gradient,
                    ..
                } => (
                    "shard",
                    tenant.clone(),
                    None,
                    *bytes,
                    *from_gradient,
                    *to_gradient,
                ),
                EventKind::TenantTransfer {
                    from_tenant,
                    to_tenant,
                    bytes,
                    from_gradient,
                    to_gradient,
                } => (
                    "tenant",
                    to_tenant.clone(),
                    Some(from_tenant.clone()),
                    *bytes,
                    *from_gradient,
                    *to_gradient,
                ),
                _ => return None,
            };
            // Journal timestamps are monotonic micros since boot — the same
            // time base as the history bucket indices.
            let bucket = event.at_micros / interval_us;
            let (before, after) = match tenant_index(&tenant) {
                Some(t) => (
                    tenant_hit_rate_where(&rates, t, |i| i <= bucket),
                    // Oldest window strictly after the transfer: rates are
                    // sorted, so re-scan forward for the minimum match.
                    rates
                        .iter()
                        .find(|w| w.index > bucket)
                        .and_then(|w| w.columns.get(t))
                        .and_then(|col| col.hit_rate),
                ),
                None => (None, None),
            };
            Some(AllocatorTransferDoc {
                seq: event.seq,
                at_unix_us: observed.server_start_unix_us + event.at_micros,
                kind: kind.to_string(),
                tenant,
                donor,
                bytes,
                from_gradient,
                to_gradient,
                hit_rate_before: before,
                hit_rate_after: after,
                realized_delta: match (before, after) {
                    (Some(b), Some(a)) => Some(a - b),
                    _ => None,
                },
            })
        })
        .collect();
    AllocatorDoc {
        window_us: interval_us,
        transfers,
    }
}

/// Assembles the machine-readable stats document from the same inputs the
/// text renderer uses, plus the per-loop latency telemetry, the journal and
/// the observability plane (wall clock, MRC estimators, time series).
pub(crate) fn build_document(
    snap: &StatsSnapshot,
    conns: Option<&ConnTelemetry>,
    plane: &PlaneStats,
    loops: &[LoopTelemetry],
    admin_latency: &Histogram,
    journal: &Journal,
    observed: &ObservedPlane,
) -> StatsDocument {
    let r = rollup(snap);
    let nt = snap.tenant_names.len();
    let ns = snap.cells.len();
    let mut local_merged = Histogram::new();
    let mut remote_merged = Histogram::new();
    for tel in loops {
        local_merged.merge(&tel.local);
        remote_merged.merge(&tel.remote);
    }
    let mrc = build_mrc(snap, &r, observed);
    let history = build_history(snap, observed);
    let allocator = build_allocator(snap, observed, journal);
    StatsDocument {
        schema: STATS_SCHEMA.to_string(),
        server_start: observed.server_start_unix_us,
        snapshot_unix_us: observed.snapshot_unix_us,
        uptime_s: snap.uptime_s,
        counters: CountersDoc {
            cmd_get: r.totals.gets,
            cmd_set: r.totals.sets,
            get_hits: r.totals.hits,
            get_misses: r.totals.misses,
            cmd_delete: r.totals.deletes,
            bytes: r.used,
            curr_items: r.items as u64,
            evictions: r.core_total.evictions,
            slow_ops: plane.slow_ops,
        },
        capacity: CapacityDoc {
            limit_maxbytes: snap.total_bytes,
            allocator: format!("{:?}", snap.mode).to_lowercase(),
            shard_count: ns,
            shards_requested: snap.requested_shards,
            tenant_count: nt,
            event_loops: plane.per_loop.len(),
        },
        balance: BalanceDoc {
            rebalance_enabled: snap.balance.rebalance_enabled,
            rebalance_runs: snap.balance.rebalance_runs,
            rebalance_transfers: snap.balance.rebalance_transfers,
            rebalance_bytes_moved: snap.balance.rebalance_bytes,
            arbiter_enabled: snap.balance.arbiter_enabled,
            arbiter_runs: snap.balance.arbiter_runs,
            arbiter_transfers: snap.balance.arbiter_transfers,
            arbiter_bytes_moved: snap.balance.arbiter_bytes,
        },
        connections: conns.map(|c| ConnectionsDoc {
            curr: c.curr(),
            total: c.total(),
            rejected: c.rejected(),
            idle_closed: c.idle_closed(),
            max: c.max_connections(),
            per_loop: (0..c.loops()).map(|i| c.loop_curr(i)).collect(),
        }),
        service_latency: ServiceLatencyDoc {
            local: local_merged.summarize_us(),
            remote: remote_merged.summarize_us(),
        },
        loops: loops
            .iter()
            .enumerate()
            .map(|(i, tel)| {
                let (local_ops, remote_in, remote_out) =
                    plane.per_loop.get(i).copied().unwrap_or((0, 0, 0));
                LoopDoc {
                    index: i,
                    local_ops,
                    remote_in,
                    remote_out,
                    slow_ops: tel.slow_ops,
                    local_latency: tel.local.summarize_us(),
                    remote_latency: tel.remote.summarize_us(),
                }
            })
            .collect(),
        tenants: (0..nt)
            .map(|t| TenantDoc {
                name: snap.tenant_names[t].clone(),
                cmd_get: r.tenant_wire[t].gets,
                cmd_set: r.tenant_wire[t].sets,
                get_hits: r.tenant_wire[t].hits,
                get_misses: r.tenant_wire[t].misses,
                cmd_delete: r.tenant_wire[t].deletes,
                bytes: r.tenant_used[t],
                curr_items: r.tenant_items[t] as u64,
                evictions: r.tenant_core[t].evictions,
                budget: snap.tenant_budgets[t],
                shadow_hits: r.tenant_core[t].shadow_hits,
            })
            .collect(),
        shards: (0..ns)
            .map(|s| ShardDoc {
                index: s,
                owner_loop: plane.owner_of.get(s).copied().unwrap_or(0),
                cmd_get: r.shard_wire[s].gets,
                get_hits: r.shard_wire[s].hits,
                bytes: r.shard_used[s],
                curr_items: r.shard_items[s] as u64,
                evictions: r.shard_core[s].evictions,
                budget: snap.shard_budgets[s],
                shadow_hits: r.shard_core[s].shadow_hits,
            })
            .collect(),
        plane: PlaneDoc {
            local_ops: plane.per_loop.iter().map(|l| l.0).sum(),
            remote_ops: plane.per_loop.iter().map(|l| l.1).sum(),
            admin_msgs: plane.admin_msgs,
            idle_timeout_ms: plane.idle_timeout_ms,
            admin_latency: admin_latency.summarize_us(),
        },
        journal: JournalDoc {
            capacity: journal.capacity(),
            next_seq: journal.next_seq(),
            dropped: journal.dropped(),
            events: journal.snapshot(),
        },
        mrc,
        hot_keys: observed.hot_keys.clone(),
        history,
        allocator,
    }
}

/// Renders the document as one line of JSON (the `stats json` payload).
pub(crate) fn render_json(doc: &StatsDocument) -> String {
    serde_json::to_string(doc).expect("stats document serialisation cannot fail")
}

/// Escapes a Prometheus label value: backslash, double quote and newline
/// must be backslash-escaped per the text exposition format. Tenant names
/// are operator-chosen ASCII-graphic strings, so `"` and `\` are legal in
/// them and *must* round-trip.
fn prom_escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Appends one Prometheus metric with `# TYPE` metadata.
fn prom_metric(out: &mut String, name: &str, kind: &str, lines: &[(String, String)]) {
    out.push_str(&format!("# TYPE {name} {kind}\n"));
    for (labels, value) in lines {
        if labels.is_empty() {
            out.push_str(&format!("{name} {value}\n"));
        } else {
            out.push_str(&format!("{name}{{{labels}}} {value}\n"));
        }
    }
}

/// Quantile label/value pairs for one latency summary, in microseconds.
fn prom_quantiles(class: &str, latency: &LatencySummary) -> Vec<(String, String)> {
    [
        ("0.5", latency.p50_us),
        ("0.9", latency.p90_us),
        ("0.99", latency.p99_us),
        ("0.999", latency.p999_us),
    ]
    .iter()
    .map(|(q, v)| (format!("class=\"{class}\",quantile=\"{q}\""), v.to_string()))
    .collect()
}

/// Renders the document in Prometheus text exposition format (the
/// `stats prom` payload). Same source document as the JSON rendering.
pub(crate) fn render_prom(doc: &StatsDocument) -> String {
    let mut out = String::new();
    let c = &doc.counters;
    for (name, value) in [
        ("cliffhanger_cmd_get_total", c.cmd_get),
        ("cliffhanger_cmd_set_total", c.cmd_set),
        ("cliffhanger_get_hits_total", c.get_hits),
        ("cliffhanger_get_misses_total", c.get_misses),
        ("cliffhanger_cmd_delete_total", c.cmd_delete),
        ("cliffhanger_evictions_total", c.evictions),
        ("cliffhanger_slow_ops_total", c.slow_ops),
    ] {
        prom_metric(
            &mut out,
            name,
            "counter",
            &[(String::new(), value.to_string())],
        );
    }
    for (name, value) in [
        ("cliffhanger_bytes_used", c.bytes),
        ("cliffhanger_curr_items", c.curr_items),
        ("cliffhanger_limit_maxbytes", doc.capacity.limit_maxbytes),
        ("cliffhanger_shard_count", doc.capacity.shard_count as u64),
        ("cliffhanger_tenant_count", doc.capacity.tenant_count as u64),
        ("cliffhanger_event_loops", doc.capacity.event_loops as u64),
        ("cliffhanger_uptime_seconds", doc.uptime_s),
    ] {
        prom_metric(
            &mut out,
            name,
            "gauge",
            &[(String::new(), value.to_string())],
        );
    }
    for (name, value) in [
        (
            "cliffhanger_rebalance_transfers_total",
            doc.balance.rebalance_transfers,
        ),
        (
            "cliffhanger_rebalance_bytes_moved_total",
            doc.balance.rebalance_bytes_moved,
        ),
        (
            "cliffhanger_arbiter_transfers_total",
            doc.balance.arbiter_transfers,
        ),
        (
            "cliffhanger_arbiter_bytes_moved_total",
            doc.balance.arbiter_bytes_moved,
        ),
    ] {
        prom_metric(
            &mut out,
            name,
            "counter",
            &[(String::new(), value.to_string())],
        );
    }
    if let Some(conns) = &doc.connections {
        prom_metric(
            &mut out,
            "cliffhanger_connections",
            "gauge",
            &[(String::new(), conns.curr.to_string())],
        );
        prom_metric(
            &mut out,
            "cliffhanger_connections_total",
            "counter",
            &[(String::new(), conns.total.to_string())],
        );
        prom_metric(
            &mut out,
            "cliffhanger_connections_rejected_total",
            "counter",
            &[(String::new(), conns.rejected.to_string())],
        );
        prom_metric(
            &mut out,
            "cliffhanger_connections_idle_closed_total",
            "counter",
            &[(String::new(), conns.idle_closed.to_string())],
        );
    }
    let mut latency_lines = prom_quantiles("local", &doc.service_latency.local);
    latency_lines.extend(prom_quantiles("remote", &doc.service_latency.remote));
    latency_lines.extend(prom_quantiles("admin", &doc.plane.admin_latency));
    prom_metric(
        &mut out,
        "cliffhanger_service_time_microseconds",
        "summary",
        &latency_lines,
    );
    let loop_ops: Vec<(String, String)> = doc
        .loops
        .iter()
        .flat_map(|l| {
            [
                (
                    format!("loop=\"{}\",kind=\"local\"", l.index),
                    l.local_ops.to_string(),
                ),
                (
                    format!("loop=\"{}\",kind=\"remote_in\"", l.index),
                    l.remote_in.to_string(),
                ),
                (
                    format!("loop=\"{}\",kind=\"remote_out\"", l.index),
                    l.remote_out.to_string(),
                ),
            ]
        })
        .collect();
    prom_metric(&mut out, "cliffhanger_loop_ops_total", "counter", &loop_ops);
    let tenant_bytes: Vec<(String, String)> = doc
        .tenants
        .iter()
        .map(|t| {
            (
                format!("tenant=\"{}\"", prom_escape_label(&t.name)),
                t.bytes.to_string(),
            )
        })
        .collect();
    prom_metric(
        &mut out,
        "cliffhanger_tenant_bytes_used",
        "gauge",
        &tenant_bytes,
    );
    let tenant_budget: Vec<(String, String)> = doc
        .tenants
        .iter()
        .map(|t| {
            (
                format!("tenant=\"{}\"", prom_escape_label(&t.name)),
                t.budget.to_string(),
            )
        })
        .collect();
    prom_metric(
        &mut out,
        "cliffhanger_tenant_budget_bytes",
        "gauge",
        &tenant_budget,
    );
    // Per-tenant wire series under an `app` label (the `app <name>` command
    // namespace), so one Grafana variable covers every hosted application.
    let app_lines = |value: fn(&TenantDoc) -> u64| -> Vec<(String, String)> {
        doc.tenants
            .iter()
            .map(|t| {
                (
                    format!("app=\"{}\"", prom_escape_label(&t.name)),
                    value(t).to_string(),
                )
            })
            .collect()
    };
    prom_metric(
        &mut out,
        "cliffhanger_tenant_cmd_get",
        "counter",
        &app_lines(|t| t.cmd_get),
    );
    prom_metric(
        &mut out,
        "cliffhanger_tenant_get_hits",
        "counter",
        &app_lines(|t| t.get_hits),
    );
    prom_metric(
        &mut out,
        "cliffhanger_tenant_bytes",
        "gauge",
        &app_lines(|t| t.bytes),
    );
    prom_metric(
        &mut out,
        "cliffhanger_tenant_budget",
        "gauge",
        &app_lines(|t| t.budget),
    );
    if let Some(mrc) = &doc.mrc {
        let lines: Vec<(String, String)> = mrc
            .tenants
            .iter()
            .flat_map(|t| {
                let app = prom_escape_label(&t.name);
                t.points
                    .iter()
                    .map(|p| {
                        (
                            format!("app=\"{app}\",scale=\"{}\"", p.scale),
                            format!("{:.6}", p.hit_rate),
                        )
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        if !lines.is_empty() {
            prom_metric(&mut out, "cliffhanger_tenant_mrc_hit_rate", "gauge", &lines);
        }
    }
    if let Some(hot) = &doc.hot_keys {
        let lines: Vec<(String, String)> = hot
            .tracked
            .iter()
            .map(|e| {
                (
                    format!(
                        "app=\"{}\",key=\"{}\"",
                        prom_escape_label(&e.app),
                        prom_escape_label(&e.key)
                    ),
                    e.ops.to_string(),
                )
            })
            .collect();
        if !lines.is_empty() {
            prom_metric(&mut out, "cliffhanger_hot_key_ops", "gauge", &lines);
        }
        prom_metric(
            &mut out,
            "cliffhanger_hot_keys_promoted",
            "gauge",
            &[(String::new(), hot.promoted.len().to_string())],
        );
        for (name, value) in [
            ("cliffhanger_hot_key_promotions_total", hot.promotions),
            ("cliffhanger_hot_key_demotions_total", hot.demotions),
            ("cliffhanger_hot_key_replica_hits_total", hot.replica_hits),
            ("cliffhanger_hot_key_replica_fills_total", hot.replica_fills),
            ("cliffhanger_hot_key_invalidations_total", hot.invalidations),
        ] {
            prom_metric(
                &mut out,
                name,
                "counter",
                &[(String::new(), value.to_string())],
            );
        }
    }
    prom_metric(
        &mut out,
        "cliffhanger_journal_events_total",
        "counter",
        &[(String::new(), doc.journal.next_seq.to_string())],
    );
    out
}
