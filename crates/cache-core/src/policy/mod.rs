//! Eviction policies.
//!
//! Cliffhanger "supports any eviction policy, including LRU, LFU or hybrid
//! policies such as ARC" (paper §1). This module provides the policies the
//! paper discusses behind a single object-safe trait so that queues, stores
//! and the Cliffhanger controller are policy-agnostic:
//!
//! * [`lru::LruPolicy`] — plain LRU (Memcached's default).
//! * [`facebook::FacebookPolicy`] — Facebook's hybrid scheme: first-time items
//!   are inserted at the middle of the queue, promoted to the top on a second
//!   hit (§5.5, §6.2).
//! * [`lfu::LfuPolicy`] — least-frequently-used with LRU tie-breaking.
//! * [`arc::ArcPolicy`] — Adaptive Replacement Cache (Megiddo & Modha, FAST'03).
//! * [`lru_k::LruKPolicy`] — LRU-K (O'Neil et al., SIGMOD'93), default K = 2.
//! * [`two_q::TwoQPolicy`] — 2Q (Johnson & Shasha, VLDB'94), simplified variant.
//!
//! Eviction is driven externally: the owning queue calls [`EvictionPolicy::evict`]
//! until it is back under its byte budget, so policies order items but do not
//! themselves enforce a capacity (except for their internal ghost lists).

pub mod arc;
pub mod facebook;
pub mod lfu;
pub mod lru;
pub mod lru_k;
pub mod two_q;

use crate::key::Key;
use crate::lru::HitLocation;
use serde::{Deserialize, Serialize};

/// Which eviction policy to instantiate for a queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PolicyKind {
    /// Least recently used (Memcached default).
    #[default]
    Lru,
    /// Facebook's mid-queue insertion scheme on top of LRU.
    Facebook,
    /// Least frequently used, ties broken by recency.
    Lfu,
    /// Adaptive Replacement Cache.
    Arc,
    /// LRU-K with the given K (K >= 1; K = 1 degenerates to LRU).
    LruK(u32),
    /// Simplified 2Q.
    TwoQ,
}

impl PolicyKind {
    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn EvictionPolicy> {
        match self {
            PolicyKind::Lru => Box::new(lru::LruPolicy::new()),
            PolicyKind::Facebook => Box::new(facebook::FacebookPolicy::new()),
            PolicyKind::Lfu => Box::new(lfu::LfuPolicy::new()),
            PolicyKind::Arc => Box::new(arc::ArcPolicy::new()),
            PolicyKind::LruK(k) => Box::new(lru_k::LruKPolicy::new(k.max(1))),
            PolicyKind::TwoQ => Box::new(two_q::TwoQPolicy::new()),
        }
    }

    /// Whether the policy keeps a strict recency order and can therefore
    /// report tail-region hits (required by the cliff-scaling algorithm).
    pub fn supports_tail_region(self) -> bool {
        matches!(self, PolicyKind::Lru | PolicyKind::Facebook)
    }
}

/// An eviction policy over weighted keys.
///
/// A policy orders the resident keys of one queue and selects eviction
/// victims. Weights (bytes) are carried through so the owning queue can do
/// byte-based accounting, but — as in Memcached — they do not influence the
/// eviction order within a queue (size-awareness comes from slab classes and
/// from the allocation algorithm above).
pub trait EvictionPolicy: std::fmt::Debug + Send {
    /// Records a hit on `key`, reorganising internal structures. Returns
    /// where the hit was found, or `None` if the key is not resident.
    fn access(&mut self, key: Key) -> Option<HitLocation>;

    /// Notifies the policy of a GET that missed the physical queue. Policies
    /// with ghost lists (ARC, 2Q) use this to adapt; others ignore it.
    fn on_miss(&mut self, _key: Key) {}

    /// Makes `key` resident with the given weight (replacing any previous
    /// entry for the same key).
    fn insert(&mut self, key: Key, weight: u64);

    /// Removes and returns the next eviction victim.
    fn evict(&mut self) -> Option<(Key, u64)>;

    /// Removes a specific key, returning its weight if it was resident.
    fn remove(&mut self, key: Key) -> Option<u64>;

    /// Whether `key` is resident.
    fn contains(&self, key: Key) -> bool;

    /// Number of resident keys.
    fn len(&self) -> usize;

    /// Whether no keys are resident.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total weight of resident keys.
    fn total_weight(&self) -> u64;

    /// Configures the tail region (last `items` items) for policies that
    /// support it; a no-op otherwise.
    fn set_tail_region(&mut self, items: usize);

    /// Whether [`EvictionPolicy::set_tail_region`] has any effect.
    fn supports_tail_region(&self) -> bool {
        false
    }

    /// The policy's kind tag.
    fn kind(&self) -> PolicyKind;
}

#[cfg(test)]
pub(crate) mod conformance {
    //! Shared conformance checks run against every policy implementation.
    use super::*;

    pub(crate) fn key(i: u64) -> Key {
        Key::new(i)
    }

    /// Basic invariants every policy must satisfy.
    pub(crate) fn basic_contract(mut policy: Box<dyn EvictionPolicy>) {
        assert!(policy.is_empty());
        assert_eq!(policy.evict(), None);

        for i in 0..16 {
            policy.insert(key(i), 10);
        }
        assert_eq!(policy.len(), 16);
        assert_eq!(policy.total_weight(), 160);
        assert!(policy.contains(key(3)));
        assert!(!policy.contains(key(99)));

        assert!(policy.access(key(3)).is_some());
        assert!(policy.access(key(99)).is_none());

        // Removing returns the weight exactly once.
        assert_eq!(policy.remove(key(5)), Some(10));
        assert_eq!(policy.remove(key(5)), None);
        assert_eq!(policy.len(), 15);
        assert_eq!(policy.total_weight(), 150);

        // Re-inserting an existing key must not double count.
        policy.insert(key(3), 20);
        assert_eq!(policy.len(), 15);
        assert_eq!(policy.total_weight(), 160);

        // Evicting everything drains the policy and the weights.
        let mut drained = 0u64;
        let mut count = 0usize;
        while let Some((_, w)) = policy.evict() {
            drained += w;
            count += 1;
        }
        assert_eq!(count, 15);
        assert_eq!(drained, 160);
        assert!(policy.is_empty());
        assert_eq!(policy.total_weight(), 0);
    }

    /// Evictions must never return a key that was explicitly removed and must
    /// never return the same key twice.
    pub(crate) fn no_duplicate_evictions(mut policy: Box<dyn EvictionPolicy>) {
        use std::collections::HashSet;
        for i in 0..64 {
            policy.insert(key(i), 1);
        }
        for i in (0..64).step_by(3) {
            policy.access(key(i));
        }
        for i in (0..64).step_by(7) {
            policy.remove(key(i));
        }
        let mut seen = HashSet::new();
        while let Some((k, _)) = policy.evict() {
            assert!(seen.insert(k), "key {k:?} evicted twice");
            assert_ne!(k.raw() % 7, 0, "removed key {k:?} came back from evict");
        }
    }
}
