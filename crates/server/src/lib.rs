//! # cache-server
//!
//! A Memcached-text-protocol TCP server backed by the Cliffhanger-managed
//! cache, plus a blocking client. This is the piece the paper's
//! micro-benchmarks exercise (Tables 6 and 7): the protocol and connection
//! handling are the fixed cost, and the question is how much latency and
//! throughput overhead the shadow queues and the two algorithms add on top.
//!
//! The server's I/O path is event-driven: a handful of epoll event-loop
//! threads (the shape pelikan and Memcached use in production) each
//! multiplex many non-blocking connections, so connection count is bounded
//! by the `max_connections` accept gate and by fds — not by the thread
//! count — and idle sessions cost buffers, not parked OS threads. The
//! workload itself stays memory-bound (the paper makes the same point
//! about Memcachier and Facebook in §5.6), which is exactly why a few
//! loops are enough to saturate the cache.
//!
//! The served request path is *shared-nothing*: each epoll event loop owns
//! the shards assigned to it (`shard % loops`) outright, requests are routed
//! by key hash at the connection layer before touching any engine, and an
//! op for a shard another loop owns is forwarded over that loop's wakeup
//! pipe instead of taking a lock. Admin commands (`stats`, `flush_all`,
//! `app_create`, `app_list`) and the budget-moving rounds run on a single
//! control thread that converses with the loops by message, so they never
//! head-of-line-block a serving loop. See `ARCHITECTURE.md` at the
//! repository root for the full request lifecycle and message protocol.
//!
//! * [`protocol`] — parsing and serialising the Memcached ASCII protocol,
//!   including the multi-tenant `app <name>` session selector and the
//!   `app_create` / `app_list` live-onboarding admin commands. The
//!   resumable [`protocol::Parser`] lets a connection pick a `set` back up
//!   mid-value when the data block trickles in.
//! * [`backend`] — the embedded backend: the same sharded, multi-tenant
//!   engine hierarchy behind one lock per engine, for tests, benches and
//!   library consumers that call the cache in-process from many threads.
//! * [`reactor`] — the epoll event loops, their mailboxes and the
//!   wakeup-pipe hand-off (thin unsafe FFI against the system libc; no
//!   crates).
//! * [`server`] — the TCP listener, accept gate and lifecycle; its serving
//!   side is the data plane in `plane` (exposed as [`PlaneHandle`]).
//! * [`client`] — a blocking client for tests, benches and examples.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod backend;
pub mod client;
mod conn;
mod engine;
mod hotkey;
mod plane;
pub mod protocol;
pub mod reactor;
pub mod server;
mod stats;

pub use backend::{detect_shards, BackendConfig, BackendMode, SharedCache, TenantSpec};
pub use client::CacheClient;
pub use hotkey::HotKeyConfig;
pub use plane::PlaneHandle;
pub use protocol::{Command, Response, StatsFormat};
pub use reactor::ConnTelemetry;
pub use server::{default_event_loops, CacheServer, ServerConfig};
