//! An index-based intrusive doubly-linked list arena.
//!
//! Every recency-ordered queue in this crate (LRU lists, shadow queues, the
//! segmented queues used by ARC and 2Q) is built on [`LinkedArena`]: a `Vec`
//! of nodes linked by indices, with a free list for recycling slots. Compared
//! to `std::collections::LinkedList` this gives O(1) removal of arbitrary
//! elements by handle without unsafe code or per-node allocations.

/// Handle to a node inside a [`LinkedArena`].
///
/// Handles are only meaningful for the arena that issued them and become
/// invalid after the node is removed (slots are recycled; a stale handle may
/// alias a newer node, so callers must drop handles on removal — the queue
/// types in this crate do so via their key maps).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NodeHandle(u32);

impl NodeHandle {
    const NONE: u32 = u32::MAX;

    fn some(idx: usize) -> Self {
        debug_assert!(idx < u32::MAX as usize);
        NodeHandle(idx as u32)
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug)]
struct Node<T> {
    value: Option<T>,
    prev: u32,
    next: u32,
}

/// A doubly-linked list stored in a growable arena.
///
/// The list maintains front ("most recent") and back ("least recent") ends.
/// All operations are O(1) except iteration.
#[derive(Debug)]
pub struct LinkedArena<T> {
    nodes: Vec<Node<T>>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    len: usize,
}

impl<T> Default for LinkedArena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> LinkedArena<T> {
    /// Creates an empty list.
    pub fn new() -> Self {
        LinkedArena {
            nodes: Vec::new(),
            free: Vec::new(),
            head: NodeHandle::NONE,
            tail: NodeHandle::NONE,
            len: 0,
        }
    }

    /// Creates an empty list with room for `capacity` nodes.
    pub fn with_capacity(capacity: usize) -> Self {
        LinkedArena {
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NodeHandle::NONE,
            tail: NodeHandle::NONE,
            len: 0,
        }
    }

    /// Number of elements in the list.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn alloc(&mut self, value: T) -> u32 {
        if let Some(idx) = self.free.pop() {
            let node = &mut self.nodes[idx as usize];
            node.value = Some(value);
            node.prev = NodeHandle::NONE;
            node.next = NodeHandle::NONE;
            idx
        } else {
            let idx = self.nodes.len() as u32;
            self.nodes.push(Node {
                value: Some(value),
                prev: NodeHandle::NONE,
                next: NodeHandle::NONE,
            });
            idx
        }
    }

    /// Pushes a value at the front (most-recent end) and returns its handle.
    pub fn push_front(&mut self, value: T) -> NodeHandle {
        let idx = self.alloc(value);
        self.nodes[idx as usize].next = self.head;
        self.nodes[idx as usize].prev = NodeHandle::NONE;
        if self.head != NodeHandle::NONE {
            self.nodes[self.head as usize].prev = idx;
        } else {
            self.tail = idx;
        }
        self.head = idx;
        self.len += 1;
        NodeHandle::some(idx as usize)
    }

    /// Pushes a value at the back (least-recent end) and returns its handle.
    pub fn push_back(&mut self, value: T) -> NodeHandle {
        let idx = self.alloc(value);
        self.nodes[idx as usize].prev = self.tail;
        self.nodes[idx as usize].next = NodeHandle::NONE;
        if self.tail != NodeHandle::NONE {
            self.nodes[self.tail as usize].next = idx;
        } else {
            self.head = idx;
        }
        self.tail = idx;
        self.len += 1;
        NodeHandle::some(idx as usize)
    }

    /// Inserts a value immediately before the node identified by `before`.
    pub fn insert_before(&mut self, before: NodeHandle, value: T) -> NodeHandle {
        let b = before.index() as u32;
        let prev = self.nodes[b as usize].prev;
        if prev == NodeHandle::NONE {
            return self.push_front(value);
        }
        let idx = self.alloc(value);
        self.nodes[idx as usize].prev = prev;
        self.nodes[idx as usize].next = b;
        self.nodes[prev as usize].next = idx;
        self.nodes[b as usize].prev = idx;
        self.len += 1;
        NodeHandle::some(idx as usize)
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let node = &self.nodes[idx as usize];
            (node.prev, node.next)
        };
        if prev != NodeHandle::NONE {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NodeHandle::NONE {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Removes the node identified by `handle`, returning its value.
    ///
    /// # Panics
    /// Panics if the handle does not refer to a live node.
    pub fn remove(&mut self, handle: NodeHandle) -> T {
        let idx = handle.index() as u32;
        self.unlink(idx);
        let value = self.nodes[idx as usize]
            .value
            .take()
            .expect("LinkedArena::remove called with a stale handle");
        self.free.push(idx);
        self.len -= 1;
        value
    }

    /// Removes the value at the back (least-recent end), if any.
    pub fn pop_back(&mut self) -> Option<T> {
        if self.tail == NodeHandle::NONE {
            return None;
        }
        let handle = NodeHandle::some(self.tail as usize);
        Some(self.remove(handle))
    }

    /// Removes the value at the front (most-recent end), if any.
    pub fn pop_front(&mut self) -> Option<T> {
        if self.head == NodeHandle::NONE {
            return None;
        }
        let handle = NodeHandle::some(self.head as usize);
        Some(self.remove(handle))
    }

    /// Moves an existing node to the front (most-recent end).
    pub fn move_to_front(&mut self, handle: NodeHandle) {
        let idx = handle.index() as u32;
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.nodes[idx as usize].next = self.head;
        self.nodes[idx as usize].prev = NodeHandle::NONE;
        if self.head != NodeHandle::NONE {
            self.nodes[self.head as usize].prev = idx;
        } else {
            self.tail = idx;
        }
        self.head = idx;
    }

    /// Moves an existing node to the back (least-recent end).
    pub fn move_to_back(&mut self, handle: NodeHandle) {
        let idx = handle.index() as u32;
        if self.tail == idx {
            return;
        }
        self.unlink(idx);
        self.nodes[idx as usize].prev = self.tail;
        self.nodes[idx as usize].next = NodeHandle::NONE;
        if self.tail != NodeHandle::NONE {
            self.nodes[self.tail as usize].next = idx;
        } else {
            self.head = idx;
        }
        self.tail = idx;
    }

    /// Returns a reference to the value stored at `handle`.
    pub fn get(&self, handle: NodeHandle) -> Option<&T> {
        self.nodes
            .get(handle.index())
            .and_then(|n| n.value.as_ref())
    }

    /// Returns a mutable reference to the value stored at `handle`.
    pub fn get_mut(&mut self, handle: NodeHandle) -> Option<&mut T> {
        self.nodes
            .get_mut(handle.index())
            .and_then(|n| n.value.as_mut())
    }

    /// Handle of the front (most-recent) node.
    pub fn front(&self) -> Option<NodeHandle> {
        (self.head != NodeHandle::NONE).then(|| NodeHandle::some(self.head as usize))
    }

    /// Handle of the back (least-recent) node.
    pub fn back(&self) -> Option<NodeHandle> {
        (self.tail != NodeHandle::NONE).then(|| NodeHandle::some(self.tail as usize))
    }

    /// Handle of the node preceding `handle` (towards the front).
    pub fn prev(&self, handle: NodeHandle) -> Option<NodeHandle> {
        let prev = self.nodes[handle.index()].prev;
        (prev != NodeHandle::NONE).then(|| NodeHandle::some(prev as usize))
    }

    /// Handle of the node following `handle` (towards the back).
    pub fn next(&self, handle: NodeHandle) -> Option<NodeHandle> {
        let next = self.nodes[handle.index()].next;
        (next != NodeHandle::NONE).then(|| NodeHandle::some(next as usize))
    }

    /// Iterates over values from front (most recent) to back (least recent).
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            arena: self,
            cursor: self.head,
        }
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.head = NodeHandle::NONE;
        self.tail = NodeHandle::NONE;
        self.len = 0;
    }
}

/// Iterator over a [`LinkedArena`] from front to back.
pub struct Iter<'a, T> {
    arena: &'a LinkedArena<T>,
    cursor: u32,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor == NodeHandle::NONE {
            return None;
        }
        let node = &self.arena.nodes[self.cursor as usize];
        self.cursor = node.next;
        node.value.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(arena: &LinkedArena<u32>) -> Vec<u32> {
        arena.iter().copied().collect()
    }

    #[test]
    fn push_front_orders_most_recent_first() {
        let mut a = LinkedArena::new();
        a.push_front(1);
        a.push_front(2);
        a.push_front(3);
        assert_eq!(collect(&a), vec![3, 2, 1]);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn push_back_appends() {
        let mut a = LinkedArena::new();
        a.push_back(1);
        a.push_back(2);
        a.push_front(0);
        assert_eq!(collect(&a), vec![0, 1, 2]);
    }

    #[test]
    fn pop_back_returns_least_recent() {
        let mut a = LinkedArena::new();
        a.push_front(1);
        a.push_front(2);
        assert_eq!(a.pop_back(), Some(1));
        assert_eq!(a.pop_back(), Some(2));
        assert_eq!(a.pop_back(), None);
        assert!(a.is_empty());
    }

    #[test]
    fn remove_middle_relinks() {
        let mut a = LinkedArena::new();
        let _h1 = a.push_front(1);
        let h2 = a.push_front(2);
        let _h3 = a.push_front(3);
        assert_eq!(a.remove(h2), 2);
        assert_eq!(collect(&a), vec![3, 1]);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn move_to_front_promotes() {
        let mut a = LinkedArena::new();
        let h1 = a.push_front(1);
        a.push_front(2);
        a.push_front(3);
        a.move_to_front(h1);
        assert_eq!(collect(&a), vec![1, 3, 2]);
    }

    #[test]
    fn move_to_back_demotes() {
        let mut a = LinkedArena::new();
        a.push_front(1);
        a.push_front(2);
        let h3 = a.push_front(3);
        a.move_to_back(h3);
        assert_eq!(collect(&a), vec![2, 1, 3]);
        assert_eq!(a.pop_back(), Some(3));
    }

    #[test]
    fn insert_before_keeps_order() {
        let mut a = LinkedArena::new();
        let h1 = a.push_front(1);
        a.push_front(3);
        a.insert_before(h1, 2);
        assert_eq!(collect(&a), vec![3, 2, 1]);
        // Inserting before the head is equivalent to push_front.
        let head = a.front().unwrap();
        a.insert_before(head, 4);
        assert_eq!(collect(&a), vec![4, 3, 2, 1]);
    }

    #[test]
    fn slots_are_recycled() {
        let mut a = LinkedArena::new();
        let h = a.push_front(1);
        a.remove(h);
        a.push_front(2);
        // The underlying vector should not have grown past one slot.
        assert_eq!(a.nodes.len(), 1);
        assert_eq!(collect(&a), vec![2]);
    }

    #[test]
    fn prev_next_navigation() {
        let mut a = LinkedArena::new();
        let h1 = a.push_front(1);
        let h2 = a.push_front(2);
        assert_eq!(a.prev(h1), Some(h2));
        assert_eq!(a.next(h2), Some(h1));
        assert_eq!(a.prev(h2), None);
        assert_eq!(a.next(h1), None);
        assert_eq!(a.front(), Some(h2));
        assert_eq!(a.back(), Some(h1));
    }

    #[test]
    fn clear_empties() {
        let mut a = LinkedArena::new();
        a.push_front(1);
        a.push_front(2);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.pop_back(), None);
    }
}
