//! Minimal offline stand-in for [`parking_lot`](https://docs.rs/parking_lot):
//! `Mutex` and `RwLock` with the panic-free (non-poisoning) lock API, backed
//! by `std::sync`. Poisoned locks are recovered transparently, matching
//! parking_lot's behavior of not propagating poison.

use std::fmt;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquires an exclusive write lock, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8_000);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(1u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        assert_eq!(*m.lock(), 1);
    }
}
