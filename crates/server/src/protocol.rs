//! The Memcached ASCII protocol (the subset the paper's benchmarks use).
//!
//! Supported commands: `get` / `gets` (multi-key), `set`, `add`, `replace`,
//! `delete`, `stats`, `version`, `flush_all`, `quit`, and the multi-tenant
//! extension `app <name>`. Parsing is incremental over a byte buffer so a
//! connection handler can feed it whatever the socket delivers.
//!
//! # The `app` extension
//!
//! Memcachier-style servers host many applications on one cache; the paper's
//! §3 analysis is entirely about how their memory shares should be divided.
//! `app <name>` selects the application *namespace* for the rest of the
//! session — equivalent to transparently prefixing every subsequent key with
//! `<name>:`, but enforced server-side (per-tenant engines and budgets), so
//! one tenant can never read, overwrite or evict another tenant's keys and
//! `flush_all` only clears the selected namespace. A connection that never
//! sends `app` runs in the `default` namespace and observes exactly the
//! pre-extension protocol.

use bytes::{Bytes, BytesMut};

/// A parsed client command.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// `get <key>+` — fetch one or more keys.
    Get {
        /// Requested keys.
        keys: Vec<Bytes>,
    },
    /// `set` / `add` / `replace` — store a value.
    Store {
        /// Which store verb was used.
        verb: StoreVerb,
        /// The key being stored.
        key: Bytes,
        /// Opaque client flags echoed back on GET.
        flags: u32,
        /// Expiration time in seconds (0 = never); stored but not enforced.
        exptime: u32,
        /// The value payload.
        data: Bytes,
        /// Whether the client asked to suppress the reply.
        noreply: bool,
    },
    /// `delete <key>`.
    Delete {
        /// The key to remove.
        key: Bytes,
        /// Whether the client asked to suppress the reply.
        noreply: bool,
    },
    /// `app <name>` — select the application namespace for this session.
    App {
        /// The application name (validated against the server's tenant
        /// directory by the executor, not the parser).
        id: Bytes,
    },
    /// `stats`.
    Stats,
    /// `version`.
    Version,
    /// `flush_all` — drop every item.
    FlushAll,
    /// `quit` — close the connection.
    Quit,
}

/// The store verbs of the protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreVerb {
    /// Store unconditionally.
    Set,
    /// Store only if the key is absent.
    Add,
    /// Store only if the key is present.
    Replace,
}

/// A server response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Values followed by `END` (the reply to `get`).
    Values(Vec<Value>),
    /// `STORED`.
    Stored,
    /// `NOT_STORED`.
    NotStored,
    /// `DELETED`.
    Deleted,
    /// `NOT_FOUND`.
    NotFound,
    /// `OK`.
    Ok,
    /// `VERSION <text>`.
    Version(String),
    /// `STAT <name> <value>` lines followed by `END`.
    Stats(Vec<(String, String)>),
    /// `CLIENT_ERROR <message>`.
    ClientError(String),
    /// `ERROR`.
    Error,
}

/// One value in a GET response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Value {
    /// The key.
    pub key: Bytes,
    /// Client flags stored with the item.
    pub flags: u32,
    /// The payload.
    pub data: Bytes,
}

/// The outcome of trying to parse one command from a buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseOutcome {
    /// A complete command was parsed and consumed from the buffer.
    Complete(Command),
    /// More bytes are needed.
    Incomplete,
    /// The buffer starts with something that is not a valid command; the
    /// offending line has been consumed.
    Invalid(String),
}

/// Attempts to parse one command from the front of `buffer`, consuming the
/// bytes it used.
pub fn parse_command(buffer: &mut BytesMut) -> ParseOutcome {
    let Some(line_end) = find_crlf(buffer, 0) else {
        return ParseOutcome::Incomplete;
    };
    let line = buffer[..line_end].to_vec();
    let line_str = String::from_utf8_lossy(&line).to_string();
    let mut parts = line_str.split_ascii_whitespace();
    let Some(verb) = parts.next() else {
        buffer.advance_checked(line_end + 2);
        return ParseOutcome::Invalid("empty command".to_string());
    };
    match verb {
        "get" | "gets" => {
            let keys: Vec<Bytes> = parts
                .map(|k| Bytes::copy_from_slice(k.as_bytes()))
                .collect();
            buffer.advance_checked(line_end + 2);
            if keys.is_empty() {
                ParseOutcome::Invalid("get requires at least one key".to_string())
            } else {
                ParseOutcome::Complete(Command::Get { keys })
            }
        }
        "set" | "add" | "replace" => {
            let verb = match verb {
                "set" => StoreVerb::Set,
                "add" => StoreVerb::Add,
                _ => StoreVerb::Replace,
            };
            let key = parts.next().map(str::to_string);
            let flags = parts.next().and_then(|s| s.parse::<u32>().ok());
            let exptime = parts.next().and_then(|s| s.parse::<u32>().ok());
            let bytes = parts.next().and_then(|s| s.parse::<usize>().ok());
            let noreply = parts.next() == Some("noreply");
            let (Some(key), Some(flags), Some(exptime), Some(bytes)) = (key, flags, exptime, bytes)
            else {
                buffer.advance_checked(line_end + 2);
                return ParseOutcome::Invalid("bad store command".to_string());
            };
            // The data block is <bytes> bytes followed by CRLF.
            let needed = line_end + 2 + bytes + 2;
            if buffer.len() < needed {
                return ParseOutcome::Incomplete;
            }
            let data = Bytes::copy_from_slice(&buffer[line_end + 2..line_end + 2 + bytes]);
            let terminator = &buffer[line_end + 2 + bytes..needed];
            let ok = terminator == b"\r\n";
            buffer.advance_checked(needed);
            if !ok {
                return ParseOutcome::Invalid("bad data chunk terminator".to_string());
            }
            ParseOutcome::Complete(Command::Store {
                verb,
                key: Bytes::copy_from_slice(key.as_bytes()),
                flags,
                exptime,
                data,
                noreply,
            })
        }
        "delete" => {
            let key = parts.next().map(str::to_string);
            let noreply = parts.next() == Some("noreply");
            buffer.advance_checked(line_end + 2);
            match key {
                Some(key) => ParseOutcome::Complete(Command::Delete {
                    key: Bytes::copy_from_slice(key.as_bytes()),
                    noreply,
                }),
                None => ParseOutcome::Invalid("delete requires a key".to_string()),
            }
        }
        "app" => {
            let id = parts.next().map(str::to_string);
            let extra = parts.next().is_some();
            buffer.advance_checked(line_end + 2);
            match id {
                Some(id) if !extra => ParseOutcome::Complete(Command::App {
                    id: Bytes::copy_from_slice(id.as_bytes()),
                }),
                Some(_) => ParseOutcome::Invalid("app takes exactly one name".to_string()),
                None => ParseOutcome::Invalid("app requires a name".to_string()),
            }
        }
        "stats" => {
            buffer.advance_checked(line_end + 2);
            ParseOutcome::Complete(Command::Stats)
        }
        "version" => {
            buffer.advance_checked(line_end + 2);
            ParseOutcome::Complete(Command::Version)
        }
        "flush_all" => {
            buffer.advance_checked(line_end + 2);
            ParseOutcome::Complete(Command::FlushAll)
        }
        "quit" => {
            buffer.advance_checked(line_end + 2);
            ParseOutcome::Complete(Command::Quit)
        }
        other => {
            buffer.advance_checked(line_end + 2);
            ParseOutcome::Invalid(format!("unknown command {other}"))
        }
    }
}

/// Serialises a response into the wire format.
pub fn encode_response(response: &Response, out: &mut Vec<u8>) {
    match response {
        Response::Values(values) => {
            for v in values {
                out.extend_from_slice(b"VALUE ");
                out.extend_from_slice(&v.key);
                out.extend_from_slice(format!(" {} {}\r\n", v.flags, v.data.len()).as_bytes());
                out.extend_from_slice(&v.data);
                out.extend_from_slice(b"\r\n");
            }
            out.extend_from_slice(b"END\r\n");
        }
        Response::Stored => out.extend_from_slice(b"STORED\r\n"),
        Response::NotStored => out.extend_from_slice(b"NOT_STORED\r\n"),
        Response::Deleted => out.extend_from_slice(b"DELETED\r\n"),
        Response::NotFound => out.extend_from_slice(b"NOT_FOUND\r\n"),
        Response::Ok => out.extend_from_slice(b"OK\r\n"),
        Response::Version(v) => out.extend_from_slice(format!("VERSION {v}\r\n").as_bytes()),
        Response::Stats(stats) => {
            for (name, value) in stats {
                out.extend_from_slice(format!("STAT {name} {value}\r\n").as_bytes());
            }
            out.extend_from_slice(b"END\r\n");
        }
        Response::ClientError(msg) => {
            out.extend_from_slice(format!("CLIENT_ERROR {msg}\r\n").as_bytes())
        }
        Response::Error => out.extend_from_slice(b"ERROR\r\n"),
    }
}

fn find_crlf(buffer: &[u8], from: usize) -> Option<usize> {
    buffer[from..]
        .windows(2)
        .position(|w| w == b"\r\n")
        .map(|p| p + from)
}

trait AdvanceChecked {
    fn advance_checked(&mut self, n: usize);
}

impl AdvanceChecked for BytesMut {
    fn advance_checked(&mut self, n: usize) {
        let n = n.min(self.len());
        let _ = self.split_to(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(data: &[u8]) -> BytesMut {
        BytesMut::from(data)
    }

    #[test]
    fn parses_get_with_multiple_keys() {
        let mut b = buf(b"get foo bar\r\n");
        match parse_command(&mut b) {
            ParseOutcome::Complete(Command::Get { keys }) => {
                assert_eq!(keys, vec![Bytes::from("foo"), Bytes::from("bar")]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(b.is_empty());
    }

    #[test]
    fn parses_set_with_data_block() {
        let mut b = buf(b"set foo 7 0 5\r\nhello\r\nget foo\r\n");
        match parse_command(&mut b) {
            ParseOutcome::Complete(Command::Store {
                verb,
                key,
                flags,
                data,
                noreply,
                ..
            }) => {
                assert_eq!(verb, StoreVerb::Set);
                assert_eq!(key, Bytes::from("foo"));
                assert_eq!(flags, 7);
                assert_eq!(data, Bytes::from("hello"));
                assert!(!noreply);
            }
            other => panic!("unexpected {other:?}"),
        }
        // The following command is still in the buffer.
        assert!(matches!(
            parse_command(&mut b),
            ParseOutcome::Complete(Command::Get { .. })
        ));
    }

    #[test]
    fn incomplete_input_waits_for_more() {
        let mut b = buf(b"set foo 0 0 10\r\nhel");
        assert_eq!(parse_command(&mut b), ParseOutcome::Incomplete);
        // Nothing consumed.
        assert_eq!(&b[..3], b"set");
        let mut partial_line = buf(b"get fo");
        assert_eq!(parse_command(&mut partial_line), ParseOutcome::Incomplete);
    }

    #[test]
    fn binary_safe_values() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"set bin 0 0 4\r\n");
        b.extend_from_slice(&[0, 255, 13, 10]);
        b.extend_from_slice(b"\r\n");
        match parse_command(&mut b) {
            ParseOutcome::Complete(Command::Store { data, .. }) => {
                assert_eq!(&data[..], &[0, 255, 13, 10]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn invalid_commands_are_consumed_and_reported() {
        let mut b = buf(b"bogus thing\r\nversion\r\n");
        assert!(matches!(parse_command(&mut b), ParseOutcome::Invalid(_)));
        assert!(matches!(
            parse_command(&mut b),
            ParseOutcome::Complete(Command::Version)
        ));
        let mut b = buf(b"set missingargs\r\n");
        assert!(matches!(parse_command(&mut b), ParseOutcome::Invalid(_)));
        let mut b = buf(b"get\r\n");
        assert!(matches!(parse_command(&mut b), ParseOutcome::Invalid(_)));
    }

    #[test]
    fn parses_delete_add_replace_and_admin() {
        let mut b = buf(b"delete foo noreply\r\nadd k 0 0 1\r\nx\r\nreplace k 0 0 1\r\ny\r\nstats\r\nflush_all\r\nquit\r\n");
        assert!(matches!(
            parse_command(&mut b),
            ParseOutcome::Complete(Command::Delete { noreply: true, .. })
        ));
        assert!(matches!(
            parse_command(&mut b),
            ParseOutcome::Complete(Command::Store {
                verb: StoreVerb::Add,
                ..
            })
        ));
        assert!(matches!(
            parse_command(&mut b),
            ParseOutcome::Complete(Command::Store {
                verb: StoreVerb::Replace,
                ..
            })
        ));
        assert!(matches!(
            parse_command(&mut b),
            ParseOutcome::Complete(Command::Stats)
        ));
        assert!(matches!(
            parse_command(&mut b),
            ParseOutcome::Complete(Command::FlushAll)
        ));
        assert!(matches!(
            parse_command(&mut b),
            ParseOutcome::Complete(Command::Quit)
        ));
    }

    #[test]
    fn parses_app_selector() {
        let mut b = buf(b"app tenant-a\r\nget foo\r\n");
        match parse_command(&mut b) {
            ParseOutcome::Complete(Command::App { id }) => {
                assert_eq!(id, Bytes::from("tenant-a"));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            parse_command(&mut b),
            ParseOutcome::Complete(Command::Get { .. })
        ));
        let mut b = buf(b"app\r\n");
        assert!(matches!(parse_command(&mut b), ParseOutcome::Invalid(_)));
        let mut b = buf(b"app one two\r\n");
        assert!(matches!(parse_command(&mut b), ParseOutcome::Invalid(_)));
    }

    #[test]
    fn encodes_responses() {
        let mut out = Vec::new();
        encode_response(
            &Response::Values(vec![Value {
                key: Bytes::from("foo"),
                flags: 3,
                data: Bytes::from("hello"),
            }]),
            &mut out,
        );
        assert_eq!(out, b"VALUE foo 3 5\r\nhello\r\nEND\r\n");
        let mut out = Vec::new();
        encode_response(&Response::Stored, &mut out);
        assert_eq!(out, b"STORED\r\n");
        let mut out = Vec::new();
        encode_response(
            &Response::Stats(vec![("gets".into(), "10".into())]),
            &mut out,
        );
        assert_eq!(out, b"STAT gets 10\r\nEND\r\n");
        let mut out = Vec::new();
        encode_response(&Response::ClientError("nope".into()), &mut out);
        assert!(out.starts_with(b"CLIENT_ERROR"));
    }
}
