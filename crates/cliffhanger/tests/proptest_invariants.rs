//! Property-based tests of the Cliffhanger algorithms' core invariants:
//! memory conservation under hill climbing, pointer bounds and size
//! conservation under cliff scaling, and byte budgets under arbitrary
//! request streams.

use cache_core::{Key, SlabConfig};
use cliffhanger::cliff_scale::{CliffScaler, PointerEvent};
use cliffhanger::partitioned_queue::{PartitionedQueue, PartitionedQueueConfig};
use cliffhanger::{Cliffhanger, CliffhangerConfig, HillClimber};
use proptest::prelude::*;

fn pointer_event() -> impl Strategy<Value = PointerEvent> {
    prop_oneof![
        Just(PointerEvent::RightQueueShadowHit),
        Just(PointerEvent::RightQueueTailHit),
        Just(PointerEvent::LeftQueueShadowHit),
        Just(PointerEvent::LeftQueueTailHit),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Algorithm 1 moves credits around but never creates or destroys
    /// memory, and never drives a queue below the configured floor.
    #[test]
    fn hill_climbing_conserves_memory_and_respects_floor(
        queues in 2usize..12,
        credit_kb in 1u64..16,
        floor_kb in 0u64..64,
        hits in prop::collection::vec(any::<u8>(), 1..500),
    ) {
        let total = 4u64 << 20;
        let credit = credit_kb * 1024;
        let floor = floor_kb * 1024;
        let mut climber = HillClimber::even_split(queues, total, credit, floor, 42);
        let initial_total = climber.total();
        for hit in hits {
            climber.on_shadow_hit(hit as usize % queues);
            prop_assert_eq!(climber.total(), initial_total);
            for &target in climber.targets() {
                prop_assert!(target >= floor.min(initial_total / queues as u64),
                    "target {} below floor {}", target, floor);
            }
        }
    }

    /// Algorithms 2–3 keep the two physical sizes summing to the queue size
    /// and keep the pointers bracketing the operating point, for any event
    /// sequence and any interleaved queue resizes.
    #[test]
    fn cliff_scaler_invariants(
        queue_items in 100u64..20_000,
        credit in 1u64..256,
        events in prop::collection::vec(pointer_event(), 1..400),
        resize_to in prop::option::of(50u64..30_000),
    ) {
        let mut scaler = CliffScaler::new(queue_items, credit);
        for (i, event) in events.iter().enumerate() {
            scaler.on_event(*event);
            if i == events.len() / 2 {
                if let Some(new_size) = resize_to {
                    scaler.set_queue_size(new_size);
                }
            }
            let size = scaler.queue_size();
            let (left_ptr, right_ptr) = scaler.pointers();
            prop_assert!(right_ptr >= size, "right pointer {} below size {}", right_ptr, size);
            prop_assert!(left_ptr <= size, "left pointer {} above size {}", left_ptr, size);
            let (left, right) = scaler.physical_sizes();
            prop_assert_eq!(left + right, size);
            let ratio = scaler.ratio();
            prop_assert!((0.0..=1.0).contains(&ratio));
        }
    }

    /// A partitioned queue with a fixed budget never exceeds it, no matter
    /// how requests arrive, and a full Cliffhanger cache never exceeds its
    /// total reservation by more than one in-flight item.
    #[test]
    fn partitioned_queue_respects_budget(
        budget_items in 16u64..256,
        keys in prop::collection::vec(any::<u16>(), 1..400),
    ) {
        let charge = 100u64;
        let mut queue: PartitionedQueue<()> = PartitionedQueue::new(PartitionedQueueConfig {
            target_bytes: budget_items * charge,
            charge_per_item: charge,
            cliff_shadow_items: 8,
            hill_shadow_entries: 64,
            credit_items: 4,
            cliff_min_items: 64,
            enable_cliff_scaling: true,
            ..PartitionedQueueConfig::default()
        });
        for k in keys {
            let key = Key::new(k as u64);
            if !queue.get(key).hit {
                queue.set(key, 52, ());
            }
            prop_assert!(queue.used_bytes() <= budget_items * charge);
            prop_assert!(queue.ratio() >= 0.0 && queue.ratio() <= 1.0);
        }
    }

    /// The managed cache conserves its total byte budget across arbitrary
    /// workloads (hill climbing only ever moves memory between classes).
    #[test]
    fn cliffhanger_cache_conserves_total_budget(
        requests in prop::collection::vec((any::<u16>(), 1u64..8_000), 1..300),
    ) {
        let config = CliffhangerConfig {
            slab: SlabConfig::new(64, 2.0, 8_192),
            total_bytes: 1 << 20,
            credit_bytes: 1 << 10,
            hill_shadow_bytes: 32 << 10,
            cliff_shadow_items: 8,
            min_class_bytes: 8 << 10,
            ..CliffhangerConfig::default()
        };
        let mut cache: Cliffhanger<()> = Cliffhanger::new(config);
        let total = cache.total_bytes();
        for (key, size) in requests {
            let key = Key::new(key as u64);
            let hit = cache.get(key, size).map(|(_, e)| e.hit).unwrap_or(false);
            if !hit {
                cache.set(key, size, ());
            }
            prop_assert_eq!(cache.total_bytes(), total);
            // Resizes are applied lazily (on the next insertion into the
            // shrunk class), so transient overshoot is bounded by the credits
            // moved so far — never unbounded.
            let slack = cache.config().credit_bytes * (cache.transfers() + 1);
            prop_assert!(cache.used_bytes() <= total + slack,
                "used {} exceeds reservation {} plus slack {}",
                cache.used_bytes(), total, slack);
        }
    }
}
