//! The Memcached ASCII protocol (the subset the paper's benchmarks use).
//!
//! Supported commands: `get` / `gets` (multi-key), `set`, `add`, `replace`,
//! `delete`, `stats`, `version`, `flush_all`, `quit`, and the multi-tenant
//! extensions `app <name>`, `app_create <name> <weight>` and `app_list`.
//! Parsing is incremental over a byte buffer so a connection handler can
//! feed it whatever the socket delivers.
//!
//! Two parsing entry points share the same grammar:
//!
//! * [`parse_command`] — stateless: a store command whose data block has not
//!   fully arrived consumes nothing and returns
//!   [`ParseOutcome::Incomplete`], so the caller re-parses the header line
//!   on every new read.
//! * [`Parser`] — stateful and resumable: the store header line is consumed
//!   the moment it is complete and the parser remembers it, so a value that
//!   trickles in over many reads costs one header parse total and the
//!   parser only ever waits for the exact number of data bytes outstanding.
//!   This is what the event-driven connection state machine uses.
//!
//! # The `app` extension
//!
//! Memcachier-style servers host many applications on one cache; the paper's
//! §3 analysis is entirely about how their memory shares should be divided.
//! `app <name>` selects the application *namespace* for the rest of the
//! session — equivalent to transparently prefixing every subsequent key with
//! `<name>:`, but enforced server-side (per-tenant engines and budgets), so
//! one tenant can never read, overwrite or evict another tenant's keys and
//! `flush_all` only clears the selected namespace. A connection that never
//! sends `app` runs in the `default` namespace and observes exactly the
//! pre-extension protocol.

use bytes::{Bytes, BytesMut};

/// A parsed client command.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// `get <key>+` — fetch one or more keys.
    Get {
        /// Requested keys.
        keys: Vec<Bytes>,
    },
    /// `set` / `add` / `replace` — store a value.
    Store {
        /// Which store verb was used.
        verb: StoreVerb,
        /// The key being stored.
        key: Bytes,
        /// Opaque client flags echoed back on GET.
        flags: u32,
        /// Expiration time in seconds (0 = never); stored but not enforced.
        exptime: u32,
        /// The value payload.
        data: Bytes,
        /// Whether the client asked to suppress the reply.
        noreply: bool,
    },
    /// `delete <key>`.
    Delete {
        /// The key to remove.
        key: Bytes,
        /// Whether the client asked to suppress the reply.
        noreply: bool,
    },
    /// `app <name>` — select the application namespace for this session.
    App {
        /// The application name (validated against the server's tenant
        /// directory by the executor, not the parser).
        id: Bytes,
    },
    /// `app_create <name> <weight>` — host a new application namespace
    /// live, carving its budget out of the existing tenants.
    AppCreate {
        /// The application name (validated by the executor).
        name: Bytes,
        /// Reservation weight; the parser guarantees it is at least 1.
        weight: u64,
    },
    /// `app_list` — list the hosted applications.
    AppList,
    /// `stats`, `stats json` or `stats prom`.
    Stats {
        /// Which rendering the client asked for (`stats` alone is the
        /// legacy `STAT` line format).
        format: StatsFormat,
    },
    /// `version`.
    Version,
    /// `flush_all` — drop every item.
    FlushAll,
    /// `quit` — close the connection.
    Quit,
}

/// The rendering a `stats` command asked for.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StatsFormat {
    /// Legacy `STAT <name> <value>` lines (plain `stats`).
    #[default]
    Text,
    /// One-line versioned JSON document (`stats json`).
    Json,
    /// Prometheus text exposition (`stats prom`).
    Prom,
}

/// The store verbs of the protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreVerb {
    /// Store unconditionally.
    Set,
    /// Store only if the key is absent.
    Add,
    /// Store only if the key is present.
    Replace,
}

/// A server response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Values followed by `END` (the reply to `get`).
    Values(Vec<Value>),
    /// `STORED`.
    Stored,
    /// `NOT_STORED`.
    NotStored,
    /// `DELETED`.
    Deleted,
    /// `NOT_FOUND`.
    NotFound,
    /// `OK`.
    Ok,
    /// `VERSION <text>`.
    Version(String),
    /// `STAT <name> <value>` lines followed by `END`.
    Stats(Vec<(String, String)>),
    /// A machine-readable stats payload (JSON or Prometheus text)
    /// followed by `END` on its own line (the reply to `stats json` /
    /// `stats prom`).
    Blob(String),
    /// `APP <name> <weight> <budget>` lines followed by `END` (the reply to
    /// `app_list`).
    Apps(Vec<AppEntry>),
    /// `CLIENT_ERROR <message>`.
    ClientError(String),
    /// `SERVER_ERROR <message>` — the server, not the client, is the reason
    /// (e.g. the accept gate shedding load past `max_connections`).
    ServerError(String),
    /// `ERROR`.
    Error,
}

/// One hosted application in an `app_list` reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppEntry {
    /// The application name.
    pub name: String,
    /// Its reservation weight.
    pub weight: u64,
    /// Its live byte budget.
    pub budget_bytes: u64,
}

/// One value in a GET response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Value {
    /// The key.
    pub key: Bytes,
    /// Client flags stored with the item.
    pub flags: u32,
    /// The payload.
    pub data: Bytes,
}

/// The outcome of trying to parse one command from a buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseOutcome {
    /// A complete command was parsed and consumed from the buffer.
    Complete(Command),
    /// More bytes are needed.
    Incomplete,
    /// The buffer starts with something that is not a valid command; the
    /// offending line has been consumed.
    Invalid(String),
}

/// A store command whose header line has been parsed but whose data block
/// has not fully arrived.
#[derive(Clone, Debug, PartialEq, Eq)]
struct PendingStore {
    verb: StoreVerb,
    key: Bytes,
    flags: u32,
    exptime: u32,
    bytes: usize,
    noreply: bool,
}

impl PendingStore {
    /// Completes the store with its data block.
    fn complete(self, data: Bytes) -> Command {
        Command::Store {
            verb: self.verb,
            key: self.key,
            flags: self.flags,
            exptime: self.exptime,
            data,
            noreply: self.noreply,
        }
    }
}

/// The outcome of parsing one complete command line (without its data
/// block, for store verbs).
enum LineOutcome {
    Complete(Command),
    Store(PendingStore),
    Invalid(String),
}

/// Parses one command line (CRLF excluded). Shared by the stateless
/// [`parse_command`] and the resumable [`Parser`], so the two entry points
/// cannot drift apart.
fn parse_line(line: &[u8]) -> LineOutcome {
    let line_str = String::from_utf8_lossy(line).to_string();
    let mut parts = line_str.split_ascii_whitespace();
    let Some(verb) = parts.next() else {
        return LineOutcome::Invalid("empty command".to_string());
    };
    match verb {
        "get" | "gets" => {
            let keys: Vec<Bytes> = parts
                .map(|k| Bytes::copy_from_slice(k.as_bytes()))
                .collect();
            if keys.is_empty() {
                LineOutcome::Invalid("get requires at least one key".to_string())
            } else {
                LineOutcome::Complete(Command::Get { keys })
            }
        }
        "set" | "add" | "replace" => {
            let verb = match verb {
                "set" => StoreVerb::Set,
                "add" => StoreVerb::Add,
                _ => StoreVerb::Replace,
            };
            let key = parts.next().map(str::to_string);
            let flags = parts.next().and_then(|s| s.parse::<u32>().ok());
            let exptime = parts.next().and_then(|s| s.parse::<u32>().ok());
            let bytes = parts.next().and_then(|s| s.parse::<usize>().ok());
            let noreply = parts.next() == Some("noreply");
            let (Some(key), Some(flags), Some(exptime), Some(bytes)) = (key, flags, exptime, bytes)
            else {
                return LineOutcome::Invalid("bad store command".to_string());
            };
            LineOutcome::Store(PendingStore {
                verb,
                key: Bytes::copy_from_slice(key.as_bytes()),
                flags,
                exptime,
                bytes,
                noreply,
            })
        }
        "delete" => {
            let key = parts.next().map(str::to_string);
            let noreply = parts.next() == Some("noreply");
            match key {
                Some(key) => LineOutcome::Complete(Command::Delete {
                    key: Bytes::copy_from_slice(key.as_bytes()),
                    noreply,
                }),
                None => LineOutcome::Invalid("delete requires a key".to_string()),
            }
        }
        "app" => {
            let id = parts.next().map(str::to_string);
            let extra = parts.next().is_some();
            match id {
                Some(id) if !extra => LineOutcome::Complete(Command::App {
                    id: Bytes::copy_from_slice(id.as_bytes()),
                }),
                Some(_) => LineOutcome::Invalid("app takes exactly one name".to_string()),
                None => LineOutcome::Invalid("app requires a name".to_string()),
            }
        }
        "app_create" => {
            let name = parts.next().map(str::to_string);
            let weight = parts.next().and_then(|w| w.parse::<u64>().ok());
            let extra = parts.next().is_some();
            match (name, weight) {
                (Some(name), Some(weight)) if weight >= 1 && !extra => {
                    LineOutcome::Complete(Command::AppCreate {
                        name: Bytes::copy_from_slice(name.as_bytes()),
                        weight,
                    })
                }
                _ => LineOutcome::Invalid(
                    "app_create takes a name and an integer weight >= 1".to_string(),
                ),
            }
        }
        "app_list" => LineOutcome::Complete(Command::AppList),
        "stats" => {
            let format = match (parts.next(), parts.next()) {
                (None, _) => Some(StatsFormat::Text),
                (Some("json"), None) => Some(StatsFormat::Json),
                (Some("prom"), None) => Some(StatsFormat::Prom),
                _ => None,
            };
            match format {
                Some(format) => LineOutcome::Complete(Command::Stats { format }),
                None => LineOutcome::Invalid("stats takes at most one of: json, prom".to_string()),
            }
        }
        "version" => LineOutcome::Complete(Command::Version),
        "flush_all" => LineOutcome::Complete(Command::FlushAll),
        "quit" => LineOutcome::Complete(Command::Quit),
        other => LineOutcome::Invalid(format!("unknown command {other}")),
    }
}

/// Attempts to parse one command from the front of `buffer`, consuming the
/// bytes it used. A store command whose data block is not fully buffered
/// consumes nothing (see [`Parser`] for the resumable alternative).
pub fn parse_command(buffer: &mut BytesMut) -> ParseOutcome {
    let Some(line_end) = find_crlf(buffer, 0) else {
        return ParseOutcome::Incomplete;
    };
    match parse_line(&buffer[..line_end]) {
        LineOutcome::Complete(command) => {
            buffer.advance_checked(line_end + 2);
            ParseOutcome::Complete(command)
        }
        LineOutcome::Invalid(message) => {
            buffer.advance_checked(line_end + 2);
            ParseOutcome::Invalid(message)
        }
        LineOutcome::Store(pending) => {
            // The data block is <bytes> bytes followed by CRLF.
            let needed = line_end + 2 + pending.bytes + 2;
            if buffer.len() < needed {
                return ParseOutcome::Incomplete;
            }
            let data = Bytes::copy_from_slice(&buffer[line_end + 2..line_end + 2 + pending.bytes]);
            let ok = &buffer[line_end + 2 + pending.bytes..needed] == b"\r\n";
            buffer.advance_checked(needed);
            if !ok {
                return ParseOutcome::Invalid("bad data chunk terminator".to_string());
            }
            ParseOutcome::Complete(pending.complete(data))
        }
    }
}

/// The largest data block the resumable parser will buffer. Values past
/// the largest slab class can never be admitted anyway, so buffering more
/// than this only serves memory-exhaustion attacks; the parser swallows
/// the declared bytes without storing them and reports
/// `object too large` (Memcached's `-I` behaviour). Comfortably above any
/// slab geometry the backend configures.
pub const MAX_DATA_BYTES: usize = 16 << 20;
/// The longest command line the resumable parser will buffer before
/// declaring it malformed and discarding through to its CRLF.
pub const MAX_LINE_BYTES: usize = 8 << 10;

/// What the resumable parser is in the middle of.
#[derive(Debug, Default)]
enum ParseState {
    /// At a command-line boundary.
    #[default]
    Idle,
    /// A store header was consumed; waiting for its data block.
    Data(PendingStore),
    /// Swallowing an oversized data block (plus CRLF) without buffering it;
    /// reports the error once fully discarded, keeping the stream in sync.
    DiscardData {
        remaining: usize,
        message: &'static str,
    },
    /// Swallowing an over-long command line through to its CRLF.
    DiscardLine,
}

/// A resumable incremental parser.
///
/// Produces exactly the same command stream as repeated [`parse_command`]
/// calls over the same bytes, but consumes a store command's header line as
/// soon as it is complete and remembers it across calls: a `set` whose value
/// arrives over many reads costs one header parse total, and the buffer
/// never has to hold header and value contiguously from scratch on every
/// poll. One `Parser` per connection; it carries the mid-command state.
///
/// Unlike the stateless [`parse_command`], the parser also bounds what it
/// will buffer: a data block past [`MAX_DATA_BYTES`] or a command line past
/// [`MAX_LINE_BYTES`] is *discarded in stride* (consumed without being
/// stored) and answered with a single `CLIENT_ERROR`, so a hostile or
/// broken client cannot balloon server memory with one declared-enormous
/// `set` or an endless CRLF-less line.
#[derive(Debug, Default)]
pub struct Parser {
    state: ParseState,
}

impl Parser {
    /// A parser with no mid-command state.
    pub fn new() -> Parser {
        Parser::default()
    }

    /// Whether the parser is mid-command (the front of the buffer is value
    /// bytes or discard-in-progress, not a command line).
    pub fn mid_command(&self) -> bool {
        !matches!(self.state, ParseState::Idle)
    }

    /// Attempts to parse one command from the front of `buffer`, consuming
    /// the bytes it used and stashing mid-command state on `self`.
    pub fn parse(&mut self, buffer: &mut BytesMut) -> ParseOutcome {
        loop {
            match std::mem::take(&mut self.state) {
                ParseState::Data(pending) => {
                    let needed = pending.bytes + 2;
                    if buffer.len() < needed {
                        self.state = ParseState::Data(pending);
                        return ParseOutcome::Incomplete;
                    }
                    let data = Bytes::copy_from_slice(&buffer[..pending.bytes]);
                    let ok = &buffer[pending.bytes..needed] == b"\r\n";
                    buffer.advance_checked(needed);
                    return if ok {
                        ParseOutcome::Complete(pending.complete(data))
                    } else {
                        ParseOutcome::Invalid("bad data chunk terminator".to_string())
                    };
                }
                ParseState::DiscardData { remaining, message } => {
                    let drop = remaining.min(buffer.len());
                    buffer.advance_checked(drop);
                    if drop < remaining {
                        self.state = ParseState::DiscardData {
                            remaining: remaining - drop,
                            message,
                        };
                        return ParseOutcome::Incomplete;
                    }
                    return ParseOutcome::Invalid(message.to_string());
                }
                ParseState::DiscardLine => match find_crlf(buffer, 0) {
                    Some(line_end) => {
                        buffer.advance_checked(line_end + 2);
                        return ParseOutcome::Invalid("command line too long".to_string());
                    }
                    None => {
                        discard_keeping_split_cr(buffer);
                        self.state = ParseState::DiscardLine;
                        return ParseOutcome::Incomplete;
                    }
                },
                ParseState::Idle => {
                    let Some(line_end) = find_crlf(buffer, 0) else {
                        if buffer.len() > MAX_LINE_BYTES {
                            discard_keeping_split_cr(buffer);
                            self.state = ParseState::DiscardLine;
                        }
                        return ParseOutcome::Incomplete;
                    };
                    let outcome = parse_line(&buffer[..line_end]);
                    buffer.advance_checked(line_end + 2);
                    match outcome {
                        LineOutcome::Complete(command) => return ParseOutcome::Complete(command),
                        LineOutcome::Invalid(message) => return ParseOutcome::Invalid(message),
                        LineOutcome::Store(pending) if pending.bytes > MAX_DATA_BYTES => {
                            // Swallow the declared block + CRLF unbuffered.
                            self.state = ParseState::DiscardData {
                                remaining: pending.bytes + 2,
                                message: "object too large for cache",
                            };
                        }
                        // Header consumed and remembered; loop to the data.
                        LineOutcome::Store(pending) => self.state = ParseState::Data(pending),
                    }
                }
            }
        }
    }
}

/// Serialises a response into the wire format.
pub fn encode_response(response: &Response, out: &mut Vec<u8>) {
    match response {
        Response::Values(values) => {
            for v in values {
                out.extend_from_slice(b"VALUE ");
                out.extend_from_slice(&v.key);
                out.extend_from_slice(format!(" {} {}\r\n", v.flags, v.data.len()).as_bytes());
                out.extend_from_slice(&v.data);
                out.extend_from_slice(b"\r\n");
            }
            out.extend_from_slice(b"END\r\n");
        }
        Response::Stored => out.extend_from_slice(b"STORED\r\n"),
        Response::NotStored => out.extend_from_slice(b"NOT_STORED\r\n"),
        Response::Deleted => out.extend_from_slice(b"DELETED\r\n"),
        Response::NotFound => out.extend_from_slice(b"NOT_FOUND\r\n"),
        Response::Ok => out.extend_from_slice(b"OK\r\n"),
        Response::Version(v) => out.extend_from_slice(format!("VERSION {v}\r\n").as_bytes()),
        Response::Stats(stats) => {
            for (name, value) in stats {
                out.extend_from_slice(format!("STAT {name} {value}\r\n").as_bytes());
            }
            out.extend_from_slice(b"END\r\n");
        }
        Response::Blob(payload) => {
            out.extend_from_slice(payload.as_bytes());
            if !payload.ends_with('\n') {
                out.extend_from_slice(b"\r\n");
            }
            out.extend_from_slice(b"END\r\n");
        }
        Response::Apps(apps) => {
            for app in apps {
                out.extend_from_slice(
                    format!("APP {} {} {}\r\n", app.name, app.weight, app.budget_bytes).as_bytes(),
                );
            }
            out.extend_from_slice(b"END\r\n");
        }
        Response::ClientError(msg) => {
            out.extend_from_slice(format!("CLIENT_ERROR {msg}\r\n").as_bytes())
        }
        Response::ServerError(msg) => {
            out.extend_from_slice(format!("SERVER_ERROR {msg}\r\n").as_bytes())
        }
        Response::Error => out.extend_from_slice(b"ERROR\r\n"),
    }
}

/// Discards a CRLF-less buffer, retaining a trailing `\r`: the line's
/// terminator may straddle a read boundary (`…\r` now, `\n` next read),
/// and dropping the `\r` would make the discard overrun into the *next*
/// command's line — desynchronizing every later pipelined response.
fn discard_keeping_split_cr(buffer: &mut BytesMut) {
    let keep = usize::from(buffer.last() == Some(&b'\r'));
    let drop = buffer.len() - keep;
    let _ = buffer.split_to(drop);
}

fn find_crlf(buffer: &[u8], from: usize) -> Option<usize> {
    buffer[from..]
        .windows(2)
        .position(|w| w == b"\r\n")
        .map(|p| p + from)
}

trait AdvanceChecked {
    fn advance_checked(&mut self, n: usize);
}

impl AdvanceChecked for BytesMut {
    fn advance_checked(&mut self, n: usize) {
        let n = n.min(self.len());
        let _ = self.split_to(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(data: &[u8]) -> BytesMut {
        BytesMut::from(data)
    }

    #[test]
    fn parses_get_with_multiple_keys() {
        let mut b = buf(b"get foo bar\r\n");
        match parse_command(&mut b) {
            ParseOutcome::Complete(Command::Get { keys }) => {
                assert_eq!(keys, vec![Bytes::from("foo"), Bytes::from("bar")]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(b.is_empty());
    }

    #[test]
    fn parses_set_with_data_block() {
        let mut b = buf(b"set foo 7 0 5\r\nhello\r\nget foo\r\n");
        match parse_command(&mut b) {
            ParseOutcome::Complete(Command::Store {
                verb,
                key,
                flags,
                data,
                noreply,
                ..
            }) => {
                assert_eq!(verb, StoreVerb::Set);
                assert_eq!(key, Bytes::from("foo"));
                assert_eq!(flags, 7);
                assert_eq!(data, Bytes::from("hello"));
                assert!(!noreply);
            }
            other => panic!("unexpected {other:?}"),
        }
        // The following command is still in the buffer.
        assert!(matches!(
            parse_command(&mut b),
            ParseOutcome::Complete(Command::Get { .. })
        ));
    }

    #[test]
    fn incomplete_input_waits_for_more() {
        let mut b = buf(b"set foo 0 0 10\r\nhel");
        assert_eq!(parse_command(&mut b), ParseOutcome::Incomplete);
        // Nothing consumed.
        assert_eq!(&b[..3], b"set");
        let mut partial_line = buf(b"get fo");
        assert_eq!(parse_command(&mut partial_line), ParseOutcome::Incomplete);
    }

    #[test]
    fn binary_safe_values() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"set bin 0 0 4\r\n");
        b.extend_from_slice(&[0, 255, 13, 10]);
        b.extend_from_slice(b"\r\n");
        match parse_command(&mut b) {
            ParseOutcome::Complete(Command::Store { data, .. }) => {
                assert_eq!(&data[..], &[0, 255, 13, 10]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn invalid_commands_are_consumed_and_reported() {
        let mut b = buf(b"bogus thing\r\nversion\r\n");
        assert!(matches!(parse_command(&mut b), ParseOutcome::Invalid(_)));
        assert!(matches!(
            parse_command(&mut b),
            ParseOutcome::Complete(Command::Version)
        ));
        let mut b = buf(b"set missingargs\r\n");
        assert!(matches!(parse_command(&mut b), ParseOutcome::Invalid(_)));
        let mut b = buf(b"get\r\n");
        assert!(matches!(parse_command(&mut b), ParseOutcome::Invalid(_)));
    }

    #[test]
    fn parses_delete_add_replace_and_admin() {
        let mut b = buf(b"delete foo noreply\r\nadd k 0 0 1\r\nx\r\nreplace k 0 0 1\r\ny\r\nstats\r\nflush_all\r\nquit\r\n");
        assert!(matches!(
            parse_command(&mut b),
            ParseOutcome::Complete(Command::Delete { noreply: true, .. })
        ));
        assert!(matches!(
            parse_command(&mut b),
            ParseOutcome::Complete(Command::Store {
                verb: StoreVerb::Add,
                ..
            })
        ));
        assert!(matches!(
            parse_command(&mut b),
            ParseOutcome::Complete(Command::Store {
                verb: StoreVerb::Replace,
                ..
            })
        ));
        assert!(matches!(
            parse_command(&mut b),
            ParseOutcome::Complete(Command::Stats {
                format: StatsFormat::Text
            })
        ));
        assert!(matches!(
            parse_command(&mut b),
            ParseOutcome::Complete(Command::FlushAll)
        ));
        assert!(matches!(
            parse_command(&mut b),
            ParseOutcome::Complete(Command::Quit)
        ));
    }

    #[test]
    fn parses_app_selector() {
        let mut b = buf(b"app tenant-a\r\nget foo\r\n");
        match parse_command(&mut b) {
            ParseOutcome::Complete(Command::App { id }) => {
                assert_eq!(id, Bytes::from("tenant-a"));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            parse_command(&mut b),
            ParseOutcome::Complete(Command::Get { .. })
        ));
        let mut b = buf(b"app\r\n");
        assert!(matches!(parse_command(&mut b), ParseOutcome::Invalid(_)));
        let mut b = buf(b"app one two\r\n");
        assert!(matches!(parse_command(&mut b), ParseOutcome::Invalid(_)));
    }

    #[test]
    fn parses_app_create_and_app_list() {
        let mut b = buf(b"app_create tenant-x 3\r\napp_list\r\n");
        match parse_command(&mut b) {
            ParseOutcome::Complete(Command::AppCreate { name, weight }) => {
                assert_eq!(name, Bytes::from("tenant-x"));
                assert_eq!(weight, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            parse_command(&mut b),
            ParseOutcome::Complete(Command::AppList)
        ));
        for bad in [
            &b"app_create\r\n"[..],
            b"app_create lonely\r\n",
            b"app_create name 0\r\n",
            b"app_create name nope\r\n",
            b"app_create name 1 extra\r\n",
        ] {
            let mut b = buf(bad);
            assert!(
                matches!(parse_command(&mut b), ParseOutcome::Invalid(_)),
                "{:?} must be invalid",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn resumable_parser_consumes_the_header_once() {
        let mut parser = Parser::new();
        let mut b = buf(b"set foo 7 0 5\r\nhe");
        assert_eq!(parser.parse(&mut b), ParseOutcome::Incomplete);
        // The header line is consumed and remembered; only value bytes wait.
        assert!(parser.mid_command());
        assert_eq!(&b[..], b"he");
        b.extend_from_slice(b"llo");
        assert_eq!(parser.parse(&mut b), ParseOutcome::Incomplete);
        b.extend_from_slice(b"\r\nget foo\r\n");
        match parser.parse(&mut b) {
            ParseOutcome::Complete(Command::Store {
                verb, key, data, ..
            }) => {
                assert_eq!(verb, StoreVerb::Set);
                assert_eq!(key, Bytes::from("foo"));
                assert_eq!(data, Bytes::from("hello"));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(!parser.mid_command());
        assert!(matches!(
            parser.parse(&mut b),
            ParseOutcome::Complete(Command::Get { .. })
        ));
        assert!(b.is_empty());
    }

    #[test]
    fn resumable_parser_rejects_a_bad_terminator_and_recovers() {
        let mut parser = Parser::new();
        let mut b = buf(b"set foo 0 0 2\r\nxxYYversion\r\n");
        assert!(matches!(parser.parse(&mut b), ParseOutcome::Invalid(_)));
        assert!(!parser.mid_command());
        assert!(matches!(
            parser.parse(&mut b),
            ParseOutcome::Complete(Command::Version)
        ));
    }

    #[test]
    fn resumable_parser_discards_oversized_data_blocks_in_stride() {
        let mut parser = Parser::new();
        let huge = MAX_DATA_BYTES + 10;
        let mut b = buf(format!("set big 0 0 {huge}\r\n").as_bytes());
        // The header alone produces no outcome and buffers nothing.
        assert_eq!(parser.parse(&mut b), ParseOutcome::Incomplete);
        assert!(parser.mid_command());
        assert!(b.is_empty());
        // Feed the declared block in chunks; the parser consumes each chunk
        // whole without accumulating it.
        let mut sent = 0usize;
        let chunk = vec![b'x'; 1 << 20];
        while sent + chunk.len() <= huge {
            b.extend_from_slice(&chunk);
            sent += chunk.len();
            assert_eq!(parser.parse(&mut b), ParseOutcome::Incomplete);
            assert!(b.is_empty(), "discard must not buffer the block");
        }
        b.extend_from_slice(&vec![b'x'; huge - sent]);
        b.extend_from_slice(b"\r\nversion\r\n");
        match parser.parse(&mut b) {
            ParseOutcome::Invalid(message) => assert!(message.contains("too large"), "{message}"),
            other => panic!("unexpected {other:?}"),
        }
        // The stream is still in sync afterwards.
        assert!(matches!(
            parser.parse(&mut b),
            ParseOutcome::Complete(Command::Version)
        ));
    }

    #[test]
    fn resumable_parser_discards_endless_lines() {
        let mut parser = Parser::new();
        let mut b = BytesMut::new();
        // A CRLF-less firehose: consumed, never accumulated.
        for _ in 0..4 {
            b.extend_from_slice(&vec![b'a'; MAX_LINE_BYTES]);
            assert_eq!(parser.parse(&mut b), ParseOutcome::Incomplete);
        }
        assert!(b.len() <= MAX_LINE_BYTES, "long line must not accumulate");
        assert!(parser.mid_command());
        b.extend_from_slice(b"zzz\r\nstats\r\n");
        match parser.parse(&mut b) {
            ParseOutcome::Invalid(message) => assert!(message.contains("too long"), "{message}"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            parser.parse(&mut b),
            ParseOutcome::Complete(Command::Stats { .. })
        ));
    }

    #[test]
    fn parses_stats_formats() {
        for (line, format) in [
            (&b"stats\r\n"[..], StatsFormat::Text),
            (b"stats json\r\n", StatsFormat::Json),
            (b"stats prom\r\n", StatsFormat::Prom),
        ] {
            let mut b = buf(line);
            match parse_command(&mut b) {
                ParseOutcome::Complete(Command::Stats { format: got }) => assert_eq!(got, format),
                other => panic!("unexpected {other:?}"),
            }
        }
        for bad in [&b"stats yaml\r\n"[..], b"stats json extra\r\n"] {
            let mut b = buf(bad);
            assert!(matches!(parse_command(&mut b), ParseOutcome::Invalid(_)));
        }
    }

    #[test]
    fn encodes_blob_responses() {
        // A single-line JSON document gains its own CRLF before END.
        let mut out = Vec::new();
        encode_response(&Response::Blob("{\"schema\":\"x\"}".into()), &mut out);
        assert_eq!(out, b"{\"schema\":\"x\"}\r\nEND\r\n");
        // Newline-terminated Prometheus text is not double-terminated.
        let mut out = Vec::new();
        encode_response(&Response::Blob("a 1\nb 2\n".into()), &mut out);
        assert_eq!(out, b"a 1\nb 2\nEND\r\n");
    }

    #[test]
    fn oversized_line_discard_handles_a_split_crlf() {
        // The over-long line's terminating CRLF straddles a read boundary:
        // the discard must not eat the '\r' and overrun into the next
        // command (which would desynchronize the pipelined session).
        let mut parser = Parser::new();
        let mut b = BytesMut::new();
        b.extend_from_slice(&vec![b'a'; MAX_LINE_BYTES + 10]);
        b.extend_from_slice(b"\r");
        assert_eq!(parser.parse(&mut b), ParseOutcome::Incomplete);
        assert!(parser.mid_command());
        b.extend_from_slice(b"\nget foo\r\n");
        match parser.parse(&mut b) {
            ParseOutcome::Invalid(message) => assert!(message.contains("too long"), "{message}"),
            other => panic!("unexpected {other:?}"),
        }
        match parser.parse(&mut b) {
            ParseOutcome::Complete(Command::Get { keys }) => {
                assert_eq!(keys, vec![Bytes::from("foo")], "next command intact");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn resumable_parser_matches_parse_command_on_a_pipelined_stream() {
        let stream: &[u8] =
            b"set a 1 0 3\r\nabc\r\nget a b\r\ndelete a noreply\r\nbogus\r\napp t1\r\nquit\r\n";
        let mut all_at_once = buf(stream);
        let mut one_byte_at_a_time = BytesMut::new();
        let mut parser = Parser::new();
        let mut resumed = Vec::new();
        for &byte in stream {
            one_byte_at_a_time.extend_from_slice(&[byte]);
            loop {
                match parser.parse(&mut one_byte_at_a_time) {
                    ParseOutcome::Incomplete => break,
                    outcome => resumed.push(outcome),
                }
            }
        }
        let mut reference = Vec::new();
        loop {
            match parse_command(&mut all_at_once) {
                ParseOutcome::Incomplete => break,
                outcome => reference.push(outcome),
            }
        }
        assert_eq!(resumed, reference);
    }

    #[test]
    fn encodes_responses() {
        let mut out = Vec::new();
        encode_response(
            &Response::Values(vec![Value {
                key: Bytes::from("foo"),
                flags: 3,
                data: Bytes::from("hello"),
            }]),
            &mut out,
        );
        assert_eq!(out, b"VALUE foo 3 5\r\nhello\r\nEND\r\n");
        let mut out = Vec::new();
        encode_response(&Response::Stored, &mut out);
        assert_eq!(out, b"STORED\r\n");
        let mut out = Vec::new();
        encode_response(
            &Response::Stats(vec![("gets".into(), "10".into())]),
            &mut out,
        );
        assert_eq!(out, b"STAT gets 10\r\nEND\r\n");
        let mut out = Vec::new();
        encode_response(&Response::ClientError("nope".into()), &mut out);
        assert!(out.starts_with(b"CLIENT_ERROR"));
        let mut out = Vec::new();
        encode_response(
            &Response::ServerError("out of connections".into()),
            &mut out,
        );
        assert_eq!(out, b"SERVER_ERROR out of connections\r\n");
        let mut out = Vec::new();
        encode_response(
            &Response::Apps(vec![AppEntry {
                name: "alpha".into(),
                weight: 2,
                budget_bytes: 1024,
            }]),
            &mut out,
        );
        assert_eq!(out, b"APP alpha 2 1024\r\nEND\r\n");
    }
}
