//! Integration tests of the TCP server driven through the client with the
//! Facebook-ETC-like workload — the setup behind the paper's
//! micro-benchmarks, scaled down to test size.

use bytes::Bytes;
use cliffhanger_repro::prelude::*;
use cliffhanger_repro::workloads::{etc_workload, EtcConfig};
use std::collections::HashMap;

fn start(mode: BackendMode, total_bytes: u64) -> CacheServer {
    CacheServer::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        backend: BackendConfig {
            total_bytes,
            mode,
            ..BackendConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("server must start")
}

#[test]
fn etc_workload_over_the_wire_produces_hits() {
    let server = start(BackendMode::Cliffhanger, 16 << 20);
    let mut client = CacheClient::connect(server.local_addr()).unwrap();

    let workload = etc_workload(
        &EtcConfig {
            num_keys: 2_000,
            ..EtcConfig::default()
        },
        10_000,
    );
    let mut local_hits = 0u64;
    let mut local_gets = 0u64;
    for request in workload.iter() {
        let key = format!("etc:{}", request.key.raw());
        match request.op {
            Op::Get => {
                local_gets += 1;
                match client.get(key.as_bytes()).unwrap() {
                    Some(_) => local_hits += 1,
                    None => {
                        // Demand fill, as a look-aside client would.
                        let value = vec![0x42u8; request.size as usize];
                        assert!(client.set(key.as_bytes(), 0, &value).unwrap());
                    }
                }
            }
            Op::Set => {
                let value = vec![0x42u8; request.size as usize];
                assert!(client.set(key.as_bytes(), 0, &value).unwrap());
            }
            Op::Delete => {
                let _ = client.delete(key.as_bytes()).unwrap();
            }
        }
    }
    assert!(local_gets > 5_000);
    let hit_rate = local_hits as f64 / local_gets as f64;
    assert!(
        hit_rate > 0.5,
        "a 16 MB cache should absorb a 2k-key ETC workload, hit rate {hit_rate:.3}"
    );

    // The server-side statistics agree with what the client observed.
    let stats: HashMap<String, String> = client.stats().unwrap().into_iter().collect();
    let server_gets: u64 = stats["cmd_get"].parse().unwrap();
    let server_hits: u64 = stats["get_hits"].parse().unwrap();
    assert_eq!(server_gets, local_gets);
    assert_eq!(server_hits, local_hits);
}

#[test]
fn all_backend_modes_serve_the_same_semantics() {
    for mode in [
        BackendMode::Default,
        BackendMode::HillClimbing,
        BackendMode::Cliffhanger,
    ] {
        let server = start(mode, 8 << 20);
        let mut client = CacheClient::connect(server.local_addr()).unwrap();
        assert!(client.set(b"alpha", 3, b"one").unwrap());
        assert!(client.add(b"beta", 0, b"two").unwrap());
        assert!(!client.add(b"beta", 0, b"three").unwrap());
        assert!(client.replace(b"alpha", 0, b"uno").unwrap());
        assert_eq!(client.get(b"alpha").unwrap().unwrap().1, b"uno");
        assert_eq!(client.get(b"beta").unwrap().unwrap().1, b"two");
        assert!(client.delete(b"beta").unwrap());
        assert!(client.get(b"beta").unwrap().is_none());
    }
}

#[test]
fn worst_case_all_miss_traffic_stays_correct_under_eviction() {
    // Every key unique and larger than the cache can hold: the §5.6 stress
    // pattern. Functional correctness (the just-written key is readable)
    // must hold even while everything else is being evicted.
    let server = start(BackendMode::Cliffhanger, 1 << 20);
    let cache = server.cache().clone();
    let payload = Bytes::from(vec![7u8; 2_000]);
    for i in 0..3_000u32 {
        let key = format!("unique:{i}");
        assert!(cache.set(key.as_bytes(), 0, payload.clone()));
        assert!(
            cache.get(key.as_bytes()).is_some(),
            "the item just written must be readable (iteration {i})"
        );
    }
    let stats: HashMap<String, String> = cache.stats().into_iter().collect();
    let bytes: u64 = stats["bytes"].parse().unwrap();
    assert!(bytes <= 1 << 20, "cache exceeded its budget: {bytes}");
    let evictions: u64 = stats["evictions"].parse().unwrap();
    assert!(evictions > 1_000, "evictions expected under pressure");
}
