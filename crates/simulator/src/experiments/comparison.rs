//! The paper's headline comparisons across all twenty applications:
//! Figure 2 (default vs the Dynacache solver), Figure 6 (default vs the
//! solver vs Cliffhanger), Figure 7 (miss reduction and memory savings of
//! Cliffhanger) and the headline summary of §1 / §5.2.

use crate::engine::{replay_app, CacheSystem, CliffhangerMode};
use crate::experiments::allocation::default_vs_dynacache;
use crate::experiments::ExperimentContext;
use crate::report::{FigureSeries, Table};
use crate::sweep::{memory_to_match, MemoryMatch};
use cache_core::stats::miss_reduction;
use cache_core::PolicyKind;
use serde::{Deserialize, Serialize};

/// Hit rates of one application under the three systems the paper compares.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AppComparisonRow {
    /// Application number (1–20).
    pub app: u32,
    /// Whether the application is cliff-prone (asterisked in the paper).
    pub has_cliff: bool,
    /// Hit ratio under Memcached's default scheme.
    pub default_rate: f64,
    /// Hit ratio under the Dynacache solver's static plan.
    pub dynacache_rate: f64,
    /// Hit ratio under Cliffhanger.
    pub cliffhanger_rate: f64,
    /// Miss counts (default, dynacache, cliffhanger) for miss-reduction math.
    pub misses: (u64, u64, u64),
    /// GET counts (default, dynacache, cliffhanger).
    pub gets: (u64, u64, u64),
}

impl AppComparisonRow {
    /// Miss reduction of the Dynacache solver relative to the default.
    pub fn dynacache_miss_reduction(&self) -> f64 {
        miss_reduction(
            cache_core::HitRatio::new(self.gets.0 - self.misses.0, self.gets.0),
            cache_core::HitRatio::new(self.gets.1 - self.misses.1, self.gets.1),
        )
    }

    /// Miss reduction of Cliffhanger relative to the default.
    pub fn cliffhanger_miss_reduction(&self) -> f64 {
        miss_reduction(
            cache_core::HitRatio::new(self.gets.0 - self.misses.0, self.gets.0),
            cache_core::HitRatio::new(self.gets.2 - self.misses.2, self.gets.2),
        )
    }
}

/// Replays every application under the default scheme, the Dynacache solver
/// and Cliffhanger. This is the expensive, shared computation behind
/// Figures 2, 6 and 7; run it once and feed the result to the figure
/// builders.
pub fn compare_apps(ctx: &ExperimentContext) -> Vec<AppComparisonRow> {
    ctx.app_numbers()
        .into_iter()
        .map(|app_number| {
            let trace = ctx.trace(app_number);
            let options = ctx.options(app_number);
            let (default, dynacache) = default_vs_dynacache(ctx, app_number);
            let cliffhanger = replay_app(trace, &CacheSystem::cliffhanger(), &options);
            AppComparisonRow {
                app: app_number,
                has_cliff: ctx.app(app_number).has_cliff,
                default_rate: default.hit_rate(),
                dynacache_rate: dynacache.hit_rate(),
                cliffhanger_rate: cliffhanger.hit_rate(),
                misses: (
                    default.stats.misses,
                    dynacache.stats.misses,
                    cliffhanger.stats.misses,
                ),
                gets: (
                    default.stats.gets,
                    dynacache.stats.gets,
                    cliffhanger.stats.gets,
                ),
            }
        })
        .collect()
}

fn app_label(row: &AppComparisonRow) -> f64 {
    row.app as f64
}

/// Figure 2: hit rates and miss reduction of the Dynacache solver vs the
/// default scheme, per application.
pub fn figure2_dynacache(rows: &[AppComparisonRow]) -> FigureSeries {
    let mut fig = FigureSeries::new(
        "Figure 2: default vs Dynacache solver (per application)",
        "application",
        &["default hit rate", "Dynacache hit rate", "miss reduction"],
    );
    for row in rows {
        fig.push(
            app_label(row),
            vec![
                row.default_rate,
                row.dynacache_rate,
                row.dynacache_miss_reduction(),
            ],
        );
    }
    fig
}

/// Figure 6: hit rates of the default scheme, the Dynacache solver and
/// Cliffhanger, per application.
pub fn figure6_hit_rates(rows: &[AppComparisonRow]) -> FigureSeries {
    let mut fig = FigureSeries::new(
        "Figure 6: default vs Dynacache solver vs Cliffhanger (per application)",
        "application",
        &[
            "default hit rate",
            "Dynacache hit rate",
            "Cliffhanger hit rate",
        ],
    );
    for row in rows {
        fig.push(
            app_label(row),
            vec![row.default_rate, row.dynacache_rate, row.cliffhanger_rate],
        );
    }
    fig
}

/// Figure 7: Cliffhanger's miss reduction per application plus the fraction
/// of memory Cliffhanger needs to match the default scheme's hit rate
/// (`sweep_iterations` bisection steps per application — each step replays
/// the application's whole trace).
pub fn figure7_savings(
    ctx: &ExperimentContext,
    rows: &[AppComparisonRow],
    sweep_iterations: usize,
) -> (FigureSeries, Vec<MemoryMatch>) {
    let mut fig = FigureSeries::new(
        "Figure 7: Cliffhanger miss reduction and memory savings (per application)",
        "application",
        &["miss reduction", "memory saved"],
    );
    let mut matches = Vec::new();
    for row in rows {
        let trace = ctx.trace(row.app);
        let options = ctx.options(row.app);
        let sweep = memory_to_match(
            trace,
            &CacheSystem::cliffhanger(),
            &options,
            row.default_rate,
            sweep_iterations,
            0.002,
        );
        fig.push(
            app_label(row),
            vec![row.cliffhanger_miss_reduction(), sweep.savings()],
        );
        matches.push(sweep);
    }
    (fig, matches)
}

/// The headline summary of §1 / §5.2: average hit-rate increase, overall
/// miss reduction and average memory needed to match the default hit rate.
pub fn headline_summary(rows: &[AppComparisonRow], matches: &[MemoryMatch]) -> Table {
    let n = rows.len().max(1) as f64;
    let avg_increase: f64 = rows
        .iter()
        .map(|r| r.cliffhanger_rate - r.default_rate)
        .sum::<f64>()
        / n;
    let total_default_misses: u64 = rows.iter().map(|r| r.misses.0).sum();
    let total_cliffhanger_misses: u64 = rows.iter().map(|r| r.misses.2).sum();
    let overall_miss_reduction = if total_default_misses == 0 {
        0.0
    } else {
        (total_default_misses as f64 - total_cliffhanger_misses as f64)
            / total_default_misses as f64
    };
    let avg_memory_fraction = if matches.is_empty() {
        1.0
    } else {
        matches.iter().map(|m| m.fraction_needed).sum::<f64>() / matches.len() as f64
    };

    let mut table = Table::new(
        "Headline: Cliffhanger vs the default scheme (paper: +1.2% hit rate, \
         -36.7% misses, 55% of the memory)",
        &["metric", "paper", "measured"],
    );
    table.push_row(vec![
        "average hit-rate increase".into(),
        "+1.2%".into(),
        format!("{:+.1}%", avg_increase * 100.0),
    ]);
    table.push_row(vec![
        "overall miss reduction".into(),
        "36.7%".into(),
        Table::pct(overall_miss_reduction),
    ]);
    table.push_row(vec![
        "memory needed for default hit rate".into(),
        "55%".into(),
        Table::pct(avg_memory_fraction),
    ]);
    table
}

/// §5.5 sanity check: replaying with ARC instead of LRU as the underlying
/// policy (the paper found ARC gives no improvement on these workloads).
pub fn arc_comparison(ctx: &ExperimentContext, apps: &[u32]) -> Table {
    let mut table = Table::new(
        "ARC vs LRU under the default allocation (paper §5.5: no improvement)",
        &["app", "LRU hit rate", "ARC hit rate"],
    );
    for &app_number in apps {
        let trace = ctx.trace(app_number);
        let options = ctx.options(app_number);
        let lru = replay_app(trace, &CacheSystem::default_lru(), &options);
        let arc = replay_app(trace, &CacheSystem::Default(PolicyKind::Arc), &options);
        table.push_row(vec![
            app_number.to_string(),
            Table::pct(lru.hit_rate()),
            Table::pct(arc.hit_rate()),
        ]);
    }
    table
}

/// Convenience wrapper used by the harness: the hill-climbing-only variant
/// across all applications (useful when reporting how much of the gain comes
/// from each algorithm in aggregate).
pub fn cliffhanger_variant_rate(
    ctx: &ExperimentContext,
    app_number: u32,
    mode: CliffhangerMode,
) -> f64 {
    let trace = ctx.trace(app_number);
    let options = ctx.options(app_number);
    replay_app(
        trace,
        &CacheSystem::Cliffhanger {
            mode,
            policy: PolicyKind::Lru,
        },
        &options,
    )
    .hit_rate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_support::shared_quick_context;
    use std::sync::OnceLock;

    fn shared_rows() -> &'static Vec<AppComparisonRow> {
        static ROWS: OnceLock<Vec<AppComparisonRow>> = OnceLock::new();
        ROWS.get_or_init(|| compare_apps(shared_quick_context()))
    }

    #[test]
    fn comparison_covers_all_twenty_apps() {
        let rows = shared_rows();
        assert_eq!(rows.len(), 20);
        for row in rows.iter() {
            assert!((0.0..=1.0).contains(&row.default_rate));
            assert!((0.0..=1.0).contains(&row.dynacache_rate));
            assert!((0.0..=1.0).contains(&row.cliffhanger_rate));
            assert!(row.gets.0 > 0);
        }
        // The asterisked applications are flagged.
        let cliffy: Vec<u32> = rows.iter().filter(|r| r.has_cliff).map(|r| r.app).collect();
        assert_eq!(cliffy, vec![1, 7, 10, 11, 18, 19]);
    }

    #[test]
    fn cliffhanger_helps_on_average() {
        let rows = shared_rows();
        let avg_default: f64 = rows.iter().map(|r| r.default_rate).sum::<f64>() / rows.len() as f64;
        let avg_cliff: f64 =
            rows.iter().map(|r| r.cliffhanger_rate).sum::<f64>() / rows.len() as f64;
        // Even on the tiny test trace the managed allocation should not lose
        // to first-come-first-serve on average.
        assert!(
            avg_cliff + 0.02 >= avg_default,
            "avg default {avg_default:.3} vs cliffhanger {avg_cliff:.3}"
        );
    }

    #[test]
    fn figures_have_one_point_per_app() {
        let rows = shared_rows();
        let fig2 = figure2_dynacache(rows);
        let fig6 = figure6_hit_rates(rows);
        assert_eq!(fig2.points.len(), 20);
        assert_eq!(fig6.points.len(), 20);
        assert_eq!(fig6.series_labels.len(), 3);
        assert!(fig2.to_csv().lines().count() > 20);
    }

    #[test]
    fn headline_summary_reports_three_metrics() {
        let rows = shared_rows();
        let table = headline_summary(rows, &[]);
        assert_eq!(table.rows.len(), 3);
        assert!(table.to_string().contains("miss reduction"));
    }
}
