//! The shared cache behind the TCP connections.
//!
//! The wire protocol uses arbitrary byte-string keys while the cache core
//! uses compact 64-bit keys, so the backend hashes the byte key (FNV-1a) and
//! stores the full key alongside the value to verify exact matches on
//! lookup — a hash collision is simply treated as a miss for the colliding
//! key, never as a wrong value.
//!
//! # Sharding
//!
//! The engine is partitioned into N independent shards, each owning a slice
//! of the key space (selected by a second hash of the key, decorrelated from
//! the 64-bit cache key), its own `SlabCache`/`Cliffhanger` instance with an
//! equal share of the memory budget, its own mutex and its own wire-level
//! counters. Requests for different shards never contend; `flush_all` and
//! `stats` fan out across every shard. This is the same shape as
//! Memcached's `-t`-threaded hash table + per-partition slab engines (and
//! pelikan's per-worker storage): the global-mutex design it replaces
//! serialized every request in the workspace's earlier revisions.
//!
//! # Cross-shard rebalancing
//!
//! Per-shard budgets start as an even split but are *dynamic*: every
//! [`ShardBalanceConfig::interval_requests`] wire requests, the thread that
//! crosses the interval runs one [`ShardRebalancer`] round — it samples each
//! shard's cumulative shadow-queue hits (the frequency-weighted hit-rate
//! gradient of paper §4.1), and moves a credit of budget from the shard with
//! the flattest gradient to the one with the steepest, via
//! [`Cliffhanger::shrink_total`] (which evicts immediately, so released
//! bytes are real) and [`Cliffhanger::grow_total`]. Shard locks are taken
//! one at a time, never nested, so the round cannot deadlock with request
//! traffic. Static even splits re-create exactly the rigid-partition
//! problem Cliffhanger exists to fix; the rebalancer closes that gap (see
//! `cliffhanger::shard_balance`). `stats` exposes the live budgets as
//! `shard:<i>:budget` and the round counters as `rebalance:*` lines.

use bytes::Bytes;
use cache_core::key::mix64;
use cache_core::store::AllocationMode;
use cache_core::{hash_bytes, CacheStats, Key, PolicyKind, SlabCache, SlabCacheConfig, SlabConfig};
use cliffhanger::{
    Cliffhanger, CliffhangerConfig, ShardBalanceConfig, ShardRebalancer, ShardSample,
};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Which allocation scheme the server runs (Tables 6–7 compare these).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendMode {
    /// Stock Memcached behaviour: first-come-first-serve slab allocation.
    Default,
    /// Hill climbing only (Algorithm 1).
    HillClimbing,
    /// The full Cliffhanger system (both algorithms).
    Cliffhanger,
}

/// Sharding below this per-shard budget hurts more than it helps (the slab
/// classes no longer fit), so auto-detection caps the shard count to keep
/// every shard at least this large.
const MIN_SHARD_BYTES: u64 = 1 << 20;

/// Upper bound on auto-detected shards; explicit configuration may exceed it.
const MAX_AUTO_SHARDS: usize = 64;

/// Returns the number of shards auto-detection would pick for this host:
/// one per available CPU (`num_cpus`-style), capped at [`MAX_AUTO_SHARDS`].
pub fn detect_shards() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_AUTO_SHARDS)
}

/// Backend configuration.
#[derive(Clone, Debug)]
pub struct BackendConfig {
    /// Total cache memory in bytes, split evenly across the shards.
    pub total_bytes: u64,
    /// Which allocation scheme to run.
    pub mode: BackendMode,
    /// Slab-class geometry.
    pub slab: SlabConfig,
    /// Number of independent shards; `0` auto-detects from the host's
    /// available parallelism. Both explicit and detected counts are capped
    /// so every shard keeps at least 1 MB of budget — the clamp is logged at
    /// construction and exposed as the `shards_requested` stats line; check
    /// [`SharedCache::shard_count`] (or `resolved_shards`) for the count
    /// actually running.
    pub shards: usize,
    /// Cross-shard budget rebalancing. Enabled by default; only effective
    /// with more than one shard and a managed (non-`Default`) allocator,
    /// since the gradient signal comes from the Cliffhanger shadow queues.
    pub rebalance: ShardBalanceConfig,
}

impl Default for BackendConfig {
    fn default() -> Self {
        BackendConfig {
            total_bytes: 64 << 20,
            mode: BackendMode::Cliffhanger,
            slab: SlabConfig::default(),
            shards: 0,
            rebalance: ShardBalanceConfig::default(),
        }
    }
}

impl BackendConfig {
    /// The shard count this configuration asks for, before the budget cap:
    /// the explicit value, or CPU-count detection when `shards == 0`.
    pub fn requested_shards(&self) -> usize {
        if self.shards > 0 {
            self.shards
        } else {
            detect_shards()
        }
    }

    /// The shard count this configuration resolves to: the explicit value,
    /// or CPU-count detection when `shards == 0`, in both cases capped so no
    /// shard drops below [`MIN_SHARD_BYTES`].
    pub fn resolved_shards(&self) -> usize {
        let budget_cap = (self.total_bytes / MIN_SHARD_BYTES).max(1) as usize;
        self.requested_shards().clamp(1, budget_cap.max(1))
    }
}

/// A value as stored by the server.
#[derive(Clone, Debug)]
struct StoredValue {
    /// The full byte-string key (for exact-match verification).
    key: Bytes,
    /// Client flags.
    flags: u32,
    /// The payload.
    data: Bytes,
}

impl StoredValue {
    fn new(key: &[u8], flags: u32, data: Bytes) -> StoredValue {
        StoredValue {
            key: Bytes::copy_from_slice(key),
            flags,
            data,
        }
    }
}

enum Inner {
    Plain(Box<SlabCache<StoredValue>>),
    Managed(Box<Cliffhanger<StoredValue>>),
}

impl Inner {
    fn build(config: &BackendConfig, shard_bytes: u64) -> Inner {
        match config.mode {
            BackendMode::Default => Inner::Plain(Box::new(SlabCache::new(SlabCacheConfig {
                slab: config.slab.clone(),
                total_bytes: shard_bytes,
                policy: PolicyKind::Lru,
                mode: AllocationMode::FirstComeFirstServe { page_size: 1 << 20 },
                shadow_bytes: 0,
                tail_region_items: 0,
            }))),
            BackendMode::HillClimbing | BackendMode::Cliffhanger => {
                let cfg = CliffhangerConfig {
                    slab: config.slab.clone(),
                    total_bytes: shard_bytes,
                    enable_hill_climbing: true,
                    enable_cliff_scaling: config.mode == BackendMode::Cliffhanger,
                    ..CliffhangerConfig::default()
                };
                Inner::Managed(Box::new(Cliffhanger::new(cfg)))
            }
        }
    }

    fn value(&self, id: Key) -> Option<&StoredValue> {
        match self {
            Inner::Plain(cache) => cache.value(id),
            Inner::Managed(cache) => cache.value(id),
        }
    }

    /// Whether `key` is resident with an exact byte-string match.
    fn contains_exact(&self, id: Key, key: &[u8]) -> bool {
        self.value(id).map(|s| s.key == key).unwrap_or(false)
    }

    fn set(&mut self, id: Key, size: u64, stored: StoredValue) -> bool {
        match self {
            Inner::Plain(cache) => cache
                .set(id, size, stored)
                .map(|(_, r)| r.admitted)
                .unwrap_or(false),
            Inner::Managed(cache) => cache
                .set(id, size, stored)
                .map(|(_, admitted)| admitted)
                .unwrap_or(false),
        }
    }

    fn stats(&self) -> CacheStats {
        match self {
            Inner::Plain(cache) => cache.stats(),
            Inner::Managed(cache) => cache.stats(),
        }
    }

    /// Grows the engine's total budget (managed engines only; a plain slab
    /// cache has no dynamic-budget path and is never rebalanced).
    fn grow_total(&mut self, bytes: u64) {
        if let Inner::Managed(cache) = self {
            cache.grow_total(bytes);
        }
    }

    /// Releases `bytes` of the engine's budget, evicting as needed. Returns
    /// whether the release happened.
    fn shrink_total(&mut self, bytes: u64) -> bool {
        match self {
            Inner::Plain(_) => false,
            Inner::Managed(cache) => cache.shrink_total(bytes),
        }
    }

    fn used_bytes(&self) -> u64 {
        match self {
            Inner::Plain(cache) => cache.used_bytes(),
            Inner::Managed(cache) => cache.used_bytes(),
        }
    }

    fn len(&self) -> usize {
        match self {
            Inner::Plain(cache) => cache.len(),
            Inner::Managed(cache) => cache.len(),
        }
    }
}

/// One partition of the cache: an independent engine plus its counters.
///
/// The wire-level counters live outside the mutex and are updated with
/// relaxed atomics — `stats` never takes a shard lock just to read them.
struct Shard {
    inner: Mutex<Inner>,
    gets: AtomicU64,
    hits: AtomicU64,
    sets: AtomicU64,
    deletes: AtomicU64,
    /// Wire requests routed to this shard; drives the rebalancing interval
    /// without a globally shared counter (a single hot cache line would
    /// reintroduce exactly the cross-core contention sharding removed).
    ops: AtomicU64,
}

impl Shard {
    fn new(config: &BackendConfig, shard_bytes: u64) -> Shard {
        Shard {
            inner: Mutex::new(Inner::build(config, shard_bytes)),
            gets: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            sets: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
            ops: AtomicU64::new(0),
        }
    }

    /// Wire counters as a [`CacheStats`]-shaped snapshot (relaxed reads).
    fn wire_counts(&self) -> WireCounts {
        let gets = self.gets.load(Ordering::Relaxed);
        let hits = self.hits.load(Ordering::Relaxed);
        WireCounts {
            gets,
            hits,
            // Relaxed counters can be momentarily skewed between the two
            // loads under concurrent traffic; never underflow.
            misses: gets.saturating_sub(hits),
            sets: self.sets.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
        }
    }
}

/// A snapshot of one shard's wire-level counters.
#[derive(Clone, Copy, Debug, Default)]
struct WireCounts {
    gets: u64,
    hits: u64,
    misses: u64,
    sets: u64,
    deletes: u64,
}

impl WireCounts {
    fn accumulate(&mut self, other: WireCounts) {
        self.gets += other.gets;
        self.hits += other.hits;
        self.misses += other.misses;
        self.sets += other.sets;
        self.deletes += other.deletes;
    }
}

/// A thread-safe, sharded cache shared by every connection.
pub struct SharedCache {
    config: BackendConfig,
    shards: Vec<Shard>,
    shard_bytes: u64,
    /// Live per-shard byte budgets (even split at start, then moved by the
    /// rebalancer). Relaxed atomics so `stats` reads them lock-free.
    budgets: Vec<AtomicU64>,
    /// Cross-shard rebalancer state; `try_lock`ed so at most one thread runs
    /// a round while the rest keep serving. `flush` takes this lock (not
    /// `try_lock`) before rebuilding the engines, so a mid-round flush
    /// cannot interleave with a transfer and leak budget.
    balancer: Mutex<ShardRebalancer>,
    /// Per-shard request count that triggers a rebalancing round
    /// (`interval_requests / shard_count`, at least 1).
    tick_interval: u64,
    rebalance_runs: AtomicU64,
    rebalance_transfers: AtomicU64,
    rebalance_bytes: AtomicU64,
}

impl SharedCache {
    /// Creates a shared cache with the configured (or detected) shard count.
    pub fn new(config: BackendConfig) -> Self {
        let requested = config.requested_shards();
        let n = config.resolved_shards();
        if n < requested {
            // The budget cap is a silent hit-rate/scaling hazard otherwise:
            // a sweep that asked for 8 shards may be measuring 2.
            eprintln!(
                "backend: shard count clamped from {requested} to {n} \
                 ({} MB total keeps every shard >= {} MB); \
                 stats reports shards_requested/shard_count",
                config.total_bytes >> 20,
                MIN_SHARD_BYTES >> 20,
            );
        }
        let shard_bytes = (config.total_bytes / n as u64).max(1);
        let shards: Vec<Shard> = (0..n).map(|_| Shard::new(&config, shard_bytes)).collect();
        let budgets = (0..n).map(|_| AtomicU64::new(shard_bytes)).collect();
        let balancer = Mutex::new(ShardRebalancer::new(n, config.rebalance.clone()));
        let tick_interval = (config.rebalance.interval_requests / n as u64).max(1);
        SharedCache {
            config,
            shards,
            shard_bytes,
            budgets,
            balancer,
            tick_interval,
            rebalance_runs: AtomicU64::new(0),
            rebalance_transfers: AtomicU64::new(0),
            rebalance_bytes: AtomicU64::new(0),
        }
    }

    /// Whether rebalancing rounds can do anything on this cache.
    fn rebalance_active(&self) -> bool {
        self.config.rebalance.enabled
            && self.shards.len() > 1
            && self.config.mode != BackendMode::Default
    }

    /// Counts one wire request on its shard and runs a rebalancing round
    /// every `interval_requests / shard_count` of them — per-shard counters
    /// keep the hot path free of shared-line contention while the aggregate
    /// round cadence stays at roughly one per `interval_requests` under
    /// uniform routing. Must be called while holding no shard lock.
    fn tick(&self, shard: &Shard) {
        if !self.rebalance_active() {
            return;
        }
        let n = shard.ops.fetch_add(1, Ordering::Relaxed) + 1;
        if n % self.tick_interval == 0 {
            self.rebalance_now();
        }
    }

    /// Runs one rebalancing round immediately (also exposed for tests and
    /// experiment drivers). A no-op when rebalancing is inactive or another
    /// thread is mid-round.
    pub fn rebalance_now(&self) {
        if !self.rebalance_active() {
            return;
        }
        let Some(mut balancer) = self.balancer.try_lock() else {
            return;
        };
        let samples: Vec<ShardSample> = self
            .shards
            .iter()
            .zip(&self.budgets)
            .map(|(shard, budget)| ShardSample {
                shadow_hits: shard.inner.lock().stats().shadow_hits,
                budget_bytes: budget.load(Ordering::Relaxed),
            })
            .collect();
        for t in balancer.rebalance(&samples) {
            // Shrink first and only then grow — one shard lock at a time,
            // and the total can momentarily dip but never exceed the budget.
            let released = self.shards[t.from].inner.lock().shrink_total(t.bytes);
            if !released {
                continue;
            }
            self.budgets[t.from].fetch_sub(t.bytes, Ordering::Relaxed);
            self.shards[t.to].inner.lock().grow_total(t.bytes);
            self.budgets[t.to].fetch_add(t.bytes, Ordering::Relaxed);
            self.rebalance_transfers.fetch_add(1, Ordering::Relaxed);
            self.rebalance_bytes.fetch_add(t.bytes, Ordering::Relaxed);
        }
        self.rebalance_runs.fetch_add(1, Ordering::Relaxed);
    }

    /// The live per-shard byte budgets (even split at start; the rebalancer
    /// moves them).
    pub fn shard_budgets(&self) -> Vec<u64> {
        self.budgets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    fn charge_size(key: &[u8], data: &[u8]) -> u64 {
        (key.len() + data.len()) as u64
    }

    /// Routes a byte-string key to its shard and 64-bit cache key.
    ///
    /// The shard selector re-mixes the FNV hash so that shard membership is
    /// decorrelated from the bits the per-shard engines use.
    fn route(&self, key: &[u8]) -> (&Shard, Key) {
        let hash = hash_bytes(key);
        let index = (mix64(hash) % self.shards.len() as u64) as usize;
        (&self.shards[index], Key::new(hash))
    }

    /// Number of shards the cache is running.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Looks up a key, returning its flags and value on an exact match.
    pub fn get(&self, key: &[u8]) -> Option<(u32, Bytes)> {
        let (shard, id) = self.route(key);
        self.tick(shard);
        shard.gets.fetch_add(1, Ordering::Relaxed);
        let mut inner = shard.inner.lock();
        let found = match &mut *inner {
            Inner::Plain(cache) => {
                let hit = cache.get_untyped(id).result.hit;
                if hit {
                    cache.value(id).cloned()
                } else {
                    None
                }
            }
            Inner::Managed(cache) => {
                let (_, event) = cache.get_untyped(id);
                if event.hit {
                    cache.value(id).cloned()
                } else {
                    None
                }
            }
        };
        drop(inner);
        match found {
            Some(stored) if stored.key == key => {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                Some((stored.flags, stored.data))
            }
            _ => None,
        }
    }

    /// Whether a key is resident (exact match), without recording a GET.
    pub fn contains(&self, key: &[u8]) -> bool {
        let (shard, id) = self.route(key);
        shard.inner.lock().contains_exact(id, key)
    }

    /// Stores a key unconditionally. Returns `false` only if the item could
    /// not be admitted (e.g. larger than the largest slab class).
    pub fn set(&self, key: &[u8], flags: u32, data: Bytes) -> bool {
        let (shard, id) = self.route(key);
        self.tick(shard);
        shard.sets.fetch_add(1, Ordering::Relaxed);
        let size = Self::charge_size(key, &data);
        let stored = StoredValue::new(key, flags, data);
        shard.inner.lock().set(id, size, stored)
    }

    /// Stores a key only if it is absent (`add`). Atomic with respect to
    /// concurrent writers on the same shard.
    pub fn add(&self, key: &[u8], flags: u32, data: Bytes) -> bool {
        let (shard, id) = self.route(key);
        self.tick(shard);
        let size = Self::charge_size(key, &data);
        let stored = StoredValue::new(key, flags, data);
        let mut inner = shard.inner.lock();
        if inner.contains_exact(id, key) {
            return false;
        }
        shard.sets.fetch_add(1, Ordering::Relaxed);
        inner.set(id, size, stored)
    }

    /// Stores a key only if it is present (`replace`). Atomic with respect
    /// to concurrent writers on the same shard.
    pub fn replace(&self, key: &[u8], flags: u32, data: Bytes) -> bool {
        let (shard, id) = self.route(key);
        self.tick(shard);
        let size = Self::charge_size(key, &data);
        let stored = StoredValue::new(key, flags, data);
        let mut inner = shard.inner.lock();
        if !inner.contains_exact(id, key) {
            return false;
        }
        shard.sets.fetch_add(1, Ordering::Relaxed);
        inner.set(id, size, stored)
    }

    /// Deletes a key; returns whether it was present.
    pub fn delete(&self, key: &[u8]) -> bool {
        let (shard, id) = self.route(key);
        self.tick(shard);
        shard.deletes.fetch_add(1, Ordering::Relaxed);
        let mut inner = shard.inner.lock();
        if !inner.contains_exact(id, key) {
            return false;
        }
        match &mut *inner {
            Inner::Plain(cache) => cache.delete(id),
            Inner::Managed(cache) => cache.delete(id),
        }
    }

    /// Drops every item (`flush_all`), fanning out across the shards. The
    /// per-shard budgets return to the even split and the rebalancer's
    /// counter baseline is forgotten (the rebuilt engines restart their
    /// cumulative counters from zero).
    pub fn flush(&self) {
        // Hold the balancer lock across the rebuild: an in-flight
        // rebalancing round holds it for its whole shrink/grow loop, so a
        // flush can never interleave with a half-applied transfer (which
        // would overwrite the donor's debit and then credit the winner —
        // leaking budget above the configured total).
        let mut balancer = self.balancer.lock();
        for (shard, budget) in self.shards.iter().zip(&self.budgets) {
            let mut inner = shard.inner.lock();
            *inner = Inner::build(&self.config, self.shard_bytes);
            budget.store(self.shard_bytes, Ordering::Relaxed);
        }
        balancer.reset();
    }

    /// Wire-level and cache-level statistics as `STAT` pairs.
    ///
    /// Aggregated counters come first (summed over every shard), followed by
    /// per-shard breakdowns as `shard:<i>:<name>` lines. Wire counters are
    /// read with relaxed atomics; only the cache-core statistics (bytes,
    /// items, evictions) briefly take each shard's lock in turn.
    pub fn stats(&self) -> Vec<(String, String)> {
        let mut totals = WireCounts::default();
        let mut used = 0u64;
        let mut items = 0usize;
        let mut core_total = CacheStats::default();
        let mut per_shard = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let wire = shard.wire_counts();
            totals.accumulate(wire);
            let (core, shard_used, shard_items) = {
                let inner = shard.inner.lock();
                (inner.stats(), inner.used_bytes(), inner.len())
            };
            used += shard_used;
            items += shard_items;
            core_total += core;
            per_shard.push((wire, core, shard_used, shard_items));
        }

        let mut out = vec![
            ("cmd_get".into(), totals.gets.to_string()),
            ("cmd_set".into(), totals.sets.to_string()),
            ("get_hits".into(), totals.hits.to_string()),
            ("get_misses".into(), totals.misses.to_string()),
            ("cmd_delete".into(), totals.deletes.to_string()),
            ("bytes".into(), used.to_string()),
            ("curr_items".into(), items.to_string()),
            ("evictions".into(), core_total.evictions.to_string()),
            ("limit_maxbytes".into(), self.config.total_bytes.to_string()),
            (
                "allocator".into(),
                format!("{:?}", self.config.mode).to_lowercase(),
            ),
            ("shard_count".into(), self.shards.len().to_string()),
            (
                "shards_requested".into(),
                self.config.requested_shards().to_string(),
            ),
            ("shard_bytes".into(), self.shard_bytes.to_string()),
            (
                "rebalance:enabled".into(),
                (self.rebalance_active() as u8).to_string(),
            ),
            (
                "rebalance:runs".into(),
                self.rebalance_runs.load(Ordering::Relaxed).to_string(),
            ),
            (
                "rebalance:transfers".into(),
                self.rebalance_transfers.load(Ordering::Relaxed).to_string(),
            ),
            (
                "rebalance:bytes_moved".into(),
                self.rebalance_bytes.load(Ordering::Relaxed).to_string(),
            ),
        ];
        for (i, (wire, core, shard_used, shard_items)) in per_shard.into_iter().enumerate() {
            out.push((format!("shard:{i}:cmd_get"), wire.gets.to_string()));
            out.push((format!("shard:{i}:cmd_set"), wire.sets.to_string()));
            out.push((format!("shard:{i}:get_hits"), wire.hits.to_string()));
            out.push((format!("shard:{i}:get_misses"), wire.misses.to_string()));
            out.push((format!("shard:{i}:cmd_delete"), wire.deletes.to_string()));
            out.push((format!("shard:{i}:bytes"), shard_used.to_string()));
            out.push((format!("shard:{i}:curr_items"), shard_items.to_string()));
            out.push((format!("shard:{i}:evictions"), core.evictions.to_string()));
            out.push((
                format!("shard:{i}:budget"),
                self.budgets[i].load(Ordering::Relaxed).to_string(),
            ));
            out.push((
                format!("shard:{i}:shadow_hits"),
                core.shadow_hits.to_string(),
            ));
        }
        out
    }

    /// The backend mode this cache runs.
    pub fn mode(&self) -> BackendMode {
        self.config.mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(mode: BackendMode) -> SharedCache {
        SharedCache::new(BackendConfig {
            total_bytes: 4 << 20,
            mode,
            shards: 2,
            ..BackendConfig::default()
        })
    }

    /// The shard a byte-string key routes to, replicated from
    /// [`SharedCache::route`] so tests can build per-shard workloads.
    fn shard_of(key: &[u8], shards: usize) -> usize {
        (mix64(hash_bytes(key)) % shards as u64) as usize
    }

    #[test]
    fn rebalancer_moves_budget_toward_the_starved_shard() {
        let total = 8u64 << 20;
        let c = SharedCache::new(BackendConfig {
            total_bytes: total,
            mode: BackendMode::Cliffhanger,
            shards: 2,
            rebalance: ShardBalanceConfig {
                credit_bytes: 128 << 10,
                min_shard_bytes: 1 << 20,
                min_gradient_gap: 4,
                ..ShardBalanceConfig::default()
            },
            ..BackendConfig::default()
        });
        // Shard 0 cycles a working set just past its 4 MB slice — roughly
        // 11k items fit, so a 13k-key cycle makes every re-request miss the
        // physical queue and land in the ~4k-entry shadow queue (a pure
        // gradient signal); shard 1 idles on a handful of keys.
        let shard0_keys: Vec<String> = (0..)
            .map(|i: u64| format!("hot-{i}"))
            .filter(|k| shard_of(k.as_bytes(), 2) == 0)
            .take(13_000)
            .collect();
        let shard1_keys: Vec<String> = (0..)
            .map(|i: u64| format!("cold-{i}"))
            .filter(|k| shard_of(k.as_bytes(), 2) == 1)
            .take(50)
            .collect();
        let payload = Bytes::from(vec![0u8; 200]);
        for round in 0..12 {
            for key in &shard0_keys {
                if c.get(key.as_bytes()).is_none() {
                    c.set(key.as_bytes(), 0, payload.clone());
                }
            }
            for key in &shard1_keys {
                if c.get(key.as_bytes()).is_none() {
                    c.set(key.as_bytes(), 0, payload.clone());
                }
            }
            c.rebalance_now();
            let _ = round;
        }
        let budgets = c.shard_budgets();
        assert_eq!(
            budgets.iter().sum::<u64>(),
            total,
            "rebalancing must conserve the total budget: {budgets:?}"
        );
        assert!(
            budgets[0] > budgets[1],
            "the starved shard should have gained budget: {budgets:?}"
        );
        let stats: std::collections::HashMap<String, String> = c.stats().into_iter().collect();
        assert_eq!(stats["rebalance:enabled"], "1");
        assert!(stats["rebalance:transfers"].parse::<u64>().unwrap() > 0);
        assert!(stats["rebalance:bytes_moved"].parse::<u64>().unwrap() > 0);
        assert_eq!(stats["shard:0:budget"], budgets[0].to_string());
    }

    #[test]
    fn rebalance_disabled_keeps_static_budgets() {
        let c = SharedCache::new(BackendConfig {
            total_bytes: 8 << 20,
            mode: BackendMode::Cliffhanger,
            shards: 2,
            rebalance: ShardBalanceConfig::disabled(),
            ..BackendConfig::default()
        });
        for i in 0..30_000u32 {
            let key = format!("k{i}");
            if c.get(key.as_bytes()).is_none() {
                c.set(key.as_bytes(), 0, Bytes::from("v"));
            }
            if i % 1_000 == 0 {
                c.rebalance_now();
            }
        }
        assert_eq!(c.shard_budgets(), vec![4 << 20, 4 << 20]);
        let stats: std::collections::HashMap<String, String> = c.stats().into_iter().collect();
        assert_eq!(stats["rebalance:enabled"], "0");
        assert_eq!(stats["rebalance:runs"], "0");
    }

    #[test]
    fn default_mode_never_rebalances() {
        let c = cache(BackendMode::Default);
        c.set(b"a", 0, Bytes::from("1"));
        c.rebalance_now();
        let stats: std::collections::HashMap<String, String> = c.stats().into_iter().collect();
        assert_eq!(stats["rebalance:enabled"], "0");
        assert_eq!(stats["rebalance:runs"], "0");
    }

    #[test]
    fn flush_resets_budgets_and_baseline() {
        let c = cache(BackendMode::Cliffhanger);
        for i in 0..5_000u32 {
            c.set(format!("k{i}").as_bytes(), 0, Bytes::from("v"));
        }
        c.rebalance_now();
        c.flush();
        assert_eq!(c.shard_budgets(), vec![2 << 20, 2 << 20]);
        let stats: std::collections::HashMap<String, String> = c.stats().into_iter().collect();
        assert_eq!(stats["curr_items"], "0");
        assert_eq!(stats["shard:0:budget"], (2u64 << 20).to_string());
    }

    #[test]
    fn stats_expose_requested_and_effective_shards() {
        // 2 MB of budget clamps a requested 8 shards to 2 (1 MB floor).
        let c = SharedCache::new(BackendConfig {
            total_bytes: 2 << 20,
            mode: BackendMode::Cliffhanger,
            shards: 8,
            ..BackendConfig::default()
        });
        assert_eq!(c.shard_count(), 2);
        let stats: std::collections::HashMap<String, String> = c.stats().into_iter().collect();
        assert_eq!(stats["shard_count"], "2");
        assert_eq!(stats["shards_requested"], "8");
    }

    #[test]
    fn set_get_delete_roundtrip_all_modes() {
        for mode in [
            BackendMode::Default,
            BackendMode::HillClimbing,
            BackendMode::Cliffhanger,
        ] {
            let c = cache(mode);
            assert!(c.get(b"missing").is_none());
            assert!(c.set(b"hello", 7, Bytes::from("world")));
            let (flags, value) = c.get(b"hello").expect("must hit");
            assert_eq!(flags, 7);
            assert_eq!(value, Bytes::from("world"));
            assert!(c.delete(b"hello"));
            assert!(!c.delete(b"hello"));
            assert!(c.get(b"hello").is_none());
        }
    }

    #[test]
    fn add_and_replace_semantics() {
        let c = cache(BackendMode::Cliffhanger);
        assert!(c.add(b"k", 0, Bytes::from("1")));
        assert!(!c.add(b"k", 0, Bytes::from("2")), "add must not overwrite");
        assert_eq!(c.get(b"k").unwrap().1, Bytes::from("1"));
        assert!(c.replace(b"k", 0, Bytes::from("3")));
        assert_eq!(c.get(b"k").unwrap().1, Bytes::from("3"));
        assert!(!c.replace(b"absent", 0, Bytes::from("x")));
    }

    #[test]
    fn eviction_under_pressure_keeps_running() {
        let c = SharedCache::new(BackendConfig {
            total_bytes: 256 << 10,
            mode: BackendMode::Cliffhanger,
            shards: 1,
            ..BackendConfig::default()
        });
        let payload = Bytes::from(vec![0u8; 1_000]);
        for i in 0..2_000u32 {
            assert!(c.set(format!("key{i}").as_bytes(), 0, payload.clone()));
        }
        // Recent keys should be resident; the cache stays within budget.
        let stats: std::collections::HashMap<String, String> = c.stats().into_iter().collect();
        let bytes: u64 = stats["bytes"].parse().unwrap();
        assert!(bytes <= 256 << 10);
        let hits_recent = (1_990..2_000)
            .filter(|i| c.get(format!("key{i}").as_bytes()).is_some())
            .count();
        assert!(
            hits_recent >= 5,
            "recent keys mostly resident, got {hits_recent}"
        );
    }

    #[test]
    fn flush_clears_everything() {
        let c = cache(BackendMode::Default);
        c.set(b"a", 0, Bytes::from("1"));
        c.flush();
        assert!(c.get(b"a").is_none());
        let stats: std::collections::HashMap<String, String> = c.stats().into_iter().collect();
        assert_eq!(stats["curr_items"], "0");
    }

    #[test]
    fn stats_report_wire_counters() {
        let c = cache(BackendMode::HillClimbing);
        c.set(b"a", 0, Bytes::from("1"));
        c.get(b"a");
        c.get(b"b");
        let stats: std::collections::HashMap<String, String> = c.stats().into_iter().collect();
        assert_eq!(stats["cmd_get"], "2");
        assert_eq!(stats["get_hits"], "1");
        assert_eq!(stats["get_misses"], "1");
        assert_eq!(stats["cmd_set"], "1");
        assert_eq!(stats["allocator"], "hillclimbing");
        assert_eq!(stats["shard_count"], "2");
    }

    #[test]
    fn per_shard_stats_sum_to_aggregates() {
        let c = SharedCache::new(BackendConfig {
            total_bytes: 16 << 20,
            mode: BackendMode::Cliffhanger,
            shards: 4,
            ..BackendConfig::default()
        });
        assert_eq!(c.shard_count(), 4);
        for i in 0..500u32 {
            assert!(c.set(format!("key-{i}").as_bytes(), 0, Bytes::from("v")));
        }
        for i in 0..250u32 {
            c.get(format!("key-{i}").as_bytes());
            c.get(format!("absent-{i}").as_bytes());
        }
        let stats: std::collections::HashMap<String, String> = c.stats().into_iter().collect();
        for counter in ["cmd_get", "cmd_set", "get_hits", "curr_items", "bytes"] {
            let total: u64 = stats[counter].parse().unwrap();
            let summed: u64 = (0..4)
                .map(|i| {
                    stats[&format!("shard:{i}:{counter}")]
                        .parse::<u64>()
                        .unwrap()
                })
                .sum();
            assert_eq!(total, summed, "{counter} must equal the per-shard sum");
        }
        // The router must actually spread keys: no shard holds everything.
        let max_shard_items: u64 = (0..4)
            .map(|i| stats[&format!("shard:{i}:curr_items")].parse().unwrap())
            .max()
            .unwrap();
        let total_items: u64 = stats["curr_items"].parse().unwrap();
        assert_eq!(total_items, 500);
        assert!(
            max_shard_items < total_items,
            "keys must be spread across shards (max shard has {max_shard_items})"
        );
    }

    #[test]
    fn shard_auto_detection_is_budget_capped() {
        let tiny = BackendConfig {
            total_bytes: 2 << 20,
            shards: 0,
            ..BackendConfig::default()
        };
        assert!(tiny.resolved_shards() <= 2, "2 MB cannot exceed 2 shards");
        let explicit = BackendConfig {
            total_bytes: 64 << 20,
            shards: 8,
            ..BackendConfig::default()
        };
        assert_eq!(explicit.resolved_shards(), 8);
        let zero = BackendConfig {
            total_bytes: 64 << 20,
            shards: 0,
            ..BackendConfig::default()
        };
        assert!(zero.resolved_shards() >= 1);
    }

    #[test]
    fn shards_are_independent_for_flush_scoped_load() {
        let c = SharedCache::new(BackendConfig {
            total_bytes: 8 << 20,
            mode: BackendMode::Default,
            shards: 8,
            ..BackendConfig::default()
        });
        for i in 0..1_000u32 {
            assert!(c.set(format!("ind-{i}").as_bytes(), 0, Bytes::from("x")));
        }
        c.flush();
        for i in 0..1_000u32 {
            assert!(c.get(format!("ind-{i}").as_bytes()).is_none());
        }
    }
}
