//! Shard sweep with the cross-shard rebalancer on vs off, under live TCP
//! load (the loadgen-level counterpart of the simulator's
//! `shard_experiment`).
//!
//! Run with:
//! `cargo run --release -p bench --bin rebalance_sweep [requests]`
//!
//! Each shard count is driven twice with the identical closed-loop Zipf
//! workload against a self-hosted server — once with static per-shard
//! budgets and once with the rebalancer — so the report shows what the
//! rebalancer costs (throughput) and buys (hit rate) end to end, wire
//! protocol and locks included. Prints a combined JSON document
//! (`cliffhanger-rebalance-sweep/v1` embedding two loadgen sweeps) on
//! stdout and a table on stderr.

use loadgen::{run_shard_sweep, LoadgenConfig, SelfHostConfig, SweepReport, WorkloadSpec};
use workloads::{KeyPopularity, SizeDistribution};

/// Schema tag of the combined report.
const REBALANCE_SWEEP_SCHEMA: &str = "cliffhanger-rebalance-sweep/v1";

fn main() -> std::process::ExitCode {
    let requests: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);

    // Keys outnumber what the 32 MB budget can hold, so per-shard budgets
    // matter and rebalancing has something to move; the ETC-like sizes give
    // the shards unequal byte demand.
    let load = LoadgenConfig {
        connections: 8,
        requests,
        warmup_keys: 20_000,
        pipeline: 32,
        workload: WorkloadSpec {
            keys: KeyPopularity::Zipf {
                num_keys: 120_000,
                exponent: 0.99,
            },
            sizes: SizeDistribution::GeneralizedPareto {
                location: 0.0,
                scale: 214.476,
                shape: 0.348_468,
                cap: 16 << 10,
            },
            get_fraction: 0.9,
            ..WorkloadSpec::default()
        },
        ..LoadgenConfig::default()
    };
    let shard_counts = [1usize, 2, 4, 8];

    let mut sweeps: Vec<(bool, SweepReport)> = Vec::new();
    for rebalance in [false, true] {
        let host = SelfHostConfig {
            total_bytes: 32 << 20,
            rebalance,
            ..SelfHostConfig::default()
        };
        match run_shard_sweep(&load, &host, &shard_counts) {
            Ok(sweep) => sweeps.push((rebalance, sweep)),
            Err(err) => {
                eprintln!("rebalance_sweep: {err}");
                return std::process::ExitCode::FAILURE;
            }
        }
    }

    eprintln!("shards  rebalance  throughput(req/s)  p99(us)  hit_rate  transfers");
    for (rebalance, sweep) in &sweeps {
        for p in &sweep.points {
            let transfers = p
                .report
                .server
                .as_ref()
                .map(|s| s.rebalance_transfers)
                .unwrap_or(0);
            eprintln!(
                "{:>6}  {:>9}  {:>17.0}  {:>7.0}  {:>8.4}  {:>9}",
                p.shards,
                if *rebalance { "on" } else { "off" },
                p.throughput_rps,
                p.p99_us,
                p.hit_rate,
                transfers
            );
        }
    }

    let (off, on) = (&sweeps[0].1, &sweeps[1].1);
    println!(
        "{{\"schema\":\"{REBALANCE_SWEEP_SCHEMA}\",\"off\":{},\"on\":{}}}",
        off.to_json(),
        on.to_json()
    );
    std::process::ExitCode::SUCCESS
}
