//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of an output type.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// produces a plain value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`crate::prop_oneof!`]: chooses uniformly among strategies.
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty arm list.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let index = rng.next_below(self.arms.len() as u64) as usize;
        self.arms[index].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.next_below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}
