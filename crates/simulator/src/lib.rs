//! # simulator
//!
//! The trace-driven experiment engine of the reproduction. It replays the
//! synthetic Memcachier-like traces (from the `workloads` crate) against the
//! cache organisations under study — Memcached's default first-come-first-
//! serve slab allocation, statically solved allocations (Dynacache), the
//! global-LRU / log-structured model, and Cliffhanger in all its ablations —
//! and regenerates every table and figure of the paper's evaluation.
//!
//! * [`engine`] — replay a single application's trace against one cache
//!   system, with warm-up handling and timeline sampling.
//! * [`profiles`] — build per-slab-class hit-rate curves and frequencies
//!   from a trace (the inputs to the Dynacache / LookAhead baselines).
//! * [`sweep`] — memory sweeps: how much memory a system needs to match a
//!   target hit rate (Figure 7's memory savings).
//! * [`report`] — plain-text / CSV tables and series used by the harness
//!   binaries.
//! * [`experiments`] — one module per table or figure of the paper.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod engine;
pub mod experiments;
pub mod profiles;
pub mod report;
pub mod sweep;

pub use engine::{AppRunResult, CacheSystem, CliffhangerMode, ReplayOptions, TimelinePoint};
pub use report::{FigureSeries, Table};
