//! Shared measurement code for the paper's micro-benchmark tables
//! (Tables 6 and 7) and for the table/figure harness binaries.
//!
//! Tables 6 and 7 measure the *overhead* of Cliffhanger's bookkeeping — the
//! shadow-queue lookups, credit transfers and queue resizes — relative to a
//! stock cache, under the worst-case workload of §5.6 (every key unique, so
//! every GET misses, every miss probes the shadow queues, and every fill
//! evicts). The measurements here run in-process against the same
//! [`cache_server::SharedCache`] the TCP server uses, which isolates the
//! algorithmic overhead from network and syscall noise (the paper's absolute
//! numbers come from a different testbed; the comparison of interest is
//! relative overhead).

#![warn(missing_docs)]

pub mod overhead;
pub mod perf_gate;

pub use overhead::{table6_latency_overhead, table7_throughput_overhead, OverheadOptions};
pub use perf_gate::{
    compare_scenario_matrices, compare_sweeps, is_scenario_document, GateCheck, GateReport,
    ScenarioGateCheck, ScenarioGateReport,
};
