//! # profiler
//!
//! Hit-rate-curve machinery and the curve-based allocation baselines the
//! Cliffhanger paper compares against.
//!
//! Cliffhanger's central claim is that good allocations can be found *without*
//! estimating full hit-rate curves. This crate implements the other side of
//! that comparison — everything that *does* estimate curves:
//!
//! * [`stack_distance`] — exact Mattson stack distances (O(log N) per request
//!   with a Fenwick tree) and the resulting reuse-distance histograms.
//! * [`mimir`] — the Mimir bucket approximation (O(N/B) per request) used by
//!   Dynacache when exact profiling is too expensive.
//! * [`curve`] — hit-rate curves: evaluation, interpolation, gradients,
//!   concavity/cliff detection.
//! * [`hull`] — concave (upper) hulls of hit-rate curves, the object Talus
//!   traces.
//! * [`dynacache`] — the Dynacache solver (Equation 1): frequency-weighted
//!   allocation across queues via marginal-utility water-filling.
//! * [`talus`] — Talus partitioning of a single queue given its curve.
//! * [`lookahead`] — the Qureshi–Patt LookAhead allocator.
//! * [`online`] — SHARDS-sampled live MRC estimation for the server's
//!   observability plane (bounded memory, near-zero unsampled cost).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod curve;
pub mod dynacache;
pub mod hull;
pub mod lookahead;
pub mod mimir;
pub mod online;
pub mod stack_distance;
pub mod talus;

pub use curve::HitRateCurve;
pub use dynacache::{DynacacheSolver, QueueProfile};
pub use hull::ConcaveHull;
pub use lookahead::LookAheadAllocator;
pub use mimir::MimirEstimator;
pub use online::{MrcSnapshot, OnlineMrc};
pub use stack_distance::{StackDistanceHistogram, StackDistanceTracker};
pub use talus::TalusPartition;
