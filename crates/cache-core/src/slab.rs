//! Memcached-style slab-class geometry.
//!
//! To avoid memory fragmentation Memcached divides its memory into slab
//! classes; each class stores items whose size falls in a specific range
//! (e.g. < 128 B, 128–256 B, …) and each class has its own eviction queue
//! (paper §2). [`SlabConfig`] reproduces that geometry: chunk sizes grow
//! geometrically from `min_chunk` by `growth_factor` up to `max_item_size`.

use serde::{Deserialize, Serialize};

use crate::key::ClassId;

/// Slab-class sizing parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SlabConfig {
    /// Chunk size of the smallest class, in bytes.
    pub min_chunk: u64,
    /// Geometric growth factor between consecutive classes (> 1.0).
    /// Memcached's default is 1.25; the paper's examples use powers of two.
    pub growth_factor: f64,
    /// Largest storable item size in bytes; items larger than this are
    /// rejected by the cache.
    pub max_item_size: u64,
}

impl Default for SlabConfig {
    fn default() -> Self {
        // Powers-of-two classes from 64 B to 1 MB, matching the ranges the
        // paper quotes ("< 128B, 128-256B, etc.") and keeping the number of
        // classes at 15, the maximum the paper reports for Memcachier (§5.7).
        SlabConfig {
            min_chunk: 64,
            growth_factor: 2.0,
            max_item_size: 1 << 20,
        }
    }
}

impl SlabConfig {
    /// Creates a config with explicit parameters.
    ///
    /// # Panics
    /// Panics if `growth_factor <= 1.0`, `min_chunk == 0` or
    /// `max_item_size < min_chunk`.
    pub fn new(min_chunk: u64, growth_factor: f64, max_item_size: u64) -> Self {
        assert!(growth_factor > 1.0, "growth factor must exceed 1.0");
        assert!(min_chunk > 0, "minimum chunk must be positive");
        assert!(
            max_item_size >= min_chunk,
            "max item size must be at least the minimum chunk"
        );
        SlabConfig {
            min_chunk,
            growth_factor,
            max_item_size,
        }
    }

    /// A Memcached-like config with growth factor 1.25 (the upstream default).
    pub fn memcached_default() -> Self {
        SlabConfig::new(96, 1.25, 1 << 20)
    }

    /// Number of slab classes.
    pub fn num_classes(&self) -> usize {
        let mut classes = 1usize;
        let mut chunk = self.min_chunk as f64;
        while (chunk.ceil() as u64) < self.max_item_size {
            chunk *= self.growth_factor;
            classes += 1;
        }
        classes
    }

    /// Chunk size (the per-item charge) of class `class`.
    pub fn chunk_size(&self, class: ClassId) -> u64 {
        let mut chunk = self.min_chunk as f64;
        for _ in 0..class.index() {
            chunk *= self.growth_factor;
        }
        (chunk.ceil() as u64).min(self.max_item_size)
    }

    /// The slab class an item of `size` bytes belongs to, or `None` if the
    /// item is too large to store.
    pub fn class_for_size(&self, size: u64) -> Option<ClassId> {
        if size > self.max_item_size {
            return None;
        }
        let mut chunk = self.min_chunk as f64;
        let mut class = 0u32;
        loop {
            if size <= chunk.ceil() as u64 {
                return Some(ClassId::new(class));
            }
            chunk *= self.growth_factor;
            class += 1;
        }
    }

    /// Chunk sizes of every class, smallest first.
    pub fn chunk_sizes(&self) -> Vec<u64> {
        (0..self.num_classes() as u32)
            .map(|c| self.chunk_size(ClassId::new(c)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_classes_are_powers_of_two() {
        let cfg = SlabConfig::default();
        let sizes = cfg.chunk_sizes();
        assert_eq!(sizes[0], 64);
        assert_eq!(sizes[1], 128);
        assert_eq!(sizes[2], 256);
        assert_eq!(*sizes.last().unwrap(), 1 << 20);
        assert_eq!(cfg.num_classes(), 15);
    }

    #[test]
    fn class_for_size_boundaries() {
        let cfg = SlabConfig::default();
        assert_eq!(cfg.class_for_size(1), Some(ClassId::new(0)));
        assert_eq!(cfg.class_for_size(64), Some(ClassId::new(0)));
        assert_eq!(cfg.class_for_size(65), Some(ClassId::new(1)));
        assert_eq!(cfg.class_for_size(128), Some(ClassId::new(1)));
        assert_eq!(cfg.class_for_size(129), Some(ClassId::new(2)));
        assert_eq!(cfg.class_for_size(1 << 20), Some(ClassId::new(14)));
        assert_eq!(cfg.class_for_size((1 << 20) + 1), None);
    }

    #[test]
    fn chunk_size_covers_class_items() {
        let cfg = SlabConfig::memcached_default();
        for size in [1u64, 96, 100, 500, 4_096, 100_000, 1 << 20] {
            let class = cfg.class_for_size(size).unwrap();
            assert!(
                cfg.chunk_size(class) >= size,
                "chunk {} smaller than item {}",
                cfg.chunk_size(class),
                size
            );
            if class.index() > 0 {
                let prev = ClassId::new(class.0 - 1);
                assert!(
                    cfg.chunk_size(prev) < size,
                    "item {size} should not fit in class {prev}"
                );
            }
        }
    }

    #[test]
    fn growth_factor_1_25_produces_memcached_like_ladder() {
        let cfg = SlabConfig::memcached_default();
        let sizes = cfg.chunk_sizes();
        assert!(sizes.len() > 30, "1.25 growth yields many classes");
        for window in sizes.windows(2) {
            assert!(window[1] > window[0], "chunk sizes must be increasing");
        }
    }

    #[test]
    #[should_panic(expected = "growth factor")]
    fn rejects_non_growing_factor() {
        let _ = SlabConfig::new(64, 1.0, 1024);
    }
}
