//! Adapts the `workloads` crate's distributions into a wire-level request
//! stream: key ranks become byte-string keys, per-key deterministic sizes
//! become SET payload lengths, and the GET/SET mix follows the configured
//! fraction (the Facebook ETC mix by default, as in the paper's Mutilate
//! runs).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use workloads::zipf::PopularitySampler;
use workloads::{KeyPopularity, SizeDistribution};

/// What traffic the generator produces.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Key-popularity model (Zipf by default, as in the paper's benchmarks).
    pub keys: KeyPopularity,
    /// Per-key deterministic value sizes.
    pub sizes: SizeDistribution,
    /// Fraction of GET requests (the rest are SETs).
    pub get_fraction: f64,
    /// Base seed; each worker derives an independent stream from it.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            keys: KeyPopularity::Zipf {
                num_keys: 50_000,
                exponent: 0.99,
            },
            // The published ETC fit, capped at 16 KB so the default run
            // exercises several slab classes without multi-megabyte values.
            sizes: SizeDistribution::GeneralizedPareto {
                location: 0.0,
                scale: 214.476,
                shape: 0.348_468,
                cap: 16 << 10,
            },
            get_fraction: 0.9,
            seed: 0x10AD_6E4E,
        }
    }
}

/// One application's slice of a multi-tenant run: a tenant name, a traffic
/// weight, and that tenant's own workload shape.
///
/// A multi-tenant run partitions the loadgen connections across the tenants
/// proportionally to their weights (each tenant keeps at least one
/// connection), and every connection selects its tenant's namespace with the
/// wire-level `app <name>` command before the measured window opens. The
/// `default` tenant skips the `app` command entirely, exercising the
/// backward-compatible path a pre-extension client takes.
#[derive(Clone, Debug)]
pub struct TenantLoad {
    /// The application name (`app <name>` on the wire; `default` sends no
    /// `app` command).
    pub name: String,
    /// Relative traffic weight: the share of connections and of the request
    /// budget this tenant receives. Must be at least 1.
    pub weight: u64,
    /// The tenant's workload shape (its own key popularity, sizes, mix).
    pub spec: WorkloadSpec,
}

impl TenantLoad {
    /// A tenant with the given name, weight and workload.
    pub fn new(name: impl Into<String>, weight: u64, spec: WorkloadSpec) -> TenantLoad {
        TenantLoad {
            name: name.into(),
            weight: weight.max(1),
            spec,
        }
    }
}

/// One generated request, before serialisation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GenOp {
    /// Fetch a key.
    Get {
        /// Wire key.
        key: String,
    },
    /// Store a key with a payload of `size` bytes.
    Set {
        /// Wire key.
        key: String,
        /// Payload length in bytes.
        size: usize,
    },
}

impl GenOp {
    /// The wire key of this request.
    pub fn key(&self) -> &str {
        match self {
            GenOp::Get { key } | GenOp::Set { key, .. } => key,
        }
    }
}

/// A per-worker request generator (owns its RNG; no sharing, no locks).
pub struct RequestGen {
    sampler: PopularitySampler,
    sizes: SizeDistribution,
    get_fraction: f64,
    seed: u64,
    rng: StdRng,
}

impl RequestGen {
    /// Builds worker `worker_id`'s stream for the spec. Different workers
    /// sample the same popularity distribution through decorrelated RNGs.
    pub fn new(spec: &WorkloadSpec, worker_id: u64) -> RequestGen {
        RequestGen {
            sampler: spec.keys.sampler(),
            sizes: spec.sizes.clone(),
            get_fraction: spec.get_fraction.clamp(0.0, 1.0),
            seed: spec.seed,
            rng: StdRng::seed_from_u64(spec.seed ^ (worker_id.wrapping_mul(0x9E37_79B9_7F4A_7C15))),
        }
    }

    /// The wire key for a rank.
    pub fn key_for_rank(rank: u64) -> String {
        format!("k{rank:013x}")
    }

    /// The rank a wire key encodes (inverse of
    /// [`RequestGen::key_for_rank`]), if it is one of ours.
    pub fn rank_for_key(key: &str) -> Option<u64> {
        u64::from_str_radix(key.strip_prefix('k')?, 16).ok()
    }

    /// The deterministic payload size for a rank.
    pub fn size_for_rank(&self, rank: u64) -> usize {
        self.sizes.size_for_key(rank, self.seed).max(1) as usize
    }

    /// Draws the next request.
    pub fn next_op(&mut self) -> GenOp {
        let rank = self.sampler.sample(&mut self.rng);
        let key = Self::key_for_rank(rank);
        if self.rng.gen_bool(self.get_fraction) {
            GenOp::Get { key }
        } else {
            GenOp::Set {
                key,
                size: self.size_for_rank(rank),
            }
        }
    }

    /// A SET for a specific rank (used by the warm-up phase).
    pub fn set_for_rank(&self, rank: u64) -> GenOp {
        GenOp::Set {
            key: Self::key_for_rank(rank),
            size: self.size_for_rank(rank),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_round_trip_through_ranks() {
        for rank in [0u64, 1, 0xabc, u64::MAX >> 12] {
            let key = RequestGen::key_for_rank(rank);
            assert_eq!(RequestGen::rank_for_key(&key), Some(rank));
        }
        assert_eq!(RequestGen::rank_for_key("nope"), None);
        assert_eq!(RequestGen::rank_for_key("kzzz"), None);
    }

    #[test]
    fn sizes_are_deterministic_per_key() {
        let spec = WorkloadSpec::default();
        let a = RequestGen::new(&spec, 0);
        let b = RequestGen::new(&spec, 7);
        for rank in [0u64, 1, 99, 12_345] {
            assert_eq!(a.size_for_rank(rank), b.size_for_rank(rank));
            assert!(a.size_for_rank(rank) >= 1);
            assert!(a.size_for_rank(rank) <= 16 << 10);
        }
    }

    #[test]
    fn get_fraction_is_respected() {
        let spec = WorkloadSpec {
            get_fraction: 0.8,
            ..WorkloadSpec::default()
        };
        let mut g = RequestGen::new(&spec, 3);
        let gets = (0..20_000)
            .filter(|_| matches!(g.next_op(), GenOp::Get { .. }))
            .count();
        let fraction = gets as f64 / 20_000.0;
        assert!((fraction - 0.8).abs() < 0.02, "got {fraction}");
    }

    #[test]
    fn workers_draw_different_streams_from_the_same_spec() {
        let spec = WorkloadSpec::default();
        let mut a = RequestGen::new(&spec, 0);
        let mut b = RequestGen::new(&spec, 1);
        let a_keys: Vec<String> = (0..50).map(|_| a.next_op().key().to_string()).collect();
        let b_keys: Vec<String> = (0..50).map(|_| b.next_op().key().to_string()).collect();
        assert_ne!(a_keys, b_keys);
    }

    #[test]
    fn same_worker_id_is_reproducible() {
        let spec = WorkloadSpec::default();
        let mut a = RequestGen::new(&spec, 5);
        let mut b = RequestGen::new(&spec, 5);
        for _ in 0..100 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn zipf_traffic_is_skewed_toward_low_ranks() {
        let spec = WorkloadSpec::default();
        let mut g = RequestGen::new(&spec, 0);
        let hot_key = RequestGen::key_for_rank(0);
        let hot = (0..20_000).filter(|_| g.next_op().key() == hot_key).count();
        // Rank 0 of a 0.99-exponent Zipf over 50k keys gets ~8% of traffic;
        // uniform would give 0.002%.
        assert!(hot > 200, "rank-0 traffic too low for Zipf: {hot}");
    }
}
