//! Cross-shard hill climbing (extension).
//!
//! Sharding a Cliffhanger server into N independent instances, each with
//! 1/N of the memory, quietly reintroduces the static-partition problem the
//! paper exists to fix: every shard hill-climbs *within* its slice, but no
//! memory ever moves *between* slices, so a shard whose keys happen to be
//! hot (or large) is starved while an idle shard hoards budget. The same
//! observation drives the paper's §4.1 remark that the "queues" Cliffhanger
//! optimises can be slab classes *or entire applications* — and, here,
//! entire shards.
//!
//! [`ShardRebalancer`] closes the loop with the identical gradient signal:
//! every shard's long shadow queues already count the requests that *would*
//! have hit with a little more memory ([`cache_core::CacheStats::shadow_hits`]),
//! and the per-interval delta of that counter is exactly the
//! frequency-weighted marginal utility `f_i · h_i'(m_i)` of Algorithm 1.
//! Periodically the rebalancer compares those deltas and proposes moving a
//! fixed credit of budget from the shard with the flattest gradient to the
//! shard with the steepest one, so the sharded server's total hit rate
//! converges toward the unsharded controller instead of degrading with N.
//!
//! The rebalancer is pure decision logic: it never touches a cache. The
//! host (the server backend or the simulator) feeds it cumulative counter
//! [`ShardSample`]s and applies the returned [`ShardTransfer`]s via
//! [`crate::Cliffhanger::shrink_total`] / [`crate::Cliffhanger::grow_total`],
//! which keeps it trivially testable and lock-free.

use crate::config::ShardBalanceConfig;
use crate::events::{EventSink, NoopSink, TransferEvent};
use serde::{Deserialize, Serialize};

/// One shard's cumulative counters and current budget, as observed by the
/// host at the start of a rebalancing round.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct ShardSample {
    /// Cumulative hill-climbing shadow-queue hits of the shard's engine.
    pub shadow_hits: u64,
    /// The shard's current byte budget.
    pub budget_bytes: u64,
}

/// A proposed budget move between two shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardTransfer {
    /// Shard index giving up budget.
    pub from: usize,
    /// Shard index receiving budget.
    pub to: usize,
    /// Bytes to move.
    pub bytes: u64,
}

/// The cross-shard hill climber.
///
/// Stateful only in the cheapest possible way: it remembers the previous
/// cumulative counters so each round works on per-interval deltas, plus a
/// few diagnostic counters.
#[derive(Debug, Clone)]
pub struct ShardRebalancer {
    config: ShardBalanceConfig,
    /// Cumulative shadow-hit counters at the previous round, per shard.
    last: Option<Vec<u64>>,
    /// Exponentially smoothed per-interval shadow-hit deltas, per shard.
    smoothed: Vec<f64>,
    /// Rounds folded into `smoothed` since the last baseline (for EWMA
    /// start-up bias correction).
    observations: u64,
    rounds: u64,
    proposed_transfers: u64,
    proposed_bytes: u64,
}

impl ShardRebalancer {
    /// Creates a rebalancer for `shards` shards.
    ///
    /// The shard count is only advisory (samples carry the authoritative
    /// length); it seeds the delta baseline so the very first round after a
    /// cold start is a clean observation, not a huge spurious delta.
    pub fn new(shards: usize, config: ShardBalanceConfig) -> Self {
        config.validate();
        ShardRebalancer {
            config,
            last: None,
            smoothed: vec![0.0; shards],
            observations: 0,
            rounds: 0,
            proposed_transfers: 0,
            proposed_bytes: 0,
        }
    }

    /// The configuration this rebalancer runs with.
    pub fn config(&self) -> &ShardBalanceConfig {
        &self.config
    }

    /// Forgets the counter baseline and smoothed gradients (after a
    /// `flush_all` the cumulative counters restart from zero, which would
    /// otherwise read as a huge negative delta).
    pub fn reset(&mut self) {
        self.last = None;
        self.smoothed.iter_mut().for_each(|g| *g = 0.0);
        self.observations = 0;
    }

    /// Number of rebalancing rounds observed (including no-op rounds).
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Number of transfers proposed so far.
    pub fn proposed_transfers(&self) -> u64 {
        self.proposed_transfers
    }

    /// Bytes proposed for transfer so far.
    pub fn proposed_bytes(&self) -> u64 {
        self.proposed_bytes
    }

    /// Runs one rebalancing round over the shards' cumulative samples and
    /// returns the proposed budget moves.
    ///
    /// Invariants, by construction:
    /// * every transfer moves the same number of bytes out of `from` as into
    ///   `to`, so the summed budget is conserved no matter how many of the
    ///   proposals the host ends up applying;
    /// * no proposal takes a donor below
    ///   [`ShardBalanceConfig::min_shard_bytes`];
    /// * a round with uniform gradients (all deltas within
    ///   [`ShardBalanceConfig::min_gradient_gap`] and the relative
    ///   [`ShardBalanceConfig::hysteresis`] band) proposes nothing.
    ///
    /// The first round (or the first after [`ShardRebalancer::reset`], or a
    /// shard-count change) only records the baseline and proposes nothing.
    pub fn rebalance(&mut self, samples: &[ShardSample]) -> Vec<ShardTransfer> {
        self.rebalance_with(samples, &NoopSink)
    }

    /// Like [`ShardRebalancer::rebalance`], but narrates each proposal to
    /// `sink` as a [`TransferEvent`] carrying the bias-corrected smoothed
    /// gradients of the donor and receiver — evidence that exists only
    /// here, at proposal time, and that a flight recorder wants alongside
    /// the transfer itself. Events are emitted in proposal order, one per
    /// returned transfer.
    pub fn rebalance_with(
        &mut self,
        samples: &[ShardSample],
        sink: &dyn EventSink,
    ) -> Vec<ShardTransfer> {
        self.rounds += 1;
        let current: Vec<u64> = samples.iter().map(|s| s.shadow_hits).collect();
        let Some(last) = self.last.replace(current) else {
            self.smoothed = vec![0.0; samples.len()];
            self.observations = 0;
            return Vec::new();
        };
        if last.len() != samples.len() || samples.len() < 2 {
            self.smoothed = vec![0.0; samples.len()];
            self.observations = 0;
            return Vec::new();
        }
        // A cumulative counter running backwards means the engines were
        // rebuilt (flush) without [`ShardRebalancer::reset`]; re-baseline
        // instead of acting on fabricated deltas.
        if samples
            .iter()
            .zip(&last)
            .any(|(s, &prev_shadow)| s.shadow_hits < prev_shadow)
        {
            self.smoothed = vec![0.0; samples.len()];
            self.observations = 0;
            return Vec::new();
        }
        // Per-interval shadow-hit deltas — the frequency-weighted gradient —
        // folded into an exponential moving average so one noisy interval
        // cannot trigger churny transfers. The `1 - (1-α)^k` divisor is the
        // standard start-up bias correction: without it the first rounds
        // after a baseline compare artificially damped gradients against
        // full-scale thresholds and sit on their hands.
        let alpha = self.config.smoothing;
        for (g, (s, &prev_shadow)) in self.smoothed.iter_mut().zip(samples.iter().zip(&last)) {
            let delta = (s.shadow_hits - prev_shadow) as f64;
            *g = alpha * delta + (1.0 - alpha) * *g;
        }
        self.observations += 1;
        let correction = 1.0 - (1.0 - alpha).powi(self.observations.min(1_000) as i32);
        let gradients: Vec<f64> = self.smoothed.iter().map(|g| g / correction).collect();

        // Rank shards by gradient and pair the steepest with the flattest,
        // the second-steepest with the second-flattest, and so on — at most
        // `max_transfers_per_round` pairs, and only while the pair's gap
        // clears both the absolute and the relative (hysteresis) bars.
        let mut order: Vec<usize> = (0..samples.len()).collect();
        order.sort_by(|&a, &b| {
            gradients[b]
                .partial_cmp(&gradients[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut transfers = Vec::new();
        let mut budgets: Vec<u64> = samples.iter().map(|s| s.budget_bytes).collect();
        let pairs = self
            .config
            .max_transfers_per_round
            .min(samples.len() / 2)
            .max(1);
        for k in 0..pairs {
            let winner = order[k];
            let loser = order[samples.len() - 1 - k];
            if winner == loser {
                break;
            }
            let (hot, cold) = (gradients[winner], gradients[loser]);
            if hot - cold < self.config.min_gradient_gap.max(1) as f64 {
                break;
            }
            if hot < cold * (1.0 + self.config.hysteresis) {
                break;
            }
            let bytes = self.config.credit_bytes;
            let affordable =
                budgets[loser] >= bytes && budgets[loser] - bytes >= self.config.min_shard_bytes;
            if !affordable {
                continue;
            }
            budgets[loser] -= bytes;
            budgets[winner] += bytes;
            sink.transfer(&TransferEvent {
                from: loser,
                to: winner,
                bytes,
                from_gradient: gradients[loser],
                to_gradient: gradients[winner],
            });
            transfers.push(ShardTransfer {
                from: loser,
                to: winner,
                bytes,
            });
        }
        self.proposed_transfers += transfers.len() as u64;
        self.proposed_bytes += transfers.iter().map(|t| t.bytes).sum::<u64>();
        transfers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ShardBalanceConfig {
        ShardBalanceConfig {
            credit_bytes: 1 << 20,
            min_shard_bytes: 4 << 20,
            min_gradient_gap: 8,
            hysteresis: 0.2,
            max_transfers_per_round: 2,
            ..ShardBalanceConfig::default()
        }
    }

    fn samples(shadow: &[u64], budget: u64) -> Vec<ShardSample> {
        shadow
            .iter()
            .map(|&shadow_hits| ShardSample {
                shadow_hits,
                budget_bytes: budget,
            })
            .collect()
    }

    /// Runs a baseline round (which must propose nothing) so the next round
    /// observes real deltas.
    fn warmed(config: ShardBalanceConfig, shards: usize) -> ShardRebalancer {
        let mut r = ShardRebalancer::new(shards, config);
        assert!(r.rebalance(&samples(&vec![0; shards], 16 << 20)).is_empty());
        r
    }

    #[test]
    fn first_round_records_baseline_only() {
        let mut r = ShardRebalancer::new(4, config());
        let t = r.rebalance(&samples(&[1_000, 0, 0, 0], 16 << 20));
        assert!(t.is_empty(), "no deltas on the first observation");
        assert_eq!(r.rounds(), 1);
    }

    #[test]
    fn budget_moves_toward_the_steepest_gradient_and_conserves_total() {
        let mut r = warmed(config(), 4);
        let s = samples(&[900, 10, 15, 5], 16 << 20);
        let total_before: u64 = s.iter().map(|x| x.budget_bytes).sum();
        let transfers = r.rebalance(&s);
        assert!(!transfers.is_empty());
        assert_eq!(transfers[0].to, 0, "shard 0 has the steep gradient");
        assert_eq!(transfers[0].from, 3, "shard 3 has the flattest gradient");
        // Conservation: apply every transfer to a budget vector and compare.
        let mut budgets: Vec<u64> = s.iter().map(|x| x.budget_bytes).collect();
        for t in &transfers {
            budgets[t.from] -= t.bytes;
            budgets[t.to] += t.bytes;
        }
        assert_eq!(budgets.iter().sum::<u64>(), total_before);
    }

    #[test]
    fn uniform_gradients_are_a_noop() {
        let mut r = warmed(config(), 4);
        let t = r.rebalance(&samples(&[500, 500, 500, 500], 16 << 20));
        assert!(t.is_empty(), "uniform demand must move nothing: {t:?}");
        // Near-uniform inside the hysteresis band is also a no-op.
        let t = r.rebalance(&samples(&[1_050, 1_000, 1_020, 1_010], 16 << 20));
        assert!(t.is_empty(), "gradients within hysteresis: {t:?}");
    }

    #[test]
    fn donors_are_never_taken_below_the_floor() {
        let cfg = config();
        let mut r = warmed(cfg.clone(), 2);
        // The cold shard sits exactly at floor + one credit: it can afford
        // one transfer and then never again.
        let mut budgets = [16u64 << 20, cfg.min_shard_bytes + cfg.credit_bytes];
        let mut shadow = [0u64, 0];
        for round in 1..=5u64 {
            shadow[0] += 1_000 * round;
            let s: Vec<ShardSample> = (0..2)
                .map(|i| ShardSample {
                    shadow_hits: shadow[i],
                    budget_bytes: budgets[i],
                })
                .collect();
            for t in r.rebalance(&s) {
                budgets[t.from] -= t.bytes;
                budgets[t.to] += t.bytes;
            }
        }
        assert_eq!(budgets[1], cfg.min_shard_bytes, "donor pinned at floor");
        assert_eq!(
            budgets[0] + budgets[1],
            (16 << 20) + cfg.min_shard_bytes + cfg.credit_bytes
        );
    }

    #[test]
    fn multiple_pairs_transfer_in_one_round() {
        let mut r = warmed(config(), 4);
        let t = r.rebalance(&samples(&[2_000, 1_500, 20, 10], 32 << 20));
        assert_eq!(t.len(), 2, "two hot / two cold shards pair off: {t:?}");
        assert_eq!((t[0].to, t[0].from), (0, 3));
        assert_eq!((t[1].to, t[1].from), (1, 2));
    }

    #[test]
    fn counter_reset_is_tolerated() {
        let mut r = warmed(config(), 2);
        let t = r.rebalance(&samples(&[5_000, 10], 16 << 20));
        assert!(!t.is_empty());
        // flush_all: cumulative counters restart below the remembered values.
        let t = r.rebalance(&samples(&[10, 5], 16 << 20));
        assert!(t.is_empty(), "a backwards counter re-baselines the round");
    }

    #[test]
    fn reset_reestablishes_the_baseline() {
        let mut r = warmed(config(), 2);
        r.reset();
        let t = r.rebalance(&samples(&[9_000, 0], 16 << 20));
        assert!(t.is_empty(), "first round after reset only observes");
        let t = r.rebalance(&samples(&[18_000, 0], 16 << 20));
        assert!(!t.is_empty());
        assert!(r.proposed_transfers() >= 1);
        assert!(r.proposed_bytes() >= r.config().credit_bytes);
    }

    #[test]
    fn shard_count_change_rebaselines() {
        let mut r = warmed(config(), 2);
        let t = r.rebalance(&samples(&[4_000, 0, 0, 0], 16 << 20));
        assert!(t.is_empty(), "length change must not fabricate deltas");
        let t = r.rebalance(&samples(&[9_000, 0, 0, 0], 16 << 20));
        assert!(!t.is_empty(), "second round at the new width works");
    }

    #[test]
    fn single_shard_is_inert() {
        let mut r = warmed(config(), 1);
        assert!(r.rebalance(&samples(&[10_000], 16 << 20)).is_empty());
    }

    #[test]
    fn rebalance_with_narrates_each_transfer_with_its_gradients() {
        use crate::events::test_support::RecordingSink;
        let mut r = warmed(config(), 4);
        let sink = RecordingSink::default();
        let transfers = r.rebalance_with(&samples(&[2_000, 1_500, 20, 10], 32 << 20), &sink);
        let events = sink.transfers.lock().unwrap();
        assert_eq!(events.len(), transfers.len());
        for (event, transfer) in events.iter().zip(&transfers) {
            assert_eq!(
                (event.from, event.to, event.bytes),
                (transfer.from, transfer.to, transfer.bytes)
            );
            assert!(
                event.to_gradient > event.from_gradient,
                "budget must move up-gradient: {event:?}"
            );
        }
    }
}
