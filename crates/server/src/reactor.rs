//! The epoll reactor: a small, fixed set of event-loop threads serving
//! many non-blocking connections each — and, since the shared-nothing
//! refactor, *owning* the cache shards they serve.
//!
//! This replaces the thread-per-connection model (one parked OS thread per
//! idle session, connection count hard-capped by the worker count) with the
//! shape production caches use — pelikan's worker event loops, Memcached's
//! libevent threads: `ServerConfig::workers` event loops, each owning an
//! epoll instance, a set of connections and (per `crate::plane`) the
//! engines of its shard group. A loop blocks only in `epoll_wait`; every
//! socket it owns is non-blocking and driven by the
//! `conn::Connection` state machine, so thousands of mostly-idle
//! connections cost a few kilobytes of buffer each instead of a thread.
//!
//! The wakeup pipe doubles as the cross-loop message channel: the acceptor,
//! sibling loops and the control thread push `LoopMsg`s into the loop's
//! `Mailbox` and write one byte to the pipe; the loop drains the mailbox
//! at the top of its readiness pass. Connections whose keys hash to a shard
//! another loop owns get their operations forwarded the same way.
//!
//! The epoll binding is a thin unsafe FFI against the system libc — the
//! workspace is offline/vendored-only, so no `mio`/`libc` crates. The
//! unsafe surface is confined to the `ffi` module: four syscalls and the
//! kernel's `struct epoll_event` layout. The wakeup pipe is a
//! `UnixStream::pair`, which the standard library manages safely.

use crate::conn::{Connection, Ctx, Drive};
use crate::plane::{AdminResult, DataOutcome, LoopMsg, LoopState, PlaneShared};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Thin FFI over the kernel epoll interface. All `unsafe` in the crate
/// lives here.
#[allow(unsafe_code)]
mod ffi {
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::c_int;

    /// The fd is readable.
    pub const EPOLLIN: u32 = 0x001;
    /// The fd is writable.
    pub const EPOLLOUT: u32 = 0x004;
    /// Error condition on the fd.
    pub const EPOLLERR: u32 = 0x008;
    /// Hang-up on the fd.
    pub const EPOLLHUP: u32 = 0x010;
    /// The peer closed its writing half.
    pub const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0o2000000;

    /// The kernel's `struct epoll_event`. Packed on x86-64 (the kernel ABI
    /// packs it there so the 32- and 64-bit layouts match); naturally
    /// aligned on every other architecture.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        /// Ready-event bit set (`EPOLL*`).
        pub events: u32,
        /// The caller's token, echoed back verbatim.
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    /// An owned epoll instance.
    pub struct Epoll {
        fd: RawFd,
    }

    impl Epoll {
        /// Creates a close-on-exec epoll instance.
        pub fn new() -> io::Result<Epoll> {
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll { fd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            let mut event = EpollEvent {
                events,
                data: token,
            };
            let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut event) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Registers `fd` with the given interest set and token.
        pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, events, token)
        }

        /// Changes the interest set of a registered fd.
        pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, events, token)
        }

        /// Deregisters `fd`. Best-effort: the kernel drops the registration
        /// on fd close anyway.
        pub fn delete(&self, fd: RawFd) {
            let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
        }

        /// Waits for ready events, retrying on `EINTR`. Returns how many
        /// entries of `events` were filled.
        pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
            loop {
                let rc = unsafe {
                    epoll_wait(
                        self.fd,
                        events.as_mut_ptr(),
                        events.len() as c_int,
                        timeout_ms,
                    )
                };
                if rc >= 0 {
                    return Ok(rc as usize);
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            unsafe {
                close(self.fd);
            }
        }
    }
}

pub(crate) use ffi::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};

/// Connection counters shared by the acceptor, the event loops and `stats`:
/// a live-connection gauge per loop plus server-wide accept totals. All
/// relaxed atomics — `stats` reads them lock-free.
pub struct ConnTelemetry {
    per_loop: Vec<AtomicU64>,
    total: AtomicU64,
    rejected: AtomicU64,
    idle_closed: AtomicU64,
    max_connections: u64,
}

impl ConnTelemetry {
    /// Counters for `loops` event loops under a `max_connections` gate.
    pub(crate) fn new(loops: usize, max_connections: u64) -> ConnTelemetry {
        ConnTelemetry {
            per_loop: (0..loops).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            idle_closed: AtomicU64::new(0),
            max_connections,
        }
    }

    /// Live connections across every loop.
    pub fn curr(&self) -> u64 {
        self.per_loop
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Connections accepted over the server's lifetime.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Connections shed at the accept gate.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Connections closed by the idle-timeout reaper.
    pub fn idle_closed(&self) -> u64 {
        self.idle_closed.load(Ordering::Relaxed)
    }

    /// The accept gate's connection limit.
    pub fn max_connections(&self) -> u64 {
        self.max_connections
    }

    /// Number of event loops.
    pub fn loops(&self) -> usize {
        self.per_loop.len()
    }

    /// Live connections owned by loop `index`.
    pub fn loop_curr(&self, index: usize) -> u64 {
        self.per_loop[index].load(Ordering::Relaxed)
    }

    /// The acceptor admitted a connection destined for loop `index`.
    pub(crate) fn on_accept(&self, index: usize) {
        self.per_loop[index].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection owned by loop `index` closed (or never registered).
    pub(crate) fn on_close(&self, index: usize) {
        self.per_loop[index].fetch_sub(1, Ordering::Relaxed);
    }

    /// The idle reaper closed a connection on loop `index`.
    pub(crate) fn on_idle_close(&self, index: usize) {
        self.idle_closed.fetch_add(1, Ordering::Relaxed);
        self.on_close(index);
    }

    /// Rolls an `on_accept` back entirely (the dispatch was refused): the
    /// connection was never served, so it should not count as accepted.
    pub(crate) fn on_dispatch_refused(&self, index: usize) {
        self.per_loop[index].fetch_sub(1, Ordering::Relaxed);
        self.total.fetch_sub(1, Ordering::Relaxed);
    }

    /// The acceptor shed a connection at the gate.
    pub(crate) fn on_reject(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }
}

/// Token reserved for the loop's wakeup pipe.
const WAKE_TOKEN: u64 = 0;
/// Ready events drained per `epoll_wait`.
const EVENT_BATCH: usize = 256;
/// Backstop timeout so a lost wakeup can never wedge shutdown.
const WAIT_BACKSTOP_MS: i32 = 500;

/// The message queue between the rest of the server and one event loop.
struct Inbox {
    msgs: Mutex<Vec<LoopMsg>>,
    shutdown: AtomicBool,
}

/// The sending half of a loop's mailbox: push messages, write one byte to
/// the wakeup pipe. Shared by the acceptor, sibling loops and the control
/// thread via [`PlaneShared::mailboxes`].
pub(crate) struct Mailbox {
    inbox: Arc<Inbox>,
    /// Write side of the wakeup pipe; one byte = "check your mailbox".
    waker: UnixStream,
}

impl Mailbox {
    /// Delivers one message. Fails (handing the message back) once the
    /// loop has stopped serving — the check happens under the inbox lock,
    /// the same lock teardown drains under, so a message can never be
    /// stranded after the final drain.
    // The Err variant carries the whole message back by design: callers
    // that care (the acceptor) re-own the connection, and the common path
    // moves the value without an allocation.
    #[allow(clippy::result_large_err)]
    pub(crate) fn send(&self, msg: LoopMsg) -> Result<(), LoopMsg> {
        {
            let mut msgs = self.inbox.msgs.lock();
            if self.inbox.shutdown.load(Ordering::SeqCst) {
                return Err(msg);
            }
            msgs.push(msg);
        }
        self.wake();
        Ok(())
    }

    /// Delivers a batch under one lock acquisition and one wakeup.
    pub(crate) fn send_many(&self, batch: Vec<LoopMsg>) -> Result<(), Vec<LoopMsg>> {
        {
            let mut msgs = self.inbox.msgs.lock();
            if self.inbox.shutdown.load(Ordering::SeqCst) {
                return Err(batch);
            }
            msgs.extend(batch);
        }
        self.wake();
        Ok(())
    }

    fn wake(&self) {
        // A full pipe means a wakeup is already pending — losing this
        // write is fine.
        let _ = (&self.waker).write(&[1u8]);
    }
}

/// The loop-side resources [`LoopHandle::spawn`] consumes: created eagerly
/// by [`loop_channel`] so a resource failure surfaces as a start error
/// instead of a dead loop.
pub(crate) struct LoopSeed {
    pub(crate) index: usize,
    epoll: Epoll,
    wake_rx: UnixStream,
    inbox: Arc<Inbox>,
}

/// Creates the mailbox/loop-seed pair for event loop `index`. The mailboxes
/// go into [`PlaneShared`] before any loop thread starts, so every loop can
/// message every other from its very first readiness pass.
pub(crate) fn loop_channel(index: usize) -> std::io::Result<(Mailbox, LoopSeed)> {
    let (waker, wake_rx) = UnixStream::pair()?;
    waker.set_nonblocking(true)?;
    wake_rx.set_nonblocking(true)?;
    let epoll = Epoll::new()?;
    epoll.add(wake_rx.as_raw_fd(), EPOLLIN, WAKE_TOKEN)?;
    let inbox = Arc::new(Inbox {
        msgs: Mutex::new(Vec::new()),
        shutdown: AtomicBool::new(false),
    });
    Ok((
        Mailbox {
            inbox: Arc::clone(&inbox),
            waker,
        },
        LoopSeed {
            index,
            epoll,
            wake_rx,
            inbox,
        },
    ))
}

/// The acceptor-side handle to one running event loop.
pub(crate) struct LoopHandle {
    index: usize,
    shared: Arc<PlaneShared>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl LoopHandle {
    /// Spawns event loop `index` from its seed, owning `state`'s shard
    /// engines and reporting into `telemetry`.
    pub(crate) fn spawn(
        seed: LoopSeed,
        state: LoopState,
        shared: Arc<PlaneShared>,
        telemetry: Arc<ConnTelemetry>,
        idle_timeout: Option<Duration>,
    ) -> std::io::Result<LoopHandle> {
        let index = seed.index;
        let thread = std::thread::Builder::new()
            .name(format!("cache-loop-{index}"))
            .spawn(move || {
                // The reap sweep runs at a quarter of the timeout (clamped
                // to something epoll_wait can express) so a connection
                // overstays by at most ~25%.
                let sweep = idle_timeout
                    .map(|t| (t / 4).clamp(Duration::from_millis(10), Duration::from_millis(500)));
                EventLoop {
                    index,
                    epoll: seed.epoll,
                    wake_rx: seed.wake_rx,
                    inbox: seed.inbox,
                    state,
                    telemetry,
                    conns: HashMap::new(),
                    next_token: WAKE_TOKEN + 1,
                    idle_timeout,
                    sweep,
                    next_sweep: sweep.map(|s| Instant::now() + s),
                }
                .run()
            })?;
        Ok(LoopHandle {
            index,
            shared,
            thread: Mutex::new(Some(thread)),
        })
    }

    /// Hands a fresh connection to the loop. If the loop has stopped
    /// serving — normal shutdown, or a loop that died on a hard epoll
    /// error — the stream is handed back so the acceptor can fail over to
    /// a live loop instead of stranding an accepted client.
    pub(crate) fn dispatch(&self, stream: TcpStream) -> Result<(), TcpStream> {
        self.shared.mailboxes[self.index]
            .send(LoopMsg::Conn(stream))
            .map_err(|msg| match msg {
                LoopMsg::Conn(stream) => stream,
                _ => unreachable!("mailbox returned a different message"),
            })
    }

    /// Tells the loop to close every connection and exit; [`LoopHandle::join`]
    /// completes it.
    pub(crate) fn begin_shutdown(&self) {
        let mailbox = &self.shared.mailboxes[self.index];
        mailbox.inbox.shutdown.store(true, Ordering::SeqCst);
        mailbox.wake();
    }

    /// Waits for the loop thread to exit.
    pub(crate) fn join(&self) {
        if let Some(thread) = self.thread.lock().take() {
            let _ = thread.join();
        }
    }
}

/// One event loop: an epoll instance, the connections it serves and the
/// shard engines it owns (inside [`LoopState`]).
struct EventLoop {
    index: usize,
    epoll: Epoll,
    wake_rx: UnixStream,
    inbox: Arc<Inbox>,
    state: LoopState,
    telemetry: Arc<ConnTelemetry>,
    conns: HashMap<u64, Connection>,
    next_token: u64,
    idle_timeout: Option<Duration>,
    sweep: Option<Duration>,
    next_sweep: Option<Instant>,
}

impl EventLoop {
    fn run(mut self) {
        let mut events = vec![EpollEvent { events: 0, data: 0 }; EVENT_BATCH];
        // On a hard epoll error the loop cannot serve anymore; it falls
        // through to teardown so its connections get closed, not stranded.
        loop {
            let timeout = match self.sweep {
                Some(sweep) => (sweep.as_millis() as i32).min(WAIT_BACKSTOP_MS),
                None => WAIT_BACKSTOP_MS,
            };
            let Ok(n) = self.epoll.wait(&mut events, timeout) else {
                break;
            };
            if self.inbox.shutdown.load(Ordering::SeqCst) {
                break;
            }
            // One atomic load; a changed tenant table is copied out here,
            // never on the request path.
            self.state.refresh_tenants();
            // Sample cumulative counters into the history ring (in-place
            // overwrite within the current interval bucket).
            self.state.observe();
            for event in &events[..n] {
                // Copy out of the (possibly packed) event before use.
                let token = event.data;
                let ready = event.events;
                if token == WAKE_TOKEN {
                    self.drain_waker();
                    self.process_mailbox();
                } else {
                    self.drive(token, ready);
                }
            }
            // One mailbox lock + one wakeup per sibling loop per pass, no
            // matter how many operations were forwarded.
            self.state.flush_outbound();
            self.sweep_idle();
        }
        // Teardown: closing the sockets (by dropping them) unblocks every
        // peer with EOF, exactly like the old registry sweep did.
        for (_, conn) in self.conns.drain() {
            self.epoll.delete(conn.fd());
            self.telemetry.on_close(self.index);
            drop(conn);
        }
        // Mark the inbox closed *under its lock* before the final drain:
        // `Mailbox::send` checks the flag under the same lock, so after
        // this block no message can ever be stranded in the inbox — this
        // also covers a loop that died on a hard epoll error rather than a
        // requested shutdown. Dropping a drained message drops any reply
        // sender inside it, unblocking a waiting control thread or sync
        // caller.
        let mut msgs = self.inbox.msgs.lock();
        self.inbox.shutdown.store(true, Ordering::SeqCst);
        for msg in msgs.drain(..) {
            if let LoopMsg::Conn(_) = &msg {
                self.telemetry.on_close(self.index);
            }
            drop(msg);
        }
    }

    fn drain_waker(&mut self) {
        let mut sink = [0u8; 64];
        while matches!((&self.wake_rx).read(&mut sink), Ok(n) if n > 0) {}
    }

    fn process_mailbox(&mut self) {
        let msgs: Vec<LoopMsg> = std::mem::take(&mut *self.inbox.msgs.lock());
        for msg in msgs {
            match msg {
                LoopMsg::Conn(stream) => self.adopt(stream),
                LoopMsg::Data(op) => self.state.serve_remote(op),
                LoopMsg::DataReply {
                    token,
                    seq,
                    slot,
                    outcome,
                } => self.resume_data(token, seq, slot, outcome),
                LoopMsg::AdminDone { token, seq, result } => self.resume_admin(token, seq, result),
                LoopMsg::Control(msg) => self.state.serve_control(msg),
                LoopMsg::HotFill {
                    tenant,
                    id,
                    key,
                    flags,
                    data,
                    version,
                } => self.state.hot_fill(tenant, id, key, flags, data, version),
                LoopMsg::HotInvalidate { tenant, id } => self.state.hot_invalidate(tenant, id),
                LoopMsg::HotFlushTenant { tenant } => self.state.hot_flush_tenant(tenant),
            }
        }
    }

    fn adopt(&mut self, stream: TcpStream) {
        let token = self.next_token;
        self.next_token += 1;
        match Connection::adopt(stream) {
            Ok(conn) => {
                if self.epoll.add(conn.fd(), conn.interest(), token).is_ok() {
                    self.conns.insert(token, conn);
                } else {
                    self.telemetry.on_close(self.index);
                }
            }
            Err(_) => self.telemetry.on_close(self.index),
        }
    }

    fn drive(&mut self, token: u64, ready: u32) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let readable = ready & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0;
        let writable = ready & EPOLLOUT != 0;
        let mut ctx = Ctx {
            state: &mut self.state,
            token,
        };
        match conn.on_ready(readable, writable, &mut ctx) {
            Drive::Keep { interest, changed } => {
                if changed && self.epoll.modify(conn.fd(), interest, token).is_err() {
                    // Cannot adjust the registration: fail the connection
                    // rather than spin on a stale interest set.
                    self.close(token);
                }
            }
            Drive::Close => self.close(token),
        }
    }

    /// A reply for a remote data operation a parked connection issued.
    fn resume_data(&mut self, token: u64, seq: u64, slot: usize, outcome: DataOutcome) {
        let Some(conn) = self.conns.get_mut(&token) else {
            // The connection closed while its operation was in flight.
            return;
        };
        if conn.on_data_reply(seq, slot, outcome) {
            // The operation completed: resume parsing where it parked.
            self.drive(token, 0);
        }
    }

    /// The control thread finished an admin command a parked connection
    /// forwarded.
    fn resume_admin(&mut self, token: u64, seq: u64, result: AdminResult) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.on_admin_done(seq, result) {
            self.drive(token, 0);
        }
    }

    /// Closes connections silent past the idle timeout. Connections with an
    /// operation in flight are never reaped — they are waiting on us, not
    /// the other way round.
    fn sweep_idle(&mut self) {
        let (Some(timeout), Some(sweep), Some(next)) =
            (self.idle_timeout, self.sweep, self.next_sweep)
        else {
            return;
        };
        let now = Instant::now();
        if now < next {
            return;
        }
        self.next_sweep = Some(now + sweep);
        let stale: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, conn)| !conn.is_parked() && conn.idle_for(now) >= timeout)
            .map(|(&token, _)| token)
            .collect();
        for token in stale {
            if let Some(conn) = self.conns.remove(&token) {
                self.epoll.delete(conn.fd());
                self.telemetry.on_idle_close(self.index);
                self.state.note_idle_reap();
            }
        }
    }

    fn close(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            self.epoll.delete(conn.fd());
            self.telemetry.on_close(self.index);
        }
    }
}
