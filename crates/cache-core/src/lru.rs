//! A weighted LRU list with an exactly-maintained *tail region*.
//!
//! [`LruList`] is the recency-ordered queue underlying the physical eviction
//! queues in this crate. Besides the usual O(1) `access` / `insert` /
//! `pop_lru`, it offers two features the Cliffhanger algorithms rely on:
//!
//! * **Tail region** — the cliff-scaling algorithm (paper §5.1) needs to know
//!   whether a hit landed "in the last part of the queue (the last 128
//!   items)". `LruList` maintains the boundary of the last `k` items exactly,
//!   in O(1) amortised time per operation, by keeping the list in three
//!   internally-ordered segments (upper, lower, tail) whose concatenation is
//!   the LRU order.
//! * **Middle insertion** — the Facebook eviction scheme (paper §5.5) inserts
//!   an item in the middle of the queue on first use and promotes it to the
//!   top on its second hit. [`InsertPosition::Middle`] lands the new item at
//!   the upper/lower segment boundary, which is maintained at half of the
//!   non-tail population.

use crate::key::Key;
use crate::list::{LinkedArena, NodeHandle};
use std::collections::HashMap;

/// Where a hit was found inside the physical queue.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HitLocation {
    /// The hit was above the tail region (the common case).
    Main,
    /// The hit fell within the last `tail_items` items of the queue — the
    /// region the cliff-scaling algorithm interprets as "left of the pointer".
    TailRegion,
}

/// Where to insert a new item.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum InsertPosition {
    /// Most-recently-used end (plain LRU behaviour).
    #[default]
    Top,
    /// Middle of the queue (the Facebook insertion scheme for first-time
    /// items).
    Middle,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Segment {
    Upper,
    Lower,
    Tail,
}

#[derive(Clone, Copy, Debug)]
struct Slot {
    segment: Segment,
    handle: NodeHandle,
    weight: u64,
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    key: Key,
    weight: u64,
}

/// A weighted LRU list with tail-region tracking and middle insertion.
///
/// The logical order, from most- to least-recently used, is always
/// `upper ++ lower ++ tail`; rebalancing only ever moves items across the
/// segment boundaries in a way that preserves that order, so the list behaves
/// exactly like a single LRU queue.
#[derive(Debug, Default)]
pub struct LruList {
    upper: LinkedArena<Entry>,
    lower: LinkedArena<Entry>,
    tail: LinkedArena<Entry>,
    index: HashMap<Key, Slot>,
    tail_items: usize,
    total_weight: u64,
}

impl LruList {
    /// Creates an empty list with no tail region.
    pub fn new() -> Self {
        Self::with_tail_region(0)
    }

    /// Creates an empty list whose last `tail_items` items are reported as
    /// [`HitLocation::TailRegion`] on access.
    pub fn with_tail_region(tail_items: usize) -> Self {
        LruList {
            upper: LinkedArena::new(),
            lower: LinkedArena::new(),
            tail: LinkedArena::new(),
            index: HashMap::new(),
            tail_items,
            total_weight: 0,
        }
    }

    /// Number of items in the list.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Sum of the weights of all items.
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }

    /// Size of the configured tail region in items.
    pub fn tail_region(&self) -> usize {
        self.tail_items
    }

    /// Reconfigures the tail region to the last `items` items.
    pub fn set_tail_region(&mut self, items: usize) {
        self.tail_items = items;
        self.rebalance();
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: Key) -> bool {
        self.index.contains_key(&key)
    }

    /// Returns the stored weight of `key` without affecting recency.
    pub fn weight_of(&self, key: Key) -> Option<u64> {
        self.index.get(&key).map(|s| s.weight)
    }

    /// Records an access to `key`, promoting it to the most-recently-used
    /// position. Returns where the item was found, or `None` on a miss.
    pub fn access(&mut self, key: Key) -> Option<HitLocation> {
        let slot = *self.index.get(&key)?;
        let entry = match slot.segment {
            Segment::Upper => self.upper.remove(slot.handle),
            Segment::Lower => self.lower.remove(slot.handle),
            Segment::Tail => self.tail.remove(slot.handle),
        };
        let handle = self.upper.push_front(entry);
        self.index.insert(
            key,
            Slot {
                segment: Segment::Upper,
                handle,
                weight: slot.weight,
            },
        );
        self.rebalance();
        Some(match slot.segment {
            Segment::Tail => HitLocation::TailRegion,
            _ => HitLocation::Main,
        })
    }

    /// Inserts `key` with the given weight at `position`.
    ///
    /// If the key is already present its weight is updated and it is moved to
    /// the requested position; the previous weight is returned.
    pub fn insert(&mut self, key: Key, weight: u64, position: InsertPosition) -> Option<u64> {
        let previous = self.remove(key);
        let entry = Entry { key, weight };
        let (segment, handle) = match position {
            InsertPosition::Top => (Segment::Upper, self.upper.push_front(entry)),
            InsertPosition::Middle => (Segment::Lower, self.lower.push_front(entry)),
        };
        self.index.insert(
            key,
            Slot {
                segment,
                handle,
                weight,
            },
        );
        self.total_weight += weight;
        self.rebalance();
        previous
    }

    /// Removes `key`, returning its weight if it was present.
    pub fn remove(&mut self, key: Key) -> Option<u64> {
        let slot = self.index.remove(&key)?;
        match slot.segment {
            Segment::Upper => self.upper.remove(slot.handle),
            Segment::Lower => self.lower.remove(slot.handle),
            Segment::Tail => self.tail.remove(slot.handle),
        };
        self.total_weight -= slot.weight;
        self.rebalance();
        Some(slot.weight)
    }

    /// Removes and returns the least-recently-used item.
    pub fn pop_lru(&mut self) -> Option<(Key, u64)> {
        let entry = self
            .tail
            .pop_back()
            .or_else(|| self.lower.pop_back())
            .or_else(|| self.upper.pop_back())?;
        self.index.remove(&entry.key);
        self.total_weight -= entry.weight;
        self.rebalance();
        Some((entry.key, entry.weight))
    }

    /// Returns the least-recently-used item without removing it.
    pub fn peek_lru(&self) -> Option<(Key, u64)> {
        let entry = self
            .tail
            .back()
            .and_then(|h| self.tail.get(h))
            .or_else(|| self.lower.back().and_then(|h| self.lower.get(h)))
            .or_else(|| self.upper.back().and_then(|h| self.upper.get(h)))?;
        Some((entry.key, entry.weight))
    }

    /// Iterates over keys from most- to least-recently used.
    pub fn iter(&self) -> impl Iterator<Item = (Key, u64)> + '_ {
        self.upper
            .iter()
            .chain(self.lower.iter())
            .chain(self.tail.iter())
            .map(|e| (e.key, e.weight))
    }

    /// Removes every item.
    pub fn clear(&mut self) {
        self.upper.clear();
        self.lower.clear();
        self.tail.clear();
        self.index.clear();
        self.total_weight = 0;
    }

    /// Target sizes: the tail region holds `min(tail_items, len)` items and
    /// the remainder is split evenly between upper and lower (upper holding
    /// the extra item when odd) so that [`InsertPosition::Middle`] lands in
    /// the middle of the non-tail population.
    fn targets(&self) -> (usize, usize) {
        let len = self.index.len();
        let tail_target = self.tail_items.min(len);
        let rest = len - tail_target;
        let upper_target = rest.div_ceil(2);
        (upper_target, tail_target)
    }

    fn rebalance(&mut self) {
        let (upper_target, tail_target) = self.targets();
        // Fill the tail from the lower segment (and the lower from the upper)
        // or drain it back, preserving order across boundaries.
        loop {
            let upper_len = self.upper.len();
            let lower_len = self.lower.len();
            let tail_len = self.tail.len();

            if tail_len < tail_target && lower_len > 0 {
                let entry = self.lower.pop_back().expect("lower non-empty");
                let handle = self.tail.push_front(entry);
                self.reindex(entry.key, Segment::Tail, handle);
            } else if tail_len < tail_target && upper_len > 0 {
                let entry = self.upper.pop_back().expect("upper non-empty");
                let handle = self.tail.push_front(entry);
                self.reindex(entry.key, Segment::Tail, handle);
            } else if tail_len > tail_target {
                let entry = self.tail.pop_front().expect("tail non-empty");
                let handle = self.lower.push_back(entry);
                self.reindex(entry.key, Segment::Lower, handle);
            } else if upper_len > upper_target {
                let entry = self.upper.pop_back().expect("upper non-empty");
                let handle = self.lower.push_front(entry);
                self.reindex(entry.key, Segment::Lower, handle);
            } else if upper_len < upper_target && lower_len > 0 {
                let entry = self.lower.pop_front().expect("lower non-empty");
                let handle = self.upper.push_back(entry);
                self.reindex(entry.key, Segment::Upper, handle);
            } else {
                break;
            }
        }
    }

    fn reindex(&mut self, key: Key, segment: Segment, handle: NodeHandle) {
        if let Some(slot) = self.index.get_mut(&key) {
            slot.segment = segment;
            slot.handle = handle;
        }
    }

    #[cfg(test)]
    fn segment_lens(&self) -> (usize, usize, usize) {
        (self.upper.len(), self.lower.len(), self.tail.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> Key {
        Key::new(i)
    }

    fn order(list: &LruList) -> Vec<u64> {
        list.iter().map(|(k, _)| k.raw()).collect()
    }

    #[test]
    fn access_promotes_to_mru() {
        let mut l = LruList::new();
        for i in 0..4 {
            l.insert(key(i), 1, InsertPosition::Top);
        }
        assert_eq!(order(&l), vec![3, 2, 1, 0]);
        assert_eq!(l.access(key(0)), Some(HitLocation::Main));
        assert_eq!(order(&l), vec![0, 3, 2, 1]);
        assert_eq!(l.access(key(9)), None);
    }

    #[test]
    fn pop_lru_is_least_recent() {
        let mut l = LruList::new();
        for i in 0..3 {
            l.insert(key(i), 10, InsertPosition::Top);
        }
        l.access(key(0));
        assert_eq!(l.pop_lru(), Some((key(1), 10)));
        assert_eq!(l.pop_lru(), Some((key(2), 10)));
        assert_eq!(l.pop_lru(), Some((key(0), 10)));
        assert_eq!(l.pop_lru(), None);
    }

    #[test]
    fn weights_are_tracked() {
        let mut l = LruList::new();
        l.insert(key(1), 100, InsertPosition::Top);
        l.insert(key(2), 50, InsertPosition::Top);
        assert_eq!(l.total_weight(), 150);
        // Re-inserting updates the weight rather than double counting.
        assert_eq!(l.insert(key(1), 70, InsertPosition::Top), Some(100));
        assert_eq!(l.total_weight(), 120);
        assert_eq!(l.weight_of(key(1)), Some(70));
        l.remove(key(2));
        assert_eq!(l.total_weight(), 70);
    }

    #[test]
    fn tail_region_hits_are_classified() {
        let mut l = LruList::with_tail_region(2);
        for i in 0..6 {
            l.insert(key(i), 1, InsertPosition::Top);
        }
        // Order is [5,4,3,2,1,0]; tail region holds {1, 0}.
        assert_eq!(l.access(key(0)), Some(HitLocation::TailRegion));
        // 0 promoted: order [0,5,4,3,2,1]; tail region now {2, 1}.
        assert_eq!(l.access(key(1)), Some(HitLocation::TailRegion));
        assert_eq!(l.access(key(5)), Some(HitLocation::Main));
        assert_eq!(l.access(key(0)), Some(HitLocation::Main));
    }

    #[test]
    fn tail_region_tracks_exact_boundary() {
        let mut l = LruList::with_tail_region(3);
        for i in 0..10 {
            l.insert(key(i), 1, InsertPosition::Top);
        }
        // LRU order from MRU: 9..0. The last 3 items are 2, 1, 0.
        for probe in [2u64, 1, 0] {
            let mut fresh = LruList::with_tail_region(3);
            for i in 0..10 {
                fresh.insert(key(i), 1, InsertPosition::Top);
            }
            assert_eq!(
                fresh.access(key(probe)),
                Some(HitLocation::TailRegion),
                "key {probe} should be in the tail region"
            );
        }
        for probe in [3u64, 5, 9] {
            let mut fresh = LruList::with_tail_region(3);
            for i in 0..10 {
                fresh.insert(key(i), 1, InsertPosition::Top);
            }
            assert_eq!(
                fresh.access(key(probe)),
                Some(HitLocation::Main),
                "key {probe} should be above the tail region"
            );
        }
    }

    #[test]
    fn tail_region_smaller_than_list() {
        let mut l = LruList::with_tail_region(10);
        l.insert(key(1), 1, InsertPosition::Top);
        l.insert(key(2), 1, InsertPosition::Top);
        // Every item is within the last 10, so every hit is a tail hit.
        assert_eq!(l.access(key(1)), Some(HitLocation::TailRegion));
        assert_eq!(l.access(key(2)), Some(HitLocation::TailRegion));
    }

    #[test]
    fn middle_insertion_lands_between_halves() {
        let mut l = LruList::new();
        for i in 0..6 {
            l.insert(key(i), 1, InsertPosition::Top);
        }
        // Order: [5,4,3,2,1,0]. A middle insert should appear after the upper
        // half (3 items) and before the rest.
        l.insert(key(100), 1, InsertPosition::Middle);
        let ord = order(&l);
        let pos = ord.iter().position(|&k| k == 100).unwrap();
        assert!(
            (2..=4).contains(&pos),
            "middle insert landed at position {pos} of {ord:?}"
        );
        // Eviction order must still end with the coldest original items.
        let mut evictions = Vec::new();
        while let Some((k, _)) = l.pop_lru() {
            evictions.push(k.raw());
        }
        assert_eq!(evictions.last(), Some(&5));
        assert_eq!(evictions.first(), Some(&0));
    }

    #[test]
    fn ordering_preserved_across_segments() {
        // Regardless of tail-region bookkeeping, the global eviction order
        // must be exactly reverse insertion order when there are no hits.
        let mut l = LruList::with_tail_region(4);
        for i in 0..32 {
            l.insert(key(i), 1, InsertPosition::Top);
        }
        let mut expected: Vec<u64> = (0..32).collect();
        let mut got = Vec::new();
        while let Some((k, _)) = l.pop_lru() {
            got.push(k.raw());
        }
        expected.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, expected);

        let mut l = LruList::with_tail_region(4);
        for i in 0..32 {
            l.insert(key(i), 1, InsertPosition::Top);
        }
        let mut evicted = Vec::new();
        for _ in 0..10 {
            evicted.push(l.pop_lru().unwrap().0.raw());
        }
        assert_eq!(evicted, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn set_tail_region_rebalances() {
        let mut l = LruList::new();
        for i in 0..8 {
            l.insert(key(i), 1, InsertPosition::Top);
        }
        assert_eq!(l.access(key(0)), Some(HitLocation::Main));
        l.set_tail_region(4);
        // After reconfiguration the 4 coldest items are 1,2,3,4 (0 was just
        // promoted).
        assert_eq!(l.access(key(1)), Some(HitLocation::TailRegion));
        assert_eq!(l.access(key(7)), Some(HitLocation::Main));
    }

    #[test]
    fn segments_respect_targets() {
        let mut l = LruList::with_tail_region(2);
        for i in 0..9 {
            l.insert(key(i), 1, InsertPosition::Top);
        }
        let (u, lo, t) = l.segment_lens();
        assert_eq!(t, 2);
        assert_eq!(u + lo + t, 9);
        assert_eq!(u, 4); // ceil((9-2)/2)
    }

    #[test]
    fn peek_does_not_modify() {
        let mut l = LruList::new();
        l.insert(key(1), 5, InsertPosition::Top);
        l.insert(key(2), 5, InsertPosition::Top);
        assert_eq!(l.peek_lru(), Some((key(1), 5)));
        assert_eq!(l.len(), 2);
        assert_eq!(l.peek_lru(), Some((key(1), 5)));
    }

    #[test]
    fn clear_resets() {
        let mut l = LruList::with_tail_region(2);
        for i in 0..5 {
            l.insert(key(i), 3, InsertPosition::Top);
        }
        l.clear();
        assert!(l.is_empty());
        assert_eq!(l.total_weight(), 0);
        assert_eq!(l.pop_lru(), None);
    }
}
