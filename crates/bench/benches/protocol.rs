//! Wire-protocol costs: parsing and encoding the Memcached ASCII protocol.

use bytes::BytesMut;
use cache_server::protocol::{encode_response, parse_command, Response, Value};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_parse");
    group.throughput(Throughput::Elements(1));

    group.bench_function("get", |b| {
        b.iter(|| {
            let mut buf = BytesMut::from(&b"get user:12345:profile\r\n"[..]);
            black_box(parse_command(&mut buf))
        });
    });

    group.bench_function("set_1kb", |b| {
        let mut template = Vec::new();
        template.extend_from_slice(b"set user:12345:profile 0 0 1024\r\n");
        template.extend_from_slice(&vec![0x61u8; 1024]);
        template.extend_from_slice(b"\r\n");
        b.iter(|| {
            let mut buf = BytesMut::from(&template[..]);
            black_box(parse_command(&mut buf))
        });
    });
    group.finish();
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_encode");
    group.throughput(Throughput::Elements(1));

    group.bench_function("value_1kb", |b| {
        let response = Response::Values(vec![Value {
            key: bytes::Bytes::from_static(b"user:12345:profile"),
            flags: 0,
            data: bytes::Bytes::from(vec![0x61u8; 1024]),
        }]);
        let mut out = Vec::with_capacity(2048);
        b.iter(|| {
            out.clear();
            encode_response(&response, &mut out);
            black_box(out.len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_parse, bench_encode);
criterion_main!(benches);
