//! Test configuration and the deterministic generation RNG.

/// Per-test configuration; only `cases` is honored by the shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic SplitMix64 generator used for input generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The fixed-seed generator used by [`crate::proptest!`]: every run of a
    /// test sees the same input sequence, so failures reproduce without
    /// persisted seeds.
    pub fn deterministic() -> Self {
        TestRng {
            state: 0x5EED_C11F_F4A6_E125,
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}
