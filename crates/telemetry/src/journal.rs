//! The control-plane flight recorder: a fixed-size ring journal.
//!
//! Every decision the control plane makes — a budget transfer along a
//! shadow-hit gradient, a carve-out for a new tenant, a flush, an idle
//! reap, a shed connection, a sampled slow op — is appended as a structured
//! [`JournalEvent`]. The journal is a bounded ring: when it is full the
//! oldest events are overwritten, so memory use is fixed no matter how long
//! the server runs.
//!
//! Concurrency model: a sequence number is claimed with one lock-free
//! `fetch_add`, which also picks the slot (`seq % capacity`); the slot
//! write itself takes a per-slot latch that only ever contends when two
//! appends land exactly `capacity` events apart. Appends are off every
//! per-request fast path by construction — only control-plane actors
//! (the control thread, the idle reaper, the accept gate, the sampled
//! slow-op path) write here.
//!
//! Sequence numbers are monotonic and dense, so a reader can detect loss:
//! if the oldest event in a snapshot has `seq > 0`, exactly `seq` older
//! events were overwritten.

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One structured control-plane event.
///
/// Serialized externally tagged, the way real serde renders enums: unit
/// variants become a string (`"ConnectionShed"`), data variants a
/// single-entry object (`{"ShardTransfer": {...}}`). The variant name is
/// the tag, verbatim.
#[derive(Clone, Debug, Serialize)]
pub enum EventKind {
    /// The cross-shard rebalancer moved budget between two shards of one
    /// tenant, justified by the smoothed shadow-hit gradients recorded here.
    ShardTransfer {
        /// Tenant whose shard budgets moved.
        tenant: String,
        /// Donating shard.
        from_shard: usize,
        /// Receiving shard.
        to_shard: usize,
        /// Bytes moved.
        bytes: u64,
        /// Smoothed shadow-hit gradient of the donor at decision time.
        from_gradient: f64,
        /// Smoothed shadow-hit gradient of the receiver at decision time.
        to_gradient: f64,
    },
    /// The cross-tenant arbiter moved budget between two tenants.
    TenantTransfer {
        /// Donating tenant.
        from_tenant: String,
        /// Receiving tenant.
        to_tenant: String,
        /// Bytes moved (summed over the per-shard slices).
        bytes: u64,
        /// Smoothed shadow-hit gradient of the donor at decision time.
        from_gradient: f64,
        /// Smoothed shadow-hit gradient of the receiver at decision time.
        to_gradient: f64,
    },
    /// A cliff scaler changed its Talus request ratio materially (the
    /// emitting side buckets the ratio so the journal records steps, not
    /// every pointer twitch).
    ScalerRatio {
        /// Shard hosting the engine.
        shard: usize,
        /// Tenant owning the engine.
        tenant: String,
        /// Slab class whose partitioned queue changed ratio.
        class: u32,
        /// The new left-queue request ratio in `[0, 1]`.
        ratio: f64,
    },
    /// An engine granted free-pool memory to a slab class (the
    /// first-come-first-serve warmup path).
    FreePoolGrant {
        /// Shard hosting the engine.
        shard: usize,
        /// Tenant owning the engine.
        tenant: String,
        /// Slab class that grew.
        class: u32,
        /// Bytes granted.
        bytes: u64,
    },
    /// Live tenant onboarding carved budget out of existing tenants on one
    /// shard.
    CarveOut {
        /// Tenant that received the carve.
        tenant: String,
        /// Shard the budget was carved on.
        shard: usize,
        /// Bytes carved.
        bytes: u64,
    },
    /// A tenant was created live (`app_create`).
    TenantCreated {
        /// The new tenant's name.
        tenant: String,
        /// Its arbitration weight.
        weight: u64,
    },
    /// A tenant's items were flushed (`flush_all` in its session).
    TenantFlushed {
        /// The flushed tenant.
        tenant: String,
    },
    /// The idle reaper closed a connection that exceeded the idle timeout.
    IdleReap {
        /// Event loop that owned the connection.
        loop_index: usize,
    },
    /// The accept gate shed a connection over `max_connections`.
    ConnectionShed,
    /// The hot-key control round promoted a key into the per-loop replica
    /// caches.
    HotKeyPromoted {
        /// Tenant owning the key.
        tenant: String,
        /// The key (lossily decoded for the journal).
        key: String,
        /// The merged sampled-window op count that justified promotion.
        count: u64,
    },
    /// The hot-key control round demoted a key (it cooled below the
    /// demotion threshold or was displaced by a hotter key).
    HotKeyDemoted {
        /// Tenant owning the key.
        tenant: String,
        /// The key (lossily decoded for the journal).
        key: String,
    },
    /// A data or admin op exceeded `slow_op_micros` (sampled: the first
    /// slow op and every 64th after it per loop, so a pathological
    /// threshold cannot flood the ring).
    SlowOp {
        /// Event loop (or control thread) that served the op.
        loop_index: usize,
        /// Command class: `"local"`, `"remote"` or `"admin"`.
        class: String,
        /// Observed service time in microseconds.
        micros: u64,
    },
}

/// One journal entry: a sequence number, a monotonic timestamp and the
/// structured event.
#[derive(Clone, Debug, Serialize)]
pub struct JournalEvent {
    /// Dense, monotonic sequence number (0-based). Gaps at the front of a
    /// snapshot mean that many older events were overwritten.
    pub seq: u64,
    /// Microseconds since the journal was created (monotonic clock).
    pub at_micros: u64,
    /// The event itself.
    pub kind: EventKind,
}

/// A fixed-size lock-free-claim ring of [`JournalEvent`]s.
pub struct Journal {
    origin: Instant,
    head: AtomicU64,
    slots: Vec<Mutex<Option<JournalEvent>>>,
}

impl Journal {
    /// Creates a journal holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Journal {
        let capacity = capacity.max(1);
        Journal {
            origin: Instant::now(),
            head: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The next sequence number to be assigned — equivalently, the total
    /// number of events ever recorded.
    pub fn next_seq(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// How many recorded events have been overwritten by ring wrap.
    pub fn dropped(&self) -> u64 {
        self.next_seq().saturating_sub(self.slots.len() as u64)
    }

    /// Appends an event, returning its sequence number.
    pub fn record(&self, kind: EventKind) -> u64 {
        let seq = self.head.fetch_add(1, Ordering::AcqRel);
        let event = JournalEvent {
            seq,
            at_micros: self.origin.elapsed().as_micros() as u64,
            kind,
        };
        let slot = (seq % self.slots.len() as u64) as usize;
        let mut guard = self.slots[slot].lock().unwrap_or_else(|e| e.into_inner());
        // Two appends can race for the same slot only when they are exactly
        // `capacity` sequence numbers apart; the newer event wins.
        if guard.as_ref().map_or(true, |held| held.seq < seq) {
            *guard = Some(event);
        }
        seq
    }

    /// A consistent-enough snapshot of the retained events, oldest first
    /// (sorted by sequence number). Concurrent appends may or may not be
    /// included; retained events are never duplicated or reordered.
    pub fn snapshot(&self) -> Vec<JournalEvent> {
        let mut events: Vec<JournalEvent> = self
            .slots
            .iter()
            .filter_map(|slot| {
                slot.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .as_ref()
                    .cloned()
            })
            .collect();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// The most recent `n` retained events, oldest first.
    pub fn recent(&self, n: usize) -> Vec<JournalEvent> {
        let mut events = self.snapshot();
        if events.len() > n {
            events.drain(..events.len() - n);
        }
        events
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("capacity", &self.capacity())
            .field("next_seq", &self.next_seq())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reap(i: usize) -> EventKind {
        EventKind::IdleReap { loop_index: i }
    }

    #[test]
    fn records_and_snapshots_in_order() {
        let j = Journal::new(8);
        for i in 0..5 {
            assert_eq!(j.record(reap(i)), i as u64);
        }
        let snap = j.snapshot();
        assert_eq!(snap.len(), 5);
        assert_eq!(j.dropped(), 0);
        for (i, ev) in snap.iter().enumerate() {
            assert_eq!(ev.seq, i as u64);
        }
        // Timestamps are monotone along the sequence.
        for pair in snap.windows(2) {
            assert!(pair[0].at_micros <= pair[1].at_micros);
        }
    }

    #[test]
    fn wrap_around_drops_the_oldest_and_keeps_seqs_gap_detectable() {
        let j = Journal::new(8);
        for i in 0..20 {
            j.record(reap(i));
        }
        let snap = j.snapshot();
        assert_eq!(snap.len(), 8, "the ring retains exactly its capacity");
        let seqs: Vec<u64> = snap.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<u64>>());
        // The gap is visible: the oldest retained seq says how many events
        // were lost to the wrap.
        assert_eq!(snap[0].seq, 12);
        assert_eq!(j.dropped(), 12);
        assert_eq!(j.next_seq(), 20);
        assert_eq!(
            j.recent(3).iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![17, 18, 19]
        );
    }

    #[test]
    fn concurrent_appends_keep_seqs_unique_and_dense() {
        let j = std::sync::Arc::new(Journal::new(64));
        let mut handles = Vec::new();
        for t in 0..4 {
            let j = j.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    j.record(reap(t));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(j.next_seq(), 400);
        let snap = j.snapshot();
        assert_eq!(snap.len(), 64);
        let mut seqs: Vec<u64> = snap.iter().map(|e| e.seq).collect();
        let sorted = seqs.clone();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 64, "no duplicate sequence numbers survive");
        assert_eq!(sorted, seqs, "snapshot is ordered by seq");
        // Every survivor is from the last `capacity + in-flight` window.
        assert!(snap[0].seq >= 400 - 64 - 4);
    }

    #[test]
    fn events_serialize_to_tagged_json() {
        let j = Journal::new(4);
        j.record(EventKind::ShardTransfer {
            tenant: "default".into(),
            from_shard: 1,
            to_shard: 0,
            bytes: 4096,
            from_gradient: 0.25,
            to_gradient: 2.5,
        });
        j.record(EventKind::ConnectionShed);
        let json = serde_json::to_string(&j.snapshot()).unwrap();
        assert!(json.contains("\"ShardTransfer\""), "{json}");
        assert!(json.contains("\"from_gradient\""), "{json}");
        assert!(json.contains("ConnectionShed"), "{json}");
    }
}
