//! Tenant isolation under fire: one application's flushes and eviction
//! storms must never evict, corrupt or leak another application's keys, and
//! the per-tenant budgets must conserve the configured total while the
//! cross-tenant arbiter moves them live.
//!
//! Three angles:
//! * a flush storm — one tenant flushing its namespace in a tight loop
//!   while it and its neighbours keep writing — after which every other
//!   tenant still holds every one of its keys with the exact value;
//! * an eviction storm — one tenant cycling a working set far past its
//!   reservation (arbitration off, so its budget cannot grow) — which must
//!   leave a small neighbour fully resident with zero evictions charged to
//!   it, and must never surface a neighbour's value on the storming
//!   tenant's keys;
//! * live arbitration — skewed demand from several threads with rounds
//!   forced concurrently — during which every sampled budget vector sums to
//!   the configured total, reads see exact values or clean misses, and
//!   transfers actually happen so the test means something.

use bytes::Bytes;
use cache_server::{BackendConfig, BackendMode, SharedCache, TenantSpec};
use cliffhanger::TenantBalanceConfig;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn stats_map(cache: &SharedCache) -> HashMap<String, String> {
    cache.stats().into_iter().collect()
}

#[test]
fn flush_storm_never_touches_other_tenants() {
    let cache = Arc::new(SharedCache::new(BackendConfig {
        total_bytes: 24 << 20,
        mode: BackendMode::Cliffhanger,
        shards: 2,
        tenants: vec![
            TenantSpec::new("flusher", 1),
            TenantSpec::new("steady-a", 1),
            TenantSpec::new("steady-b", 1),
        ],
        ..BackendConfig::default()
    }));
    let flusher = cache.tenant_index("flusher").unwrap();
    let steady = [
        cache.tenant_index("steady-a").unwrap(),
        cache.tenant_index("steady-b").unwrap(),
    ];
    let total_budget: u64 = cache.tenant_budgets().iter().sum();

    let stop = Arc::new(AtomicBool::new(false));
    // The storm: write a batch into the flusher's namespace, flush it,
    // repeat. Every flush rebuilds the tenant's engines while the steady
    // writers are mid-request.
    let storm = {
        let cache = Arc::clone(&cache);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut round = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for i in 0..200u64 {
                    cache.set_for(
                        flusher,
                        format!("f{}", round * 200 + i).as_bytes(),
                        0,
                        Bytes::from("flush-fodder"),
                    );
                }
                cache.flush_tenant(flusher);
                round += 1;
            }
            round
        })
    };

    // Steady tenants write disjoint key sets (each well within its ~8 MB
    // reservation, so none of their own writes evict) and read them back
    // continuously, checking exact values.
    let steady_threads: Vec<_> = steady
        .iter()
        .enumerate()
        .map(|(n, &tenant)| {
            let cache = Arc::clone(&cache);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let keys: Vec<(String, Bytes)> = (0..4_000u64)
                    .map(|i| (format!("s{n}-{i}"), Bytes::from(format!("v{n}-{i}"))))
                    .collect();
                for (key, value) in &keys {
                    assert!(cache.set_for(tenant, key.as_bytes(), 0, value.clone()));
                }
                while !stop.load(Ordering::Relaxed) {
                    for (key, value) in keys.iter().step_by(37) {
                        match cache.get_for(tenant, key.as_bytes()) {
                            Some((_, data)) => assert_eq!(
                                &data, value,
                                "tenant {tenant} read a corrupted value mid-storm"
                            ),
                            None => panic!(
                                "tenant {tenant} lost key {key} during another \
                                 tenant's flush storm"
                            ),
                        }
                    }
                }
                keys
            })
        })
        .collect();

    std::thread::sleep(std::time::Duration::from_millis(600));
    stop.store(true, Ordering::Relaxed);
    let rounds = storm.join().expect("storm thread must not panic");
    assert!(
        rounds > 5,
        "the storm must actually have flushed ({rounds})"
    );
    for handle in steady_threads {
        let keys = handle.join().expect("steady thread must not panic");
        // Final sweep after the storm has fully stopped: every key, exact.
        for (key, value) in &keys {
            let tenant_of_key = if key.starts_with("s0-") {
                steady[0]
            } else {
                steady[1]
            };
            let (_, data) = cache
                .get_for(tenant_of_key, key.as_bytes())
                .unwrap_or_else(|| panic!("key {key} missing after the storm"));
            assert_eq!(&data, value);
        }
    }
    assert_eq!(
        cache.tenant_budgets().iter().sum::<u64>(),
        total_budget,
        "flushes must conserve the total budget"
    );
}

#[test]
fn eviction_storm_is_isolated_behind_static_reservations() {
    // Arbitration off: the storming tenant's budget cannot grow, so all its
    // pressure must be absorbed by its own engines.
    let cache = Arc::new(SharedCache::new(BackendConfig {
        total_bytes: 12 << 20,
        mode: BackendMode::Cliffhanger,
        shards: 2,
        tenants: vec![TenantSpec::new("storm", 2), TenantSpec::new("quiet", 1)],
        tenant_balance: TenantBalanceConfig::disabled(),
        ..BackendConfig::default()
    }));
    let storm = cache.tenant_index("storm").unwrap();
    let quiet = cache.tenant_index("quiet").unwrap();

    // The quiet tenant's whole working set: ~1 MB inside its 3 MB share.
    let quiet_keys: Vec<(String, Bytes)> = (0..2_000u64)
        .map(|i| (format!("q{i}"), Bytes::from(format!("quiet-{i}"))))
        .collect();
    for (key, value) in &quiet_keys {
        assert!(cache.set_for(quiet, key.as_bytes(), 0, value.clone()));
    }

    // Storm: cycle ~24 MB of values through a 6 MB reservation, including
    // the very same wire keys the quiet tenant uses.
    let payload = Bytes::from(vec![b'x'; 1_000]);
    for i in 0..24_000u64 {
        cache.set_for(storm, format!("s{i}").as_bytes(), 0, payload.clone());
        if i % 12 == 0 {
            let (key, _) = &quiet_keys[(i as usize / 12) % quiet_keys.len()];
            cache.set_for(storm, key.as_bytes(), 0, payload.clone());
        }
    }

    let stats = stats_map(&cache);
    assert!(
        stats["tenant:storm:evictions"].parse::<u64>().unwrap() > 10_000,
        "the storm must actually have thrashed: {}",
        stats["tenant:storm:evictions"]
    );
    assert_eq!(
        stats["tenant:quiet:evictions"], "0",
        "pressure must never cross the tenant boundary"
    );
    for (key, value) in &quiet_keys {
        let (_, data) = cache
            .get_for(quiet, key.as_bytes())
            .unwrap_or_else(|| panic!("quiet key {key} evicted by the storm"));
        assert_eq!(&data, value, "quiet key {key} corrupted by the storm");
    }
    // Shared wire keys stay two distinct items: the storm's copy is its
    // payload (or a clean miss if evicted), never the quiet tenant's value.
    for (key, _) in quiet_keys.iter().take(50) {
        if let Some((_, data)) = cache.get_for(storm, key.as_bytes()) {
            assert_eq!(data, payload, "the storm must never read quiet's value");
        }
    }
    assert_eq!(
        cache.tenant_budgets(),
        vec![3 << 20, 6 << 20, 3 << 20],
        "static reservations must not move"
    );
}

#[test]
fn budgets_conserve_the_total_under_live_arbitration() {
    let total: u64 = 16 << 20;
    let cache = Arc::new(SharedCache::new(BackendConfig {
        total_bytes: total,
        mode: BackendMode::Cliffhanger,
        shards: 2,
        tenants: vec![TenantSpec::new("greedy", 1), TenantSpec::new("modest", 1)],
        tenant_balance: TenantBalanceConfig {
            interval_requests: 1_024,
            credit_bytes: 256 << 10,
            min_tenant_bytes: 1 << 20,
            min_gradient_gap: 4,
            hysteresis: 0.05,
            ..TenantBalanceConfig::default()
        },
        ..BackendConfig::default()
    }));
    let greedy = cache.tenant_index("greedy").unwrap();
    let modest = cache.tenant_index("modest").unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let violations = Arc::new(AtomicU64::new(0));
    // Auditor: the budget vector must sum to the total at *every* sample,
    // not just at the end — a transfer is shrink-then-grow, so the sum may
    // briefly dip below during a round but must never exceed, and must
    // return to exactly the total whenever rounds quiesce. To keep the
    // check sharp we assert the invariant that always holds: sum <= total.
    let auditor = {
        let cache = Arc::clone(&cache);
        let stop = Arc::clone(&stop);
        let violations = Arc::clone(&violations);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let sum: u64 = cache.tenant_budgets().iter().sum();
                if sum > total {
                    violations.fetch_add(1, Ordering::Relaxed);
                }
                std::thread::yield_now();
            }
        })
    };
    let poker = {
        let cache = Arc::clone(&cache);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                cache.arbitrate_now();
                // Leave each round a real sampling window: back-to-back
                // rounds see near-zero shadow-hit deltas (always under the
                // gradient gap), and on a single CPU they also starve the
                // traffic threads that generate the signal.
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        })
    };

    // Greedy cycles past its reservation; modest holds a small steady set.
    // Each worker owns a disjoint key range so the combined population
    // (~19.8k keys, ~9.9k per engine at 2 shards) overshoots the per-engine
    // physical capacity (~9k items at greedy's initial third of the total)
    // but keeps every worker's reuse distance inside physical + shadow —
    // the same geometry as the backend unit tests, except raced by three
    // writers. Sharing one sequence instead would make followers hit
    // physically and leave the leader's reuse distance past the shadow
    // window: zero gradient signal, nothing for the arbiter to act on.
    let workers: Vec<_> = (0..3u64)
        .map(|w| {
            let cache = Arc::clone(&cache);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let payload = Bytes::from(vec![b'g'; 200]);
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = format!("g{w}-{}", i % 6_600);
                    if cache.get_for(greedy, key.as_bytes()).is_none() {
                        cache.set_for(greedy, key.as_bytes(), 0, payload.clone());
                    }
                    i += 1;
                }
            })
        })
        .collect();
    let modest_worker = {
        let cache = Arc::clone(&cache);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let keys: Vec<(String, Bytes)> = (0..500u64)
                .map(|i| (format!("m{i}"), Bytes::from(format!("modest-{i}"))))
                .collect();
            while !stop.load(Ordering::Relaxed) {
                for (key, value) in &keys {
                    if cache.get_for(modest, key.as_bytes()).is_none() {
                        cache.set_for(modest, key.as_bytes(), 0, value.clone());
                    } else if let Some((_, data)) = cache.get_for(modest, key.as_bytes()) {
                        assert_eq!(&data, value, "modest read a foreign value");
                    }
                }
            }
        })
    };

    // Run until the arbiter has visibly moved budget, bounded by a
    // wall-clock deadline — a fixed 800 ms starves the gradient of rounds
    // on single-core runners where all six threads share one CPU.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    loop {
        std::thread::sleep(std::time::Duration::from_millis(200));
        let transfers: u64 = stats_map(&cache)["arbiter:transfers"].parse().unwrap();
        if transfers > 0 || std::time::Instant::now() >= deadline {
            break;
        }
    }
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().expect("greedy worker must not panic");
    }
    modest_worker.join().expect("modest worker must not panic");
    poker.join().expect("poker must not panic");
    auditor.join().expect("auditor must not panic");

    assert_eq!(
        violations.load(Ordering::Relaxed),
        0,
        "the summed budgets must never exceed the configured total"
    );
    // Quiesced: the sum must be exactly the total again.
    assert_eq!(cache.tenant_budgets().iter().sum::<u64>(), total);
    let stats = stats_map(&cache);
    assert!(
        stats["arbiter:transfers"].parse::<u64>().unwrap() > 0,
        "skewed demand must have moved budget for this test to mean anything"
    );
    let budgets = cache.tenant_budgets();
    assert!(
        budgets[greedy] > budgets[modest],
        "budget must follow demand: {budgets:?}"
    );
}
