//! The per-queue structure of Figure 5.
//!
//! Every queue Cliffhanger manages (one per slab class, or one per
//! application) is physically split into a **left** and a **right**
//! sub-queue. Each sub-queue is followed by a 128-item cliff-scaling shadow
//! queue, and each also treats the last 128 items of its physical queue as
//! the "left half" of that shadow structure (no extra memory needed, §5.1).
//! A longer, hill-climbing shadow queue (1 MB of simulated requests) is
//! appended after the cliff shadow queues and split across the two
//! partitions in proportion to their sizes.
//!
//! Requests are routed between the two partitions by key hash with the
//! Talus ratio from [`CliffScaler`]; evictions cascade physical queue →
//! cliff shadow → hill shadow, so a miss can be classified as "just beyond
//! the physical queue" (a cliff signal) or "would have hit with one shadow
//! queue's worth of extra memory" (a hill-climbing signal). Physical resizes
//! are applied only on the insertion that follows a miss, which is the
//! paper's anti-thrashing rule (§5.1).

use crate::cliff_scale::{CliffScaler, PointerEvent};
use cache_core::key::mix64;
use cache_core::lru::HitLocation;
use cache_core::{CacheQueue, CacheStats, Key, PolicyKind, QueueConfig, ShadowQueue};

/// Which physical sub-queue a request was routed to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Partition {
    /// The left sub-queue (simulates the smaller Talus anchor).
    Left,
    /// The right sub-queue (simulates the larger Talus anchor).
    Right,
}

/// What happened to one request inside a [`PartitionedQueue`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueEvent {
    /// Whether the request hit a physical sub-queue.
    pub hit: bool,
    /// The partition the request was routed to.
    pub partition: Partition,
    /// The hit landed in the last `cliff_shadow_items` items of the physical
    /// queue (the "left of the pointer" signal).
    pub tail_hit: bool,
    /// The miss hit the 128-item cliff shadow queue (the "right of the
    /// pointer" signal).
    pub cliff_shadow_hit: bool,
    /// The miss hit the long hill-climbing shadow queue (the gradient
    /// signal of Algorithm 1).
    pub hill_shadow_hit: bool,
}

/// Outcome of a SET against a [`PartitionedQueue`].
#[derive(Clone, Debug, Default)]
pub struct SetOutcome {
    /// Whether the item was admitted.
    pub admitted: bool,
    /// Keys evicted from the physical queues to make room (they moved into
    /// the shadow structure).
    pub evicted: Vec<Key>,
    /// The stored key was found in a cliff shadow queue before insertion —
    /// the deferred "right of the pointer" signal for callers that could not
    /// classify the preceding GET (e.g. the wire-protocol path, where the
    /// item size is only known at SET time).
    pub cliff_shadow_hit: bool,
    /// The stored key was found in the hill-climbing shadow queue before
    /// insertion (the deferred Algorithm 1 signal).
    pub hill_shadow_hit: bool,
}

/// Static parameters of a partitioned queue (derived per slab class by the
/// controller from [`crate::CliffhangerConfig`]).
#[derive(Clone, Debug)]
pub struct PartitionedQueueConfig {
    /// Eviction policy of both physical sub-queues.
    pub policy: PolicyKind,
    /// Initial byte budget of the whole queue.
    pub target_bytes: u64,
    /// Bytes charged per item (slab chunk size + item overhead); converts
    /// the byte budget into the item counts Algorithms 2–3 reason about.
    pub charge_per_item: u64,
    /// Cliff shadow queue size and physical tail region, in items (128).
    pub cliff_shadow_items: usize,
    /// Hill-climbing shadow capacity, in entries, across both partitions.
    pub hill_shadow_entries: usize,
    /// Pointer movement per cliff event, in items.
    pub credit_items: u64,
    /// Cliff scaling only runs when the queue holds at least this many items.
    pub cliff_min_items: u64,
    /// Whether cliff scaling (pointer updates + uneven splits) is enabled.
    pub enable_cliff_scaling: bool,
}

impl Default for PartitionedQueueConfig {
    fn default() -> Self {
        PartitionedQueueConfig {
            policy: PolicyKind::Lru,
            target_bytes: 1 << 20,
            charge_per_item: 112,
            cliff_shadow_items: 128,
            hill_shadow_entries: 1 << 14,
            credit_items: 32,
            cliff_min_items: 1_000,
            enable_cliff_scaling: true,
        }
    }
}

/// One Cliffhanger-managed queue: two physical sub-queues plus their shadow
/// structure (Figure 5).
#[derive(Debug)]
pub struct PartitionedQueue<V> {
    config: PartitionedQueueConfig,
    left: CacheQueue<V>,
    right: CacheQueue<V>,
    left_cliff: ShadowQueue,
    right_cliff: ShadowQueue,
    left_hill: ShadowQueue,
    right_hill: ShadowQueue,
    scaler: CliffScaler,
    target_bytes: u64,
    resize_pending: bool,
    stats: CacheStats,
}

impl<V> PartitionedQueue<V> {
    /// Creates a partitioned queue from its configuration.
    pub fn new(config: PartitionedQueueConfig) -> Self {
        let charge = config.charge_per_item.max(1);
        let total_items = config.target_bytes / charge;
        let make_queue = |bytes: u64| {
            CacheQueue::new(QueueConfig {
                policy: config.policy,
                target_bytes: bytes,
                tail_region_items: config.cliff_shadow_items,
                shadow_capacity: 0,
            })
        };
        let half = config.target_bytes / 2;
        let mut queue = PartitionedQueue {
            left: make_queue(half),
            right: make_queue(config.target_bytes - half),
            left_cliff: ShadowQueue::new(config.cliff_shadow_items),
            right_cliff: ShadowQueue::new(config.cliff_shadow_items),
            left_hill: ShadowQueue::new(config.hill_shadow_entries / 2),
            right_hill: ShadowQueue::new(
                config.hill_shadow_entries - config.hill_shadow_entries / 2,
            ),
            scaler: CliffScaler::new(total_items, config.credit_items),
            target_bytes: config.target_bytes,
            resize_pending: false,
            stats: CacheStats::new(),
            config: PartitionedQueueConfig {
                charge_per_item: charge,
                ..config
            },
        };
        queue.apply_sizes();
        queue
    }

    /// Whether cliff scaling is currently active (enabled and the queue is
    /// large enough, §5.1).
    pub fn cliff_scaling_active(&self) -> bool {
        self.config.enable_cliff_scaling && self.target_items() >= self.config.cliff_min_items
    }

    /// The queue's byte budget.
    pub fn target_bytes(&self) -> u64 {
        self.target_bytes
    }

    /// The byte budget converted to items.
    pub fn target_items(&self) -> u64 {
        self.target_bytes / self.config.charge_per_item
    }

    /// Bytes currently in use across both partitions.
    pub fn used_bytes(&self) -> u64 {
        self.left.used_bytes() + self.right.used_bytes()
    }

    /// Resident items across both partitions.
    pub fn len(&self) -> usize {
        self.left.len() + self.right.len()
    }

    /// Whether no items are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `key` is resident in either partition.
    pub fn contains(&self, key: Key) -> bool {
        self.left.contains(key) || self.right.contains(key)
    }

    /// The stored value for `key`, if resident in either partition.
    pub fn value(&self, key: Key) -> Option<&V> {
        self.left.value(key).or_else(|| self.right.value(key))
    }

    /// Cumulative statistics for this queue.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::new();
        self.left.reset_stats();
        self.right.reset_stats();
    }

    /// The current Talus request ratio (fraction of requests routed left).
    pub fn ratio(&self) -> f64 {
        if self.cliff_scaling_active() {
            self.scaler.ratio()
        } else {
            0.5
        }
    }

    /// The cliff-scaling pointers `(left, right)` in items.
    pub fn pointers(&self) -> (u64, u64) {
        self.scaler.pointers()
    }

    /// Whether the pointers currently straddle a detected cliff.
    pub fn is_scaling_a_cliff(&self) -> bool {
        self.cliff_scaling_active() && self.scaler.is_scaling_a_cliff()
    }

    /// Sizes `(left_bytes, right_bytes)` the two partitions are currently
    /// targeting.
    pub fn partition_targets(&self) -> (u64, u64) {
        (self.left.target_bytes(), self.right.target_bytes())
    }

    /// Changes the queue's byte budget (called by the hill-climbing layer).
    /// The resize is applied on the next insertion, per the paper's
    /// resize-on-miss rule.
    pub fn set_target_bytes(&mut self, bytes: u64) {
        self.target_bytes = bytes;
        self.scaler
            .set_queue_size(bytes / self.config.charge_per_item);
        self.resize_pending = true;
    }

    /// Routes a key to a partition using the current ratio. The mapping is
    /// deterministic per key for a fixed ratio, so resident keys keep
    /// hitting the partition that stores them.
    ///
    /// While cliff scaling is inactive (disabled, or the queue is below the
    /// 1000-item threshold of §5.1) the queue is not meaningfully
    /// partitioned: everything is routed to the right sub-queue, which then
    /// behaves exactly like a single queue with the full budget.
    fn route(&self, key: Key) -> Partition {
        if !self.cliff_scaling_active() {
            return Partition::Right;
        }
        let ratio = self.ratio();
        // Map the key to a uniform fraction in [0, 1).
        let fraction = (mix64(key.raw()) >> 11) as f64 / (1u64 << 53) as f64;
        if fraction < ratio {
            Partition::Left
        } else {
            Partition::Right
        }
    }

    /// Looks up `key`, classifying the outcome for both algorithms.
    ///
    /// Lookups behave like Memcached's hash table: a resident item is found
    /// no matter which partition stores it (the partitioning only steers
    /// insertions and evictions). The partition reported in the event is the
    /// one that produced the signal — the partition holding the item on a
    /// hit, or the partition whose shadow queue remembered the key on a
    /// miss — falling back to the hash-routed partition for cold misses.
    pub fn get(&mut self, key: Key) -> QueueEvent {
        let routed = self.route(key);
        // Try the routed partition first, then the other one.
        let order = match routed {
            Partition::Left => [Partition::Left, Partition::Right],
            Partition::Right => [Partition::Right, Partition::Left],
        };
        let mut event = QueueEvent {
            hit: false,
            partition: routed,
            tail_hit: false,
            cliff_shadow_hit: false,
            hill_shadow_hit: false,
        };
        for &p in &order {
            let queue = match p {
                Partition::Left => &mut self.left,
                Partition::Right => &mut self.right,
            };
            if queue.contains(key) {
                let result = queue.get(key);
                event.hit = true;
                event.partition = p;
                event.tail_hit = result.location == Some(HitLocation::TailRegion);
                break;
            }
        }
        if !event.hit {
            // Record the miss against the routed partition's physical queue
            // (for per-queue statistics and policies with ghost lists).
            match routed {
                Partition::Left => {
                    let _ = self.left.get(key);
                }
                Partition::Right => {
                    let _ = self.right.get(key);
                }
            }
            // The key lives in at most one shadow structure; search both
            // partitions' cliff shadows first, then the hill shadows.
            for &p in &order {
                let (cliff, hill) = match p {
                    Partition::Left => (&mut self.left_cliff, &mut self.left_hill),
                    Partition::Right => (&mut self.right_cliff, &mut self.right_hill),
                };
                if cliff.probe(key).is_some() {
                    event.cliff_shadow_hit = true;
                    event.partition = p;
                    break;
                }
                if hill.probe(key).is_some() {
                    event.hill_shadow_hit = true;
                    event.partition = p;
                    break;
                }
            }
        }
        let partition = event.partition;
        self.stats.record_get(event.hit);
        if event.hill_shadow_hit {
            self.stats.shadow_hits += 1;
        }
        if event.cliff_shadow_hit {
            self.stats.cliff_shadow_hits += 1;
        }
        if self.cliff_scaling_active() {
            let pointer_event = match (partition, event.tail_hit, event.cliff_shadow_hit) {
                (Partition::Right, true, _) => Some(PointerEvent::RightQueueTailHit),
                (Partition::Right, _, true) => Some(PointerEvent::RightQueueShadowHit),
                (Partition::Left, true, _) => Some(PointerEvent::LeftQueueTailHit),
                (Partition::Left, _, true) => Some(PointerEvent::LeftQueueShadowHit),
                _ => None,
            };
            if let Some(pe) = pointer_event {
                self.scaler.on_event(pe);
                self.resize_pending = true;
            }
        }
        event
    }

    /// Stores `key` with a payload of `size` bytes. Pending resizes are
    /// applied first (this is the insertion that follows a miss), then the
    /// item is admitted to its routed partition; evicted keys cascade into
    /// the shadow queues.
    ///
    /// If the key is still sitting in one of the shadow structures (because
    /// the preceding GET could not be classified — the wire-protocol path
    /// does not know the item size until the SET arrives), the insertion
    /// classifies it now: the cliff scaler is updated and the outcome
    /// reports the hill-climbing signal. A GET that already probed the
    /// shadow queues removed the key, so the signal is never counted twice.
    pub fn set(&mut self, key: Key, size: u64, value: V) -> SetOutcome {
        self.stats.record_set();
        // Deferred shadow classification (at most one structure holds the key).
        let mut outcome = SetOutcome::default();
        let mut cliff_partition = None;
        for &p in &[Partition::Left, Partition::Right] {
            let (cliff, hill) = match p {
                Partition::Left => (&mut self.left_cliff, &mut self.left_hill),
                Partition::Right => (&mut self.right_cliff, &mut self.right_hill),
            };
            if cliff.probe(key).is_some() {
                outcome.cliff_shadow_hit = true;
                cliff_partition = Some(p);
                break;
            }
            if hill.probe(key).is_some() {
                outcome.hill_shadow_hit = true;
                break;
            }
        }
        if outcome.cliff_shadow_hit {
            self.stats.cliff_shadow_hits += 1;
        }
        if outcome.hill_shadow_hit {
            self.stats.shadow_hits += 1;
        }
        if self.cliff_scaling_active() {
            if let Some(p) = cliff_partition {
                let event = match p {
                    Partition::Right => PointerEvent::RightQueueShadowHit,
                    Partition::Left => PointerEvent::LeftQueueShadowHit,
                };
                self.scaler.on_event(event);
                self.resize_pending = true;
            }
        }

        if self.resize_pending {
            let resize_evictions = self.apply_sizes();
            outcome.evicted.extend(resize_evictions);
            self.resize_pending = false;
        }
        let partition = self.route(key);
        // Make sure the other partition does not keep a stale copy.
        match partition {
            Partition::Left => {
                self.right.delete(key);
            }
            Partition::Right => {
                self.left.delete(key);
            }
        }
        let (queue, cliff, hill) = match partition {
            Partition::Left => (&mut self.left, &mut self.left_cliff, &mut self.left_hill),
            Partition::Right => (&mut self.right, &mut self.right_cliff, &mut self.right_hill),
        };
        let result = queue.set(key, size, value);
        for evicted in &result.evicted {
            if let Some(overflow) = cliff.insert(*evicted) {
                hill.insert(overflow);
            }
        }
        self.stats.record_evictions(result.evicted.len() as u64);
        outcome.admitted = result.admitted;
        outcome.evicted.extend(result.evicted);
        outcome
    }

    /// Deletes `key` from both partitions.
    pub fn delete(&mut self, key: Key) -> bool {
        let left = self.left.delete(key);
        let right = self.right.delete(key);
        left || right
    }

    /// Applies the current pointer-derived sizes to the two partitions and
    /// their shadow queues, evicting eagerly so the split takes effect.
    /// Returns the keys evicted by the resize so callers can keep any
    /// external residency index in sync.
    fn apply_sizes(&mut self) -> Vec<Key> {
        let charge = self.config.charge_per_item;
        let total_items = self.target_items();
        let left_items = if self.cliff_scaling_active() {
            self.scaler.physical_sizes().0
        } else {
            // Unpartitioned operation: the right sub-queue is the queue.
            0
        };
        self.left.set_target_bytes(left_items * charge);
        // Hand the byte remainder (sub-item rounding) to the right queue so
        // the full budget stays usable.
        self.right
            .set_target_bytes(self.target_bytes - left_items * charge);
        let mut all_evicted = Vec::new();
        for evicted in self.left.evict_to_target() {
            if let Some(overflow) = self.left_cliff.insert(evicted) {
                self.left_hill.insert(overflow);
            }
            all_evicted.push(evicted);
        }
        for evicted in self.right.evict_to_target() {
            if let Some(overflow) = self.right_cliff.insert(evicted) {
                self.right_hill.insert(overflow);
            }
            all_evicted.push(evicted);
        }
        self.stats.record_evictions(all_evicted.len() as u64);
        // Split the hill-climbing shadow entries in proportion to the
        // partition sizes (§5.1).
        let entries = self.config.hill_shadow_entries;
        let left_entries = if total_items == 0 {
            entries / 2
        } else {
            ((entries as u64 * left_items) / total_items.max(1)) as usize
        };
        self.left_hill.set_capacity(left_entries.min(entries));
        self.right_hill
            .set_capacity(entries - left_entries.min(entries));
        all_evicted
    }

    /// Applies the current byte budget immediately, evicting as needed, and
    /// returns the evicted keys. Used when memory is taken away from this
    /// queue by the hill-climbing layer: reassigning a slab page in
    /// Memcached evicts that page's items right away, so the donated memory
    /// becomes available to the winner without over-committing the total.
    pub fn enforce_target(&mut self) -> Vec<Key> {
        let evicted = self.apply_sizes();
        self.resize_pending = false;
        evicted
    }

    /// The scaler driving this queue (read-only; for diagnostics and tests).
    pub fn scaler(&self) -> &CliffScaler {
        &self.scaler
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> Key {
        Key::new(i)
    }

    fn small_queue(target_bytes: u64) -> PartitionedQueue<()> {
        PartitionedQueue::new(PartitionedQueueConfig {
            target_bytes,
            charge_per_item: 100,
            cliff_shadow_items: 8,
            hill_shadow_entries: 64,
            credit_items: 4,
            cliff_min_items: 10_000_000, // effectively disabled
            enable_cliff_scaling: true,
            ..PartitionedQueueConfig::default()
        })
    }

    #[test]
    fn behaves_like_a_cache_when_split_evenly() {
        let mut q = small_queue(100 * 100); // 100 items
        for i in 0..50 {
            q.set(key(i), 52, ()); // charge 100
        }
        let mut hits = 0;
        for i in 0..50 {
            if q.get(key(i)).hit {
                hits += 1;
            }
        }
        assert_eq!(hits, 50, "everything fits, everything hits");
        assert!(q.used_bytes() <= 100 * 100);
        assert_eq!(q.stats().gets, 50);
        assert_eq!(q.stats().hits, 50);
    }

    #[test]
    fn evictions_cascade_into_shadow_queues() {
        let mut q = small_queue(20 * 100); // ~20 items
        for i in 0..200 {
            q.set(key(i), 52, ());
        }
        assert!(q.len() <= 20);
        // Recently evicted keys are in the cliff shadows; older ones in the
        // hill shadows; both classify the miss.
        let mut cliff_hits = 0;
        let mut hill_hits = 0;
        for i in 0..200 {
            let e = q.get(key(i));
            if e.cliff_shadow_hit {
                cliff_hits += 1;
            }
            if e.hill_shadow_hit {
                hill_hits += 1;
            }
        }
        assert!(cliff_hits > 0, "some misses must land in the cliff shadows");
        assert!(hill_hits > 0, "older misses must land in the hill shadows");
        assert_eq!(q.stats().cliff_shadow_hits, cliff_hits);
        assert_eq!(q.stats().shadow_hits, hill_hits);
    }

    #[test]
    fn tail_hits_are_reported() {
        let mut q = PartitionedQueue::<()>::new(PartitionedQueueConfig {
            target_bytes: 40 * 100,
            charge_per_item: 100,
            cliff_shadow_items: 4,
            hill_shadow_entries: 16,
            credit_items: 1,
            cliff_min_items: 10_000_000,
            enable_cliff_scaling: true,
            ..PartitionedQueueConfig::default()
        });
        for i in 0..40 {
            q.set(key(i), 52, ());
        }
        // The coldest resident keys sit in the tail regions of their
        // partitions; at least one probe of an early key must be a tail hit.
        let mut tail_hits = 0;
        for i in 0..8 {
            let e = q.get(key(i));
            if e.hit && e.tail_hit {
                tail_hits += 1;
            }
        }
        assert!(tail_hits > 0, "cold resident keys should produce tail hits");
    }

    #[test]
    fn resize_is_applied_on_the_next_insertion() {
        let mut q = small_queue(100 * 100);
        for i in 0..100 {
            q.set(key(i), 52, ());
        }
        let before = q.len();
        q.set_target_bytes(20 * 100);
        assert_eq!(q.len(), before, "shrink must wait for the next insertion");
        q.set(key(1_000), 52, ());
        assert!(
            q.used_bytes() <= 20 * 100,
            "the insertion after the resize must enforce the new budget"
        );
    }

    #[test]
    fn growing_budget_admits_more_items() {
        let mut q = small_queue(10 * 100);
        for i in 0..50 {
            q.set(key(i), 52, ());
        }
        assert!(q.len() <= 10);
        q.set_target_bytes(200 * 100);
        for i in 100..250 {
            q.set(key(i), 52, ());
        }
        assert!(q.len() > 100, "queue should grow into the new budget");
        assert!(q.used_bytes() <= 200 * 100);
    }

    #[test]
    fn cliff_scaling_lifts_a_cyclic_scan_off_the_cliff_floor() {
        // A cyclic scan 10% larger than the queue is the canonical
        // performance cliff: a plain LRU queue of the same size hits (almost)
        // nothing, because every item is evicted just before its reuse.
        // Cliff scaling splits the queue unevenly so that one partition fits
        // its share of the scan, recovering a large fraction of the hits.
        let universe = 2_200u64;
        let rounds = 12;
        let make = |enable_cliff_scaling: bool| {
            PartitionedQueue::<()>::new(PartitionedQueueConfig {
                target_bytes: 2_000 * 100,
                charge_per_item: 100,
                cliff_shadow_items: 128,
                hill_shadow_entries: 4_096,
                credit_items: 16,
                cliff_min_items: 1_000,
                enable_cliff_scaling,
                ..PartitionedQueueConfig::default()
            })
        };
        let run = |q: &mut PartitionedQueue<()>| {
            for _ in 0..rounds {
                for i in 0..universe {
                    let e = q.get(key(i));
                    if !e.hit {
                        q.set(key(i), 52, ());
                    }
                }
            }
            q.stats()
        };
        let mut managed = make(true);
        assert!(managed.cliff_scaling_active());
        let managed_stats = run(&mut managed);

        let mut baseline = make(false);
        assert!(!baseline.cliff_scaling_active());
        let baseline_stats = run(&mut baseline);

        // The scan produced cliff-shadow signals and an uneven split.
        assert!(managed_stats.cliff_shadow_hits > 0);
        let (lt, rt) = managed.partition_targets();
        assert_ne!(lt, rt, "cliff scaling should produce an uneven split");
        // The baseline even split behaves like plain LRU on a too-large scan:
        // almost no hits. Cliff scaling must recover a substantial fraction.
        assert!(
            baseline_stats.hit_ratio().value() < 0.05,
            "baseline should sit at the cliff floor, got {:.3}",
            baseline_stats.hit_ratio().value()
        );
        assert!(
            managed_stats.hit_ratio().value() > 0.25,
            "cliff scaling should lift the hit rate well off the floor, got {:.3}",
            managed_stats.hit_ratio().value()
        );
    }

    #[test]
    fn disabled_cliff_scaling_behaves_as_a_single_queue() {
        let mut q = PartitionedQueue::<()>::new(PartitionedQueueConfig {
            target_bytes: 2_000 * 100,
            charge_per_item: 100,
            enable_cliff_scaling: false,
            ..PartitionedQueueConfig::default()
        });
        assert!(!q.cliff_scaling_active());
        for i in 0..5_000u64 {
            let e = q.get(key(i % 2_600));
            if !e.hit {
                q.set(key(i % 2_600), 52, ());
            }
        }
        assert!((q.ratio() - 0.5).abs() < f64::EPSILON);
        // Without cliff scaling the whole budget backs one (the right)
        // sub-queue, i.e. the structure degenerates to a single LRU queue.
        let (lt, rt) = q.partition_targets();
        assert_eq!(lt, 0, "left partition unused when cliff scaling is off");
        assert_eq!(rt, 2_000 * 100);
        assert!(q.used_bytes() <= 2_000 * 100);
    }

    #[test]
    fn delete_and_value_check_both_partitions() {
        let mut q: PartitionedQueue<String> = PartitionedQueue::new(PartitionedQueueConfig {
            target_bytes: 50 * 100,
            charge_per_item: 100,
            ..PartitionedQueueConfig::default()
        });
        for i in 0..20 {
            q.set(key(i), 10, format!("v{i}"));
        }
        assert_eq!(q.value(key(3)).map(String::as_str), Some("v3"));
        assert!(q.contains(key(3)));
        assert!(q.delete(key(3)));
        assert!(!q.delete(key(3)));
        assert!(q.value(key(3)).is_none());
    }

    #[test]
    fn routing_is_deterministic_for_a_fixed_ratio() {
        // A queue large enough for cliff scaling to be active, so requests
        // are hash-partitioned by the Talus ratio.
        let q = PartitionedQueue::<()>::new(PartitionedQueueConfig {
            target_bytes: 5_000 * 100,
            charge_per_item: 100,
            cliff_shadow_items: 128,
            hill_shadow_entries: 1_024,
            credit_items: 16,
            cliff_min_items: 1_000,
            enable_cliff_scaling: true,
            ..PartitionedQueueConfig::default()
        });
        assert!(q.cliff_scaling_active());
        for i in 0..100 {
            assert_eq!(q.route(key(i)), q.route(key(i)));
        }
        // Roughly half the keys go to each side under an even ratio.
        let left = (0..1_000)
            .filter(|&i| q.route(key(i)) == Partition::Left)
            .count();
        assert!((350..=650).contains(&left), "left share = {left}");

        // Below the threshold everything is routed to the right sub-queue.
        let small = small_queue(100 * 100);
        assert!(!small.cliff_scaling_active());
        assert!((0..100).all(|i| small.route(key(i)) == Partition::Right));
    }
}
