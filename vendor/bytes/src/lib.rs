//! Minimal offline stand-in for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! [`Bytes`] is an immutable, cheaply-cloneable byte buffer (`Arc<[u8]>`
//! under the hood — clones are reference bumps, not copies). [`BytesMut`] is
//! a growable buffer with the `split_to` / `freeze` surface the server's
//! protocol parser uses. Zero-copy slicing of sub-ranges is not implemented;
//! `split_to` copies, which is fine at the request sizes the server sees.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"{}\"", self.escape_ascii())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data: data.into() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(data: &'static [u8]) -> Self {
        Bytes::from_static(data)
    }
}

impl From<&'static str> for Bytes {
    fn from(data: &'static str) -> Self {
        Bytes::from_static(data.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(data: String) -> Self {
        Bytes::from(data.into_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(data: BytesMut) -> Self {
        data.freeze()
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.data[..] == *other
    }
}

impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        &self.data[..] == other.as_bytes()
    }
}

/// A growable byte buffer with front-consumption support.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with at least the given capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a slice to the end of the buffer.
    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Removes and returns the first `at` bytes.
    ///
    /// Panics if `at > len`, like real bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.data.len(), "split_to out of bounds");
        let rest = self.data.split_off(at);
        BytesMut {
            data: std::mem::replace(&mut self.data, rest),
        }
    }

    /// Splits off and returns the bytes after `at`.
    pub fn split_off(&mut self, at: usize) -> BytesMut {
        BytesMut {
            data: self.data.split_off(at),
        }
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Shortens the buffer to `len` bytes.
    pub fn truncate(&mut self, len: usize) {
        self.data.truncate(len);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"{}\"", self.data.escape_ascii())
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> Self {
        BytesMut {
            data: data.to_vec(),
        }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> Self {
        BytesMut { data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_to_consumes_the_front() {
        let mut buf = BytesMut::from(&b"hello world"[..]);
        let head = buf.split_to(6);
        assert_eq!(&head[..], b"hello ");
        assert_eq!(&buf[..], b"world");
        assert_eq!(head.freeze(), Bytes::from("hello "));
    }

    #[test]
    fn bytes_clone_is_shallow() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.len(), 3);
    }
}
