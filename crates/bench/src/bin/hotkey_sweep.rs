//! The hot-key mitigation A/B sweep: runs the `flash_crowd` scenario with
//! hot-key promotion off and on, and emits a versioned
//! `cliffhanger-hotkey-sweep/v1` JSON report comparing the two arms.
//!
//! Run with:
//! `cargo run --release -p bench --bin hotkey_sweep -- [--smoke] [--scale F]
//!  [--json out.json]`
//!
//! * `--smoke` — down-scale the scenario to 5% of its standard request
//!   volume, for CI smoke jobs and local iteration.
//! * `--scale F` — explicit scale factor (overrides `--smoke`).
//! * `--json PATH` — write the report there (stdout gets it always).
//!
//! The exit status encodes the mitigation gate:
//! * both arms must finish with zero errors and zero stale probe reads
//!   (the versioned spike-key probe runs in both arms — with mitigation
//!   off every read lands on the owning loop, so staleness is vacuous
//!   there but the probe still proves the harness works);
//! * the mitigation arm must pass every scenario invariant and serve
//!   replica hits;
//! * on a box with >= 4 CPUs the mitigation arm must not lose spike-phase
//!   throughput to the baseline; on smaller boxes (where every loop shares
//!   one core and replication cannot buy parallelism) the gate is that the
//!   cross-loop remote-op share drops instead — the forwarded GETs that
//!   made the owning loop the bottleneck are now served locally.

use loadgen::scenario::{named_scenario, run_scenario, ScenarioReport};
use serde::Serialize;
use serde_json::Value;
use std::process::ExitCode;

/// Schema tag for the hot-key A/B sweep report.
const HOTKEY_SWEEP_SCHEMA: &str = "cliffhanger-hotkey-sweep/v1";

/// One arm of the A/B sweep (mitigation off or on).
#[derive(Serialize)]
struct ArmReport {
    /// Whether hot-key promotion was enabled for this arm.
    mitigation: bool,
    /// Whether every scenario invariant held.
    passed: bool,
    /// Requests completed across all phases.
    requests: u64,
    /// Wall-clock seconds of the measured window.
    elapsed_secs: f64,
    /// Spike-phase requests completed.
    spike_requests: u64,
    /// Spike-phase throughput in requests/sec.
    spike_throughput_rps: f64,
    /// Spike-phase p99 latency in microseconds.
    spike_p99_us: f64,
    /// Total errors across all phases.
    errors: u64,
    /// Versioned probe writes acknowledged.
    probe_writes: u64,
    /// Versioned probe reads that observed a value.
    probe_reads: u64,
    /// Probe reads that observed a version older than an acknowledged
    /// write (must be zero in both arms).
    probe_stale_reads: u64,
    /// Data ops served on the loop owning both connection and shard.
    plane_local_ops: u64,
    /// Data ops forwarded to the owning loop as cross-loop messages.
    plane_remote_ops: u64,
    /// `remote / (local + remote)` — the cross-loop forwarding share.
    remote_share: f64,
    /// Keys promoted into per-loop replica caches.
    promotions: u64,
    /// Promoted keys demoted back out.
    demotions: u64,
    /// GETs served from a local replica instead of a forward.
    replica_hits: u64,
    /// Replica cache fills piggybacked on forwarded GETs.
    replica_fills: u64,
    /// Replica invalidations broadcast by writes to promoted keys.
    invalidations: u64,
    /// The full scenario report for the arm.
    report: ScenarioReport,
}

/// The two arms side by side.
#[derive(Serialize)]
struct Comparison {
    /// Spike-phase throughput, mitigation on / off (> 1 means the
    /// mitigation won).
    spike_throughput_ratio: f64,
    /// Spike-phase p99, mitigation on / off (< 1 means the mitigation
    /// won).
    spike_p99_ratio: f64,
    /// Cross-loop forwarding share with mitigation off.
    remote_share_off: f64,
    /// Cross-loop forwarding share with mitigation on.
    remote_share_on: f64,
}

/// The `cliffhanger-hotkey-sweep/v1` document.
#[derive(Serialize)]
struct HotkeySweepReport {
    /// Schema tag: `cliffhanger-hotkey-sweep/v1`.
    schema: String,
    /// Scenario both arms ran (`flash_crowd`).
    scenario: String,
    /// Scale factor applied to the scenario.
    scale: f64,
    /// CPUs visible to the run (replication only buys wall-clock wins
    /// when loops have their own cores).
    cpus: u64,
    /// Baseline arm: hot-key promotion off.
    off: ArmReport,
    /// Mitigation arm: hot-key promotion on.
    on: ArmReport,
    /// The two arms side by side.
    comparison: Comparison,
}

fn stat_u64(stats: Option<&Value>, section: &str, name: &str) -> u64 {
    stats
        .and_then(|s| s.get(section))
        .and_then(|s| s.get(name))
        .and_then(Value::as_u64)
        .unwrap_or(0)
}

fn summarize_arm(mitigation: bool, report: ScenarioReport) -> ArmReport {
    let spike = report
        .phases
        .iter()
        .find(|p| p.name == "spike")
        .expect("flash_crowd carries a spike phase");
    let stats = report.server_stats.as_ref();
    let local = stat_u64(stats, "plane", "local_ops");
    let remote = stat_u64(stats, "plane", "remote_ops");
    let probe = report.probe.as_ref();
    ArmReport {
        mitigation,
        passed: report.passed,
        requests: report.requests,
        elapsed_secs: report.elapsed_secs,
        spike_requests: spike.requests,
        spike_throughput_rps: spike.throughput_rps,
        spike_p99_us: spike.latency.p99_us,
        errors: report.errors,
        probe_writes: probe.map_or(0, |p| p.writes),
        probe_reads: probe.map_or(0, |p| p.reads),
        probe_stale_reads: probe.map_or(0, |p| p.stale_reads),
        plane_local_ops: local,
        plane_remote_ops: remote,
        remote_share: if local + remote > 0 {
            remote as f64 / (local + remote) as f64
        } else {
            0.0
        },
        promotions: stat_u64(stats, "hot_keys", "promotions"),
        demotions: stat_u64(stats, "hot_keys", "demotions"),
        replica_hits: stat_u64(stats, "hot_keys", "replica_hits"),
        replica_fills: stat_u64(stats, "hot_keys", "replica_fills"),
        invalidations: stat_u64(stats, "hot_keys", "invalidations"),
        report,
    }
}

fn run_arm(scale: f64, mitigation: bool) -> Result<ArmReport, String> {
    let mut scenario = named_scenario("flash_crowd")
        .expect("flash_crowd is registered")
        .scaled(scale);
    scenario.hot_key_promote = mitigation;
    eprintln!(
        "hotkey_sweep: running flash_crowd with mitigation {} ({} requests)",
        if mitigation { "ON" } else { "OFF" },
        scenario.total_requests()
    );
    let report = run_scenario(&scenario)
        .map_err(|e| format!("mitigation {mitigation}: engine error: {e}"))?;
    for verdict in &report.invariants {
        let flag = if verdict.pass { "ok  " } else { "FAIL" };
        eprintln!("  {flag} {:<28} {}", verdict.name, verdict.detail);
    }
    Ok(summarize_arm(mitigation, report))
}

fn gate(sweep: &HotkeySweepReport) -> Vec<String> {
    let mut failures = Vec::new();
    for arm in [&sweep.off, &sweep.on] {
        let tag = if arm.mitigation { "on" } else { "off" };
        if arm.errors > 0 {
            failures.push(format!("mitigation {tag}: {} request errors", arm.errors));
        }
        if arm.probe_stale_reads > 0 || arm.probe_reads == 0 {
            failures.push(format!(
                "mitigation {tag}: probe saw {} stale of {} reads",
                arm.probe_stale_reads, arm.probe_reads
            ));
        }
    }
    if !sweep.on.passed {
        let failed: Vec<&str> = sweep
            .on
            .report
            .invariants
            .iter()
            .filter(|v| !v.pass)
            .map(|v| v.name.as_str())
            .collect();
        failures.push(format!(
            "mitigation on violated invariant(s): {}",
            failed.join(", ")
        ));
    }
    if sweep.on.replica_hits == 0 {
        failures.push("mitigation on served no replica hits".to_string());
    }
    if sweep.on.promotions == 0 {
        failures.push("mitigation on promoted nothing".to_string());
    }
    if sweep.cpus >= 4 {
        // Loops have their own cores: local replica service must at least
        // match the single-owner baseline on the spike phase.
        if sweep.comparison.spike_throughput_ratio < 1.0 {
            failures.push(format!(
                "spike throughput ratio {:.3} < 1.0 on a {}-CPU box",
                sweep.comparison.spike_throughput_ratio, sweep.cpus
            ));
        }
    } else if sweep.on.remote_share >= sweep.off.remote_share {
        // One core serves every loop, so replication cannot buy wall-clock
        // throughput; the win it must still show is structural — the
        // forwarded-op share drops because spike GETs stopped crossing
        // loops.
        failures.push(format!(
            "remote-op share did not drop: off {:.4}, on {:.4}",
            sweep.off.remote_share, sweep.on.remote_share
        ));
    }
    failures
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut json: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => scale = 0.05,
            "--scale" => {
                i += 1;
                scale = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(f) if f > 0.0 => f,
                    _ => {
                        eprintln!("hotkey_sweep: --scale needs a positive number");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(path) => json = Some(path.clone()),
                    None => {
                        eprintln!("hotkey_sweep: --json needs a path");
                        return ExitCode::FAILURE;
                    }
                }
            }
            other => {
                eprintln!("hotkey_sweep: unknown argument `{other}`");
                eprintln!("usage: hotkey_sweep [--smoke] [--scale F] [--json out.json]");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let (off, on) = match run_arm(scale, false).and_then(|off| Ok((off, run_arm(scale, true)?))) {
        Ok(arms) => arms,
        Err(err) => {
            eprintln!("hotkey_sweep: {err}");
            return ExitCode::FAILURE;
        }
    };
    let sweep = HotkeySweepReport {
        schema: HOTKEY_SWEEP_SCHEMA.to_string(),
        scenario: "flash_crowd".to_string(),
        scale,
        cpus: std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
        comparison: Comparison {
            spike_throughput_ratio: on.spike_throughput_rps / off.spike_throughput_rps.max(1.0),
            spike_p99_ratio: on.spike_p99_us / off.spike_p99_us.max(1.0),
            remote_share_off: off.remote_share,
            remote_share_on: on.remote_share,
        },
        off,
        on,
    };

    eprintln!(
        "hotkey_sweep: spike {:.0} -> {:.0} req/s (x{:.2}), p99 {:.0} -> {:.0} us, \
         remote share {:.3} -> {:.3}, {} replica hits",
        sweep.off.spike_throughput_rps,
        sweep.on.spike_throughput_rps,
        sweep.comparison.spike_throughput_ratio,
        sweep.off.spike_p99_us,
        sweep.on.spike_p99_us,
        sweep.off.remote_share,
        sweep.on.remote_share,
        sweep.on.replica_hits
    );

    let out = serde_json::to_string_pretty(&sweep).expect("report serialisation cannot fail");
    println!("{out}");
    if let Some(path) = &json {
        if let Err(err) = std::fs::write(path, format!("{out}\n")) {
            eprintln!("hotkey_sweep: cannot write {path}: {err}");
            return ExitCode::FAILURE;
        }
    }

    let failures = gate(&sweep);
    if failures.is_empty() {
        eprintln!("hotkey_sweep: mitigation gate green");
        ExitCode::SUCCESS
    } else {
        for failure in &failures {
            eprintln!("hotkey_sweep: {failure}");
        }
        ExitCode::FAILURE
    }
}
