//! Multi-tenant skew sweep with the cross-tenant arbiter on vs off, under
//! live TCP load (the loadgen-level counterpart of the simulator's
//! `tenant_experiment`).
//!
//! Run with:
//! `cargo run --release -p bench --bin tenant_sweep [requests]`
//!
//! Two applications share a self-hosted server behind the `app <name>`
//! protocol extension, with *equal* reservations (plus a small slice for
//! the always-present `default` tenant). The sweep walks the demand skew
//! between them — a `hot` tenant whose Zipf working set outgrows its
//! reservation against a `cold` tenant that needs almost nothing — and
//! drives every point twice with the identical workload: once with static
//! reservations (arbiter off, Memcachier's model) and once with live
//! cross-tenant arbitration. The report shows what arbitration costs
//! (throughput) and buys (hit rate) end to end, wire protocol, locks and
//! per-tenant engines included. Prints a combined JSON document
//! (`cliffhanger-tenant-sweep/v1` embedding two loadgen reports per skew
//! point) on stdout and a table on stderr.

use cache_server::TenantSpec;
use loadgen::{
    run_self_hosted, LoadReport, LoadgenConfig, SelfHostConfig, TenantLoad, WorkloadSpec,
};
use workloads::{KeyPopularity, SizeDistribution};

/// Schema tag of the combined report.
const TENANT_SWEEP_SCHEMA: &str = "cliffhanger-tenant-sweep/v1";

/// One demand-skew point: the hot tenant's share of the traffic and the
/// sizes of the two key universes.
struct SkewPoint {
    name: &'static str,
    hot_weight: u64,
    cold_weight: u64,
    hot_keys: u64,
    cold_keys: u64,
}

fn load_for(point: &SkewPoint, requests: u64) -> LoadgenConfig {
    let sizes = SizeDistribution::GeneralizedPareto {
        location: 0.0,
        scale: 214.476,
        shape: 0.348_468,
        cap: 2 << 10,
    };
    LoadgenConfig {
        connections: 8,
        requests,
        warmup_keys: 15_000,
        pipeline: 32,
        // Cache-aside: misses repopulate, the way the server would actually
        // be used — and the repopulation SETs carry the shadow-queue signal
        // the arbiter's gradient needs on the wire path.
        fill_on_miss: true,
        tenants: vec![
            TenantLoad::new(
                "hot",
                point.hot_weight,
                WorkloadSpec {
                    keys: KeyPopularity::Zipf {
                        num_keys: point.hot_keys,
                        exponent: 0.9,
                    },
                    sizes: sizes.clone(),
                    get_fraction: 0.9,
                    ..WorkloadSpec::default()
                },
            ),
            TenantLoad::new(
                "cold",
                point.cold_weight,
                WorkloadSpec {
                    keys: KeyPopularity::Zipf {
                        num_keys: point.cold_keys,
                        exponent: 0.9,
                    },
                    sizes,
                    get_fraction: 0.9,
                    ..WorkloadSpec::default()
                },
            ),
        ],
        ..LoadgenConfig::default()
    }
}

fn main() -> std::process::ExitCode {
    // Default sized so the hot tenant's engines actually saturate (below
    // ~200k the fills never build eviction pressure and there is no
    // gradient for the arbiter to act on).
    let requests: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400_000);

    // The hot universe outgrows its reservation more at every point while
    // the cold tenant's fits with room to spare; reservations stay fixed
    // and equal (4/9 + 4/9 of 24 MB, with 1/9 for the default tenant), so
    // the only thing changing is how wrong the static split is.
    let points = [
        SkewPoint {
            name: "balanced",
            hot_weight: 1,
            cold_weight: 1,
            hot_keys: 30_000,
            cold_keys: 30_000,
        },
        SkewPoint {
            name: "skew-3to1",
            hot_weight: 3,
            cold_weight: 1,
            hot_keys: 90_000,
            cold_keys: 3_000,
        },
        SkewPoint {
            name: "skew-9to1",
            hot_weight: 9,
            cold_weight: 1,
            hot_keys: 120_000,
            cold_keys: 1_000,
        },
    ];

    let mut results: Vec<(&'static str, LoadReport, LoadReport)> = Vec::new();
    for point in &points {
        let load = load_for(point, requests);
        let mut pair: Vec<LoadReport> = Vec::new();
        for tenant_balance in [false, true] {
            let host = SelfHostConfig {
                total_bytes: 24 << 20,
                // Equal reservations for the two loaded apps; the implicit
                // default tenant keeps a small slice (it serves no traffic
                // here — budget the arbiter is free to harvest).
                tenants: vec![
                    TenantSpec::new("default", 1),
                    TenantSpec::new("hot", 4),
                    TenantSpec::new("cold", 4),
                ],
                tenant_balance,
                ..SelfHostConfig::default()
            };
            match run_self_hosted(&load, &host, 2) {
                Ok(report) => pair.push(report),
                Err(err) => {
                    eprintln!("tenant_sweep: {err}");
                    return std::process::ExitCode::FAILURE;
                }
            }
        }
        let on = pair.pop().expect("arbiter-on report");
        let off = pair.pop().expect("arbiter-off report");
        results.push((point.name, off, on));
    }

    eprintln!(
        "{:<10} {:>8} {:>12} {:>9} {:>9} {:>9} {:>10}",
        "point", "arbiter", "req/s", "hit", "hot_hit", "cold_hit", "transfers"
    );
    for (name, off, on) in &results {
        for (label, report) in [("off", off), ("on", on)] {
            let tenant_rate = |t: &str| {
                report
                    .tenants
                    .iter()
                    .find(|s| s.tenant == t)
                    .map(|s| s.hit_rate)
                    .unwrap_or(0.0)
            };
            eprintln!(
                "{:<10} {:>8} {:>12.0} {:>8.1}% {:>8.1}% {:>8.1}% {:>10}",
                name,
                label,
                report.throughput_rps,
                report.hit_rate * 100.0,
                tenant_rate("hot") * 100.0,
                tenant_rate("cold") * 100.0,
                report
                    .server
                    .as_ref()
                    .map(|s| s.arbiter_transfers)
                    .unwrap_or(0)
            );
        }
    }

    let points_json: Vec<String> = results
        .iter()
        .map(|(name, off, on)| {
            format!(
                "{{\"point\":\"{name}\",\"off\":{},\"on\":{}}}",
                off.to_json(),
                on.to_json()
            )
        })
        .collect();
    println!(
        "{{\"schema\":\"{TENANT_SWEEP_SCHEMA}\",\"points\":[{}]}}",
        points_json.join(",")
    );
    std::process::ExitCode::SUCCESS
}
