//! Adaptive Replacement Cache (ARC).
//!
//! ARC (Megiddo & Modha, FAST 2003) splits the resident population into a
//! recency list T1 and a frequency list T2 and keeps two ghost lists (B1,
//! B2) of recently evicted keys. Ghost hits adapt the target size `p` of T1,
//! shifting capacity between recency and frequency. The paper's §5.5 compares
//! Cliffhanger against ARC and finds ARC yields no improvement on the
//! Memcachier workloads; this implementation reproduces that comparison.
//!
//! Capacity note: in this crate eviction is driven externally by byte
//! budgets, so ARC does not know its capacity in items up front. It estimates
//! `c` as the largest resident population it has seen, which converges to the
//! steady-state queue size after the first round of evictions.

use crate::key::Key;
use crate::lru::{HitLocation, InsertPosition, LruList};
use crate::policy::{EvictionPolicy, PolicyKind};
use crate::shadow::ShadowQueue;
use std::collections::HashSet;

/// Adaptive Replacement Cache policy.
#[derive(Debug)]
pub struct ArcPolicy {
    /// Resident keys seen exactly once since admission (recency side).
    t1: LruList,
    /// Resident keys seen at least twice (frequency side).
    t2: LruList,
    /// Ghosts of keys evicted from T1.
    b1: ShadowQueue,
    /// Ghosts of keys evicted from T2.
    b2: ShadowQueue,
    /// Target size of T1, in items.
    p: usize,
    /// Estimated cache capacity in items.
    c: usize,
    /// Keys whose next insertion should go to T2 (they hit a ghost list).
    pending_frequent: HashSet<Key>,
}

impl Default for ArcPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl ArcPolicy {
    /// Creates an empty ARC policy.
    pub fn new() -> Self {
        ArcPolicy {
            t1: LruList::new(),
            t2: LruList::new(),
            b1: ShadowQueue::new(0),
            b2: ShadowQueue::new(0),
            p: 0,
            c: 0,
            pending_frequent: HashSet::new(),
        }
    }

    /// Current adaptation target for T1, in items (diagnostics).
    pub fn recency_target(&self) -> usize {
        self.p
    }

    /// Sizes of (T1, T2, B1, B2) — diagnostics and tests.
    pub fn list_sizes(&self) -> (usize, usize, usize, usize) {
        (self.t1.len(), self.t2.len(), self.b1.len(), self.b2.len())
    }

    fn update_capacity_estimate(&mut self) {
        let resident = self.t1.len() + self.t2.len();
        if resident > self.c {
            self.c = resident;
            self.b1.set_capacity(self.c);
            self.b2.set_capacity(self.c);
            self.p = self.p.min(self.c);
        }
    }
}

impl EvictionPolicy for ArcPolicy {
    fn access(&mut self, key: Key) -> Option<HitLocation> {
        if self.t1.contains(key) {
            let weight = self.t1.remove(key).expect("contains implies remove");
            self.t2.insert(key, weight, InsertPosition::Top);
            Some(HitLocation::Main)
        } else if self.t2.access(key).is_some() {
            Some(HitLocation::Main)
        } else {
            None
        }
    }

    fn on_miss(&mut self, key: Key) {
        let b1_len = self.b1.len().max(1);
        let b2_len = self.b2.len().max(1);
        if self.b1.remove(key) {
            // A larger T1 would have kept this key: grow the recency target.
            let delta = (b2_len / b1_len).max(1);
            self.p = (self.p + delta).min(self.c);
            self.pending_frequent.insert(key);
        } else if self.b2.remove(key) {
            // A larger T2 would have kept this key: shrink the recency target.
            let delta = (b1_len / b2_len).max(1);
            self.p = self.p.saturating_sub(delta);
            self.pending_frequent.insert(key);
        }
    }

    fn insert(&mut self, key: Key, weight: u64) {
        // Replace any existing copy so weights never double count.
        self.t1.remove(key);
        self.t2.remove(key);
        if self.pending_frequent.remove(&key) {
            self.t2.insert(key, weight, InsertPosition::Top);
        } else {
            self.t1.insert(key, weight, InsertPosition::Top);
        }
        self.b1.remove(key);
        self.b2.remove(key);
        self.update_capacity_estimate();
    }

    fn evict(&mut self) -> Option<(Key, u64)> {
        let evict_from_t1 = if self.t1.is_empty() {
            false
        } else if self.t2.is_empty() {
            true
        } else {
            self.t1.len() > self.p
        };
        if evict_from_t1 {
            let (key, weight) = self.t1.pop_lru()?;
            self.b1.insert(key);
            Some((key, weight))
        } else {
            let (key, weight) = self.t2.pop_lru()?;
            self.b2.insert(key);
            Some((key, weight))
        }
    }

    fn remove(&mut self, key: Key) -> Option<u64> {
        self.pending_frequent.remove(&key);
        self.t1.remove(key).or_else(|| self.t2.remove(key))
    }

    fn contains(&self, key: Key) -> bool {
        self.t1.contains(key) || self.t2.contains(key)
    }

    fn len(&self) -> usize {
        self.t1.len() + self.t2.len()
    }

    fn total_weight(&self) -> u64 {
        self.t1.total_weight() + self.t2.total_weight()
    }

    fn set_tail_region(&mut self, _items: usize) {}

    fn kind(&self) -> PolicyKind {
        PolicyKind::Arc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::conformance::{basic_contract, key, no_duplicate_evictions};

    #[test]
    fn conforms_to_policy_contract() {
        basic_contract(Box::new(ArcPolicy::new()));
        no_duplicate_evictions(Box::new(ArcPolicy::new()));
    }

    #[test]
    fn second_access_moves_to_frequency_list() {
        let mut p = ArcPolicy::new();
        p.insert(key(1), 1);
        p.insert(key(2), 1);
        assert_eq!(p.list_sizes().0, 2, "both keys start in T1");
        p.access(key(1));
        let (t1, t2, _, _) = p.list_sizes();
        assert_eq!(t1, 1);
        assert_eq!(t2, 1);
    }

    #[test]
    fn ghost_hit_admits_to_frequency_list() {
        let mut p = ArcPolicy::new();
        for i in 0..8 {
            p.insert(key(i), 1);
        }
        // Evict a few keys into the B1 ghost list.
        let (victim, _) = p.evict().unwrap();
        assert!(!p.contains(victim));
        // A miss on the ghost key adapts p and earmarks it for T2.
        p.on_miss(victim);
        p.insert(victim, 1);
        let (_, t2, _, _) = p.list_sizes();
        assert!(t2 >= 1, "ghost-hit key must be admitted to T2");
    }

    #[test]
    fn recency_ghost_hits_grow_p() {
        let mut p = ArcPolicy::new();
        for i in 0..16 {
            p.insert(key(i), 1);
        }
        let before = p.recency_target();
        let (victim, _) = p.evict().unwrap();
        p.on_miss(victim);
        assert!(p.recency_target() > before || p.recency_target() == 16);
    }

    #[test]
    fn scan_does_not_flush_frequent_items() {
        // The headline ARC property: a long scan of one-time keys must not
        // evict the frequently reused working set.
        let mut p = ArcPolicy::new();
        let working: Vec<Key> = (0..32).map(key).collect();
        for &k in &working {
            p.insert(k, 1);
        }
        for &k in &working {
            p.access(k); // promote the working set to T2
        }
        // Scan 10_000 one-time keys through a cache held at 64 items by an
        // external byte budget (we emulate the budget by evicting whenever
        // the resident population exceeds 64).
        for i in 0..10_000u64 {
            let k = key(1_000 + i);
            p.on_miss(k);
            p.insert(k, 1);
            while p.len() > 64 {
                p.evict();
            }
        }
        let survivors = working.iter().filter(|&&k| p.contains(k)).count();
        assert!(
            survivors > 16,
            "ARC should protect the reused working set from a scan, \
             only {survivors}/32 survived"
        );
    }

    #[test]
    fn does_not_support_tail_region() {
        assert!(!ArcPolicy::new().supports_tail_region());
        assert!(!PolicyKind::Arc.supports_tail_region());
    }
}
