//! HDR-style log-linear latency histograms.
//!
//! The recording scheme is the one HdrHistogram popularised: values are
//! bucketed by their highest set bit (the octave) and each octave is split
//! into 32 linear sub-buckets, so the relative quantisation error is bounded
//! by 1/32 ≈ 3% at every magnitude. Values below 32 ns are exact.
//!
//! Concurrency model: **no shared state**. Every recorder — a
//! load-generator worker on the client side, a server event loop on the
//! server side — owns a private `Histogram` and records into it with plain
//! (unsynchronised) increments — recording is lock-free and wait-free by
//! construction — and the per-recorder histograms are merged once, on
//! report (the loadgen report, or the control thread's stats snapshot).
//! This is the same "stripe then merge" design memtier and wrk2 use, and it
//! keeps the hot path to a handful of arithmetic instructions.

use serde::{Deserialize, Serialize};

/// Number of linear sub-buckets per power-of-two octave (as log2).
const SUB_BUCKET_BITS: u32 = 5;
/// Number of linear sub-buckets per octave.
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;
/// Number of octave groups: group 0 covers `[0, 32)` exactly, group `g`
/// covers `[32 << (g-1), 64 << (g-1))`. 37 groups reach past 2^40 ns
/// (~18 minutes), far beyond any request latency worth resolving.
const GROUPS: usize = 37;
/// Total bucket count (8 KB of counters per histogram).
const BUCKETS: usize = GROUPS * SUB_BUCKETS;

/// A log-linear histogram of `u64` values (nanoseconds, by convention).
#[derive(Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket a value falls into.
    fn bucket_index(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros(); // >= SUB_BUCKET_BITS
        let group = (msb - SUB_BUCKET_BITS + 1) as usize;
        let sub = ((value >> (msb - SUB_BUCKET_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
        let index = group * SUB_BUCKETS + sub;
        index.min(BUCKETS - 1)
    }

    /// The representative (midpoint) value of a bucket.
    fn bucket_value(index: usize) -> u64 {
        let group = index / SUB_BUCKETS;
        let sub = (index % SUB_BUCKETS) as u64;
        if group == 0 {
            return sub;
        }
        let shift = group as u32 - 1;
        let low = (SUB_BUCKETS as u64 + sub) << shift;
        let width = 1u64 << shift;
        low + width / 2
    }

    /// Records one value. Plain increments — the histogram must be owned by
    /// a single worker (merge across workers on report).
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// The largest recorded value, tracked exactly.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at the given percentile (e.g. `99.9`), within the bucket
    /// quantisation error (~3%). Returns 0 when empty.
    pub fn value_at_percentile(&self, percentile: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = percentile.clamp(0.0, 100.0);
        // Rank of the target observation, 1-based; p = 0 means the minimum.
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (index, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Clamp the bucket midpoint to the observed extremes so tiny
                // samples report exact values.
                return Self::bucket_value(index).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// A percentile summary in microseconds, ready for the JSON report.
    pub fn summarize_us(&self) -> LatencySummary {
        const NS_PER_US: f64 = 1_000.0;
        LatencySummary {
            count: self.count,
            mean_us: self.mean() / NS_PER_US,
            p50_us: self.value_at_percentile(50.0) as f64 / NS_PER_US,
            p90_us: self.value_at_percentile(90.0) as f64 / NS_PER_US,
            p99_us: self.value_at_percentile(99.0) as f64 / NS_PER_US,
            p999_us: self.value_at_percentile(99.9) as f64 / NS_PER_US,
            max_us: self.max() as f64 / NS_PER_US,
        }
    }
}

/// Percentile summary of one latency distribution, in microseconds.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of samples behind the summary.
    pub count: u64,
    /// Arithmetic mean.
    pub mean_us: f64,
    /// Median.
    pub p50_us: f64,
    /// 90th percentile.
    pub p90_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// 99.9th percentile.
    pub p999_us: f64,
    /// Exact maximum.
    pub max_us: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        assert_eq!(h.value_at_percentile(0.0), 0);
        assert_eq!(h.value_at_percentile(100.0), 31);
    }

    #[test]
    fn quantisation_error_is_bounded() {
        let mut h = Histogram::new();
        // A deterministic pseudo-random spread over six orders of magnitude.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = 100 + (x >> 20) % 1_000_000_000;
            h.record(v);
            let idx = Histogram::bucket_index(v);
            let rep = Histogram::bucket_value(idx);
            let err = (rep as f64 - v as f64).abs() / v as f64;
            assert!(err <= 0.04, "value {v} -> bucket rep {rep}, err {err}");
        }
    }

    #[test]
    fn percentiles_are_monotone_and_ordered() {
        let mut h = Histogram::new();
        for i in 1..=100_000u64 {
            h.record(i * 10);
        }
        let p50 = h.value_at_percentile(50.0);
        let p90 = h.value_at_percentile(90.0);
        let p99 = h.value_at_percentile(99.0);
        let p999 = h.value_at_percentile(99.9);
        assert!(p50 <= p90 && p90 <= p99 && p99 <= p999);
        // Within quantisation error of the true quantiles.
        assert!((p50 as f64 - 500_000.0).abs() / 500_000.0 < 0.04, "{p50}");
        assert!((p99 as f64 - 990_000.0).abs() / 990_000.0 < 0.04, "{p99}");
        assert_eq!(h.value_at_percentile(100.0), 1_000_000);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for i in 0..5_000u64 {
            let v = (i * 7919) % 1_000_000 + 1;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        for p in [50.0, 90.0, 99.0, 99.9] {
            assert_eq!(a.value_at_percentile(p), whole.value_at_percentile(p));
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.value_at_percentile(99.0), 0);
        let s = h.summarize_us();
        assert_eq!(s.count, 0);
        assert_eq!(s.p999_us, 0.0);
    }

    #[test]
    fn huge_values_clamp_to_the_last_bucket_but_keep_exact_max() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.count(), 1);
    }
}

/// Property: striping a sample multiset over any number of single-owner
/// recorders and merging them back reports exactly what one recorder
/// holding every sample reports — the guarantee the server's per-loop
/// histograms rely on when the control thread merges loop snapshots.
#[cfg(test)]
mod merge_properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn merged_quantiles_equal_a_single_recorder_over_the_same_multiset(
            samples in prop::collection::vec(1u64..2_000_000_000, 1..400),
            stripes in 1usize..8,
        ) {
            let mut parts = vec![Histogram::new(); stripes];
            let mut whole = Histogram::new();
            for (i, &v) in samples.iter().enumerate() {
                parts[i % stripes].record(v);
                whole.record(v);
            }
            let mut merged = Histogram::new();
            for part in &parts {
                merged.merge(part);
            }
            prop_assert_eq!(merged.count(), whole.count());
            prop_assert_eq!(merged.min(), whole.min());
            prop_assert_eq!(merged.max(), whole.max());
            for p in [0.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
                prop_assert_eq!(
                    merged.value_at_percentile(p),
                    whole.value_at_percentile(p),
                    "p{} diverged after merge", p
                );
            }
            prop_assert_eq!(merged.summarize_us(), whole.summarize_us());
        }
    }
}
