//! End-to-end experiment benchmarks: how long a full trace replay takes
//! under each cache system (this is the cost of regenerating the paper's
//! figures, not a result in the paper itself).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use simulator::engine::{replay_app, CacheSystem, ReplayOptions};
use workloads::{AppProfile, Phase, SizeDistribution, Trace};

fn replay_trace() -> (Trace, ReplayOptions) {
    let profile = AppProfile::simple(
        1,
        "bench-app",
        1.0,
        4 << 20,
        Phase::zipf(30_000, 0.9, SizeDistribution::facebook_etc()).with_scan(0.2, 12_000),
    );
    let trace = Trace::from_requests(profile.generate(150_000, 3_600, 11));
    (trace, ReplayOptions::new(4 << 20))
}

fn bench_replays(c: &mut Criterion) {
    let (trace, options) = replay_trace();
    let mut group = c.benchmark_group("trace_replay_150k");
    group.sample_size(10);
    for (name, system) in [
        ("default", CacheSystem::default_lru()),
        ("global_lru", CacheSystem::GlobalLru),
        ("cliffhanger", CacheSystem::cliffhanger()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &system, |b, system| {
            b.iter(|| black_box(replay_app(&trace, system, &options)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_replays);
criterion_main!(benches);
