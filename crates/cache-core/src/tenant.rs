//! A multi-tenant cache server.
//!
//! Memcachier assigns each application a fixed, statically reserved amount
//! of memory on every server (paper §3). [`MultiTenantCache`] models one such
//! server: a set of applications, each with its own [`SlabCache`] sized by
//! its reservation. Reservations can be changed at runtime, which is how
//! cross-application optimisation (Table 3) and the Cliffhanger controller
//! reassign memory between applications.

use crate::key::ClassId;
use crate::key::{AppId, Key};
use crate::queue::SetResult;
use crate::stats::CacheStats;
use crate::store::{SlabCache, SlabCacheConfig, SlabGetResult};
use std::collections::BTreeMap;

/// The name of the tenant a connection belongs to before any `app` command:
/// index 0 of every [`TenantDirectory`], always present, so a client that
/// never selects an application behaves exactly like a single-tenant server.
pub const DEFAULT_TENANT: &str = "default";

/// A named tenant table with stable indices.
///
/// The wire protocol selects tenants by *name* (`app <name>`), while the
/// backend indexes per-tenant engines, budgets and counters by dense
/// position; the directory is the bridge. Index 0 is always
/// [`DEFAULT_TENANT`]. Names travel on the wire inside `app` commands and
/// `tenant:<name>:…` stats lines, so they are restricted to ASCII
/// graphics without `:` (the stats separator).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantDirectory {
    names: Vec<String>,
}

impl Default for TenantDirectory {
    fn default() -> Self {
        TenantDirectory {
            names: vec![DEFAULT_TENANT.to_string()],
        }
    }
}

impl TenantDirectory {
    /// A directory hosting only the default tenant.
    pub fn single() -> Self {
        TenantDirectory::default()
    }

    /// Whether `name` is usable on the wire and in stats lines: non-empty,
    /// at most 64 bytes, ASCII graphic characters, no `:`.
    pub fn valid_name(name: &str) -> bool {
        !name.is_empty()
            && name.len() <= 64
            && name.bytes().all(|b| b.is_ascii_graphic() && b != b':')
    }

    /// Builds a directory from the configured application names. The default
    /// tenant is always present at index 0 whether or not it is listed;
    /// other names keep their configuration order. Duplicates collapse to
    /// their first occurrence.
    ///
    /// # Panics
    /// Panics if any name fails [`TenantDirectory::valid_name`] — tenant
    /// names are deployment configuration, and a name that cannot appear in
    /// a stats line is a misconfiguration worth failing loudly on.
    pub fn from_names<S: AsRef<str>>(configured: &[S]) -> Self {
        let mut names = vec![DEFAULT_TENANT.to_string()];
        for name in configured {
            let name = name.as_ref();
            assert!(
                Self::valid_name(name),
                "invalid tenant name {name:?}: need 1-64 ASCII graphic bytes, no ':'"
            );
            if !names.iter().any(|n| n == name) {
                names.push(name.to_string());
            }
        }
        TenantDirectory { names }
    }

    /// Appends a tenant name, returning its dense index. Indices already
    /// handed out are never invalidated — the directory is append-only,
    /// which is what lets a live server onboard applications while
    /// sessions hold tenant indices.
    ///
    /// # Panics
    /// Panics if the name fails [`TenantDirectory::valid_name`] or is
    /// already hosted; callers (the `app_create` executor) validate first
    /// and report a `CLIENT_ERROR` instead.
    pub fn add(&mut self, name: &str) -> usize {
        assert!(
            Self::valid_name(name),
            "invalid tenant name {name:?}: need 1-64 ASCII graphic bytes, no ':'"
        );
        assert!(
            self.index_of(name).is_none(),
            "tenant {name:?} already hosted"
        );
        self.names.push(name.to_string());
        self.names.len() - 1
    }

    /// Number of tenants (always at least 1).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether only the default tenant is hosted.
    pub fn is_single(&self) -> bool {
        self.names.len() == 1
    }

    /// Never true: the default tenant is always present.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The dense index of a tenant name, if hosted.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// The name at a dense index.
    pub fn name(&self, index: usize) -> &str {
        &self.names[index]
    }

    /// All tenant names, default first.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The [`AppId`] of a dense index (for the simulation-side types).
    pub fn app_id(&self, index: usize) -> AppId {
        AppId::new(index as u32)
    }
}

/// Per-application configuration.
#[derive(Clone, Debug)]
pub struct TenantConfig {
    /// The application's identifier.
    pub app: AppId,
    /// Bytes reserved for the application on this server.
    pub reserved_bytes: u64,
    /// The slab cache configuration template (its `total_bytes` is replaced
    /// by `reserved_bytes`).
    pub cache: SlabCacheConfig,
}

impl TenantConfig {
    /// Creates a tenant with the default slab cache configuration.
    pub fn new(app: AppId, reserved_bytes: u64) -> Self {
        TenantConfig {
            app,
            reserved_bytes,
            cache: SlabCacheConfig::default(),
        }
    }
}

/// A cache server shared by multiple applications.
#[derive(Debug)]
pub struct MultiTenantCache<V> {
    tenants: BTreeMap<AppId, SlabCache<V>>,
}

impl<V> Default for MultiTenantCache<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> MultiTenantCache<V> {
    /// Creates an empty server with no tenants.
    pub fn new() -> Self {
        MultiTenantCache {
            tenants: BTreeMap::new(),
        }
    }

    /// Adds (or replaces) a tenant.
    pub fn add_tenant(&mut self, config: TenantConfig) {
        let mut cache_config = config.cache;
        cache_config.total_bytes = config.reserved_bytes;
        self.tenants
            .insert(config.app, SlabCache::new(cache_config));
    }

    /// Removes a tenant, returning whether it existed.
    pub fn remove_tenant(&mut self, app: AppId) -> bool {
        self.tenants.remove(&app).is_some()
    }

    /// Number of tenants.
    pub fn num_tenants(&self) -> usize {
        self.tenants.len()
    }

    /// The application ids currently hosted, in ascending order.
    pub fn apps(&self) -> Vec<AppId> {
        self.tenants.keys().copied().collect()
    }

    /// Looks up `key` for application `app`.
    pub fn get(&mut self, app: AppId, key: Key, size: u64) -> Option<SlabGetResult> {
        self.tenants.get_mut(&app)?.get(key, size)
    }

    /// Looks up `key` for application `app` without a size hint.
    pub fn get_untyped(&mut self, app: AppId, key: Key) -> Option<SlabGetResult> {
        Some(self.tenants.get_mut(&app)?.get_untyped(key))
    }

    /// Stores `key` for application `app`.
    pub fn set(
        &mut self,
        app: AppId,
        key: Key,
        size: u64,
        value: V,
    ) -> Option<(ClassId, SetResult)> {
        self.tenants.get_mut(&app)?.set(key, size, value)
    }

    /// Deletes `key` for application `app`.
    pub fn delete(&mut self, app: AppId, key: Key) -> bool {
        self.tenants
            .get_mut(&app)
            .map(|t| t.delete(key))
            .unwrap_or(false)
    }

    /// Stored value for `key` of application `app`.
    pub fn value(&self, app: AppId, key: Key) -> Option<&V> {
        self.tenants.get(&app)?.value(key)
    }

    /// The tenant's cache, if hosted.
    pub fn tenant(&self, app: AppId) -> Option<&SlabCache<V>> {
        self.tenants.get(&app)
    }

    /// Mutable access to the tenant's cache (used by allocators).
    pub fn tenant_mut(&mut self, app: AppId) -> Option<&mut SlabCache<V>> {
        self.tenants.get_mut(&app)
    }

    /// Changes an application's reservation. The change takes effect lazily
    /// (on subsequent insertions), like every other resize in this crate.
    pub fn set_reservation(&mut self, app: AppId, bytes: u64) -> bool {
        match self.tenants.get_mut(&app) {
            Some(t) => {
                t.set_total_bytes(bytes);
                true
            }
            None => false,
        }
    }

    /// An application's reservation in bytes.
    pub fn reservation(&self, app: AppId) -> Option<u64> {
        self.tenants.get(&app).map(|t| t.total_bytes())
    }

    /// Sum of all reservations.
    pub fn total_reserved(&self) -> u64 {
        self.tenants.values().map(|t| t.total_bytes()).sum()
    }

    /// Per-application statistics.
    pub fn per_app_stats(&self) -> BTreeMap<AppId, CacheStats> {
        self.tenants
            .iter()
            .map(|(&app, cache)| (app, cache.stats()))
            .collect()
    }

    /// Aggregate statistics over all applications.
    pub fn stats(&self) -> CacheStats {
        self.tenants
            .values()
            .fold(CacheStats::new(), |acc, t| acc + t.stats())
    }

    /// Resets statistics for every tenant.
    pub fn reset_stats(&mut self) {
        for tenant in self.tenants.values_mut() {
            tenant.reset_stats();
        }
    }

    /// Total bytes in use across all tenants.
    pub fn used_bytes(&self) -> u64 {
        self.tenants.values().map(|t| t.used_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::AllocationMode;

    fn key(i: u64) -> Key {
        Key::new(i)
    }

    fn server() -> MultiTenantCache<()> {
        let mut s = MultiTenantCache::new();
        for app in 0..3u32 {
            s.add_tenant(TenantConfig::new(AppId::new(app), 64 << 10));
        }
        s
    }

    #[test]
    fn tenants_are_isolated() {
        let mut s = server();
        s.set(AppId::new(0), key(1), 100, ());
        assert!(s.get(AppId::new(0), key(1), 100).unwrap().result.hit);
        assert!(!s.get(AppId::new(1), key(1), 100).unwrap().result.hit);
    }

    #[test]
    fn unknown_app_is_rejected() {
        let mut s = server();
        assert!(s.get(AppId::new(9), key(1), 100).is_none());
        assert!(s.set(AppId::new(9), key(1), 100, ()).is_none());
        assert!(!s.delete(AppId::new(9), key(1)));
    }

    #[test]
    fn reservations_bound_each_tenant() {
        let mut s = MultiTenantCache::new();
        s.add_tenant(TenantConfig {
            app: AppId::new(0),
            reserved_bytes: 8 << 10,
            cache: SlabCacheConfig {
                mode: AllocationMode::FirstComeFirstServe { page_size: 1 << 10 },
                ..SlabCacheConfig::default()
            },
        });
        s.add_tenant(TenantConfig {
            app: AppId::new(1),
            reserved_bytes: 32 << 10,
            cache: SlabCacheConfig {
                mode: AllocationMode::FirstComeFirstServe { page_size: 1 << 10 },
                ..SlabCacheConfig::default()
            },
        });
        for i in 0..1_000 {
            s.set(AppId::new(0), key(i), 100, ());
            s.set(AppId::new(1), key(i), 100, ());
        }
        let used0 = s.tenant(AppId::new(0)).unwrap().used_bytes();
        let used1 = s.tenant(AppId::new(1)).unwrap().used_bytes();
        assert!(used0 <= 8 << 10);
        assert!(used1 <= 32 << 10);
        assert!(used1 > used0, "the larger reservation holds more data");
        assert_eq!(s.total_reserved(), 40 << 10);
    }

    #[test]
    fn per_app_stats_are_separate() {
        let mut s = server();
        s.set(AppId::new(0), key(1), 100, ());
        s.get(AppId::new(0), key(1), 100);
        s.get(AppId::new(1), key(1), 100);
        let stats = s.per_app_stats();
        assert_eq!(stats[&AppId::new(0)].hits, 1);
        assert_eq!(stats[&AppId::new(1)].misses, 1);
        let total = s.stats();
        assert_eq!(total.gets, 2);
        assert_eq!(total.sets, 1);
    }

    #[test]
    fn directory_defaults_and_lookup() {
        let d = TenantDirectory::single();
        assert_eq!(d.len(), 1);
        assert!(d.is_single());
        assert_eq!(d.index_of(DEFAULT_TENANT), Some(0));
        assert_eq!(d.name(0), "default");

        let d = TenantDirectory::from_names(&["alpha", "beta", "alpha"]);
        assert_eq!(d.len(), 3, "duplicates collapse");
        assert_eq!(d.index_of("default"), Some(0));
        assert_eq!(d.index_of("alpha"), Some(1));
        assert_eq!(d.index_of("beta"), Some(2));
        assert_eq!(d.index_of("gamma"), None);
        assert_eq!(d.app_id(2), AppId::new(2));
        assert!(!d.is_single());
        assert!(!d.is_empty());
    }

    #[test]
    fn directory_listing_default_explicitly_keeps_it_at_index_zero() {
        let d = TenantDirectory::from_names(&["alpha", "default", "beta"]);
        assert_eq!(d.index_of("default"), Some(0));
        assert_eq!(d.names().len(), 3);
    }

    #[test]
    fn tenant_name_validation() {
        assert!(TenantDirectory::valid_name("app-42_x.y"));
        assert!(TenantDirectory::valid_name("a"));
        assert!(!TenantDirectory::valid_name(""));
        assert!(!TenantDirectory::valid_name("has space"));
        assert!(!TenantDirectory::valid_name("has:colon"));
        assert!(!TenantDirectory::valid_name("ünïcode"));
        assert!(!TenantDirectory::valid_name(&"x".repeat(65)));
    }

    #[test]
    #[should_panic(expected = "invalid tenant name")]
    fn invalid_configured_name_panics() {
        let _ = TenantDirectory::from_names(&["bad:name"]);
    }

    #[test]
    fn reservation_changes_apply() {
        let mut s = server();
        assert!(s.set_reservation(AppId::new(0), 128 << 10));
        assert_eq!(s.reservation(AppId::new(0)), Some(128 << 10));
        assert!(!s.set_reservation(AppId::new(9), 1));
        assert!(s.remove_tenant(AppId::new(2)));
        assert_eq!(s.num_tenants(), 2);
        assert_eq!(s.apps(), vec![AppId::new(0), AppId::new(1)]);
    }
}
