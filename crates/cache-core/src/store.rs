//! A slab-structured cache for a single application.
//!
//! [`SlabCache`] reproduces Memcached's memory organisation: items are
//! grouped into slab classes by size and each class has its own eviction
//! queue (paper §2). Two allocation modes are supported:
//!
//! * [`AllocationMode::FirstComeFirstServe`] — Memcached's default. Slab
//!   classes claim memory pages greedily as requests arrive; once the
//!   application's reservation is exhausted, a class that needs room evicts
//!   from *its own* queue. This is the baseline the paper improves on.
//! * [`AllocationMode::Managed`] — per-class byte targets are set externally
//!   (by the Dynacache solver, by Cliffhanger's hill climbing, or by a static
//!   plan); the cache only enforces them.

use crate::key::{ClassId, Key};
use crate::policy::PolicyKind;
use crate::queue::{CacheQueue, GetResult, QueueConfig, SetResult};
use crate::slab::SlabConfig;
use crate::stats::CacheStats;
use std::collections::HashMap;

/// How the application's memory is divided among its slab classes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AllocationMode {
    /// Memcached's default: classes greedily claim pages of `page_size`
    /// bytes until the reservation is exhausted, then evict from their own
    /// queue.
    FirstComeFirstServe {
        /// Page granularity of slab growth (Memcached uses 1 MB pages).
        page_size: u64,
    },
    /// Per-class targets are maintained by an external allocator through
    /// [`SlabCache::set_class_target`].
    Managed,
}

impl Default for AllocationMode {
    fn default() -> Self {
        AllocationMode::FirstComeFirstServe { page_size: 1 << 20 }
    }
}

/// Configuration of a [`SlabCache`].
#[derive(Clone, Debug)]
pub struct SlabCacheConfig {
    /// Slab-class geometry.
    pub slab: SlabConfig,
    /// Total memory reserved by the application, in bytes.
    pub total_bytes: u64,
    /// Eviction policy used by every class queue.
    pub policy: PolicyKind,
    /// Allocation mode.
    pub mode: AllocationMode,
    /// Per-class shadow-queue capacity expressed in bytes of simulated
    /// requests; the per-class entry count is `shadow_bytes / chunk_size`
    /// (the paper's 1 MB shadow queues, §5.3). 0 disables shadow queues.
    pub shadow_bytes: u64,
    /// Tail region in items for policies that support it (0 disables).
    pub tail_region_items: usize,
}

impl Default for SlabCacheConfig {
    fn default() -> Self {
        SlabCacheConfig {
            slab: SlabConfig::default(),
            total_bytes: 64 << 20,
            policy: PolicyKind::Lru,
            mode: AllocationMode::default(),
            shadow_bytes: 0,
            tail_region_items: 0,
        }
    }
}

/// Outcome of a GET against a [`SlabCache`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlabGetResult {
    /// The slab class the request was routed to.
    pub class: ClassId,
    /// The per-queue outcome.
    pub result: GetResult,
}

/// A slab-structured single-application cache.
#[derive(Debug)]
pub struct SlabCache<V> {
    config: SlabCacheConfig,
    queues: Vec<CacheQueue<V>>,
    /// Bytes of the reservation granted to each class (FCFS mode only).
    granted: Vec<u64>,
    /// Class of each resident key (needed to serve GETs without a size hint).
    resident_class: HashMap<Key, ClassId>,
    stats: CacheStats,
}

impl<V> SlabCache<V> {
    /// Creates a cache from its configuration.
    pub fn new(config: SlabCacheConfig) -> Self {
        let num_classes = config.slab.num_classes();
        let mut queues = Vec::with_capacity(num_classes);
        for class in 0..num_classes as u32 {
            let chunk = config.slab.chunk_size(ClassId::new(class));
            let shadow_capacity = if config.shadow_bytes == 0 {
                0
            } else {
                (config.shadow_bytes / chunk).max(1) as usize
            };
            let target = match config.mode {
                // In FCFS mode targets start at zero and grow as pages are
                // granted; in managed mode an external allocator sets them.
                AllocationMode::FirstComeFirstServe { .. } => 0,
                AllocationMode::Managed => 0,
            };
            queues.push(CacheQueue::new(QueueConfig {
                policy: config.policy,
                target_bytes: target,
                tail_region_items: config.tail_region_items,
                shadow_capacity,
            }));
        }
        SlabCache {
            granted: vec![0; num_classes],
            queues,
            resident_class: HashMap::new(),
            config,
            stats: CacheStats::new(),
        }
    }

    /// The slab class an item of `size` bytes maps to.
    pub fn class_for_size(&self, size: u64) -> Option<ClassId> {
        self.config.slab.class_for_size(size)
    }

    /// Number of slab classes.
    pub fn num_classes(&self) -> usize {
        self.queues.len()
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &SlabCacheConfig {
        &self.config
    }

    /// Looks up `key`; `size` routes the request to its slab class (traces
    /// carry the item size on every request).
    pub fn get(&mut self, key: Key, size: u64) -> Option<SlabGetResult> {
        let class = self.class_for_size(size)?;
        Some(self.get_in_class(key, class))
    }

    /// Looks up `key` without a size hint: resident keys are routed by the
    /// recorded class; unknown keys are routed to the class whose shadow
    /// queue remembers them, if any, and otherwise reported as a cold miss
    /// in class 0.
    pub fn get_untyped(&mut self, key: Key) -> SlabGetResult {
        if let Some(&class) = self.resident_class.get(&key) {
            return self.get_in_class(key, class);
        }
        // Only consult the shadow queues when they exist at all.
        if self.config.shadow_bytes > 0 {
            for (idx, queue) in self.queues.iter().enumerate() {
                if queue.shadow().contains(key) {
                    return self.get_in_class(key, ClassId::new(idx as u32));
                }
            }
        }
        self.get_in_class(key, ClassId::new(0))
    }

    fn get_in_class(&mut self, key: Key, class: ClassId) -> SlabGetResult {
        let result = self.queues[class.index()].get(key);
        self.stats.record_get(result.hit);
        if result.shadow_hit.is_some() {
            self.stats.shadow_hits += 1;
        }
        if result.hit {
            self.resident_class.insert(key, class);
        } else {
            // A miss in this class supersedes any stale residency record
            // (e.g. the item changed size class).
            if self.resident_class.get(&key) == Some(&class) {
                self.resident_class.remove(&key);
            }
        }
        SlabGetResult { class, result }
    }

    /// Stores `key` with a payload of `size` bytes.
    pub fn set(&mut self, key: Key, size: u64, value: V) -> Option<(ClassId, SetResult)> {
        let class = self.class_for_size(size)?;
        self.stats.record_set();
        // If the key currently lives in a different class, remove it there.
        if let Some(&old_class) = self.resident_class.get(&key) {
            if old_class != class {
                self.queues[old_class.index()].delete(key);
                self.resident_class.remove(&key);
            }
        }
        let charge = CacheQueue::<V>::charge(size);
        if let AllocationMode::FirstComeFirstServe { page_size } = self.config.mode {
            self.grow_class_fcfs(class, charge, page_size);
        }
        let result = self.queues[class.index()].set(key, size, value);
        if result.admitted {
            self.resident_class.insert(key, class);
        }
        for evicted in &result.evicted {
            self.resident_class.remove(evicted);
        }
        self.stats.record_evictions(result.evicted.len() as u64);
        Some((class, result))
    }

    /// Deletes `key` if resident.
    pub fn delete(&mut self, key: Key) -> bool {
        if let Some(class) = self.resident_class.remove(&key) {
            self.queues[class.index()].delete(key)
        } else {
            false
        }
    }

    fn grow_class_fcfs(&mut self, class: ClassId, needed: u64, page_size: u64) {
        let idx = class.index();
        let queue_used = self.queues[idx].used_bytes();
        while queue_used + needed > self.granted[idx] {
            let total_granted: u64 = self.granted.iter().sum();
            let remaining = self.config.total_bytes.saturating_sub(total_granted);
            if remaining == 0 {
                // Reservation exhausted: the class has to live within its
                // grant and will evict from its own queue.
                break;
            }
            let page = page_size.min(remaining).max(needed.min(remaining));
            self.granted[idx] += page;
        }
        self.queues[idx].set_target_bytes(self.granted[idx]);
    }

    /// Sets the byte target of one class (managed mode). The new target is
    /// enforced lazily; call [`SlabCache::enforce_targets`] for an eager
    /// shrink.
    pub fn set_class_target(&mut self, class: ClassId, bytes: u64) {
        self.queues[class.index()].set_target_bytes(bytes);
    }

    /// Byte target of one class.
    pub fn class_target(&self, class: ClassId) -> u64 {
        self.queues[class.index()].target_bytes()
    }

    /// Bytes used by one class.
    pub fn class_used(&self, class: ClassId) -> u64 {
        self.queues[class.index()].used_bytes()
    }

    /// Evicts every class down to its target; returns the number of items
    /// evicted.
    pub fn enforce_targets(&mut self) -> usize {
        let mut evicted = 0;
        for (idx, queue) in self.queues.iter_mut().enumerate() {
            let keys = queue.evict_to_target();
            for key in &keys {
                self.resident_class.remove(key);
            }
            evicted += keys.len();
            let _ = idx;
        }
        self.stats.record_evictions(evicted as u64);
        evicted
    }

    /// Per-class statistics, indexed by class.
    pub fn class_stats(&self) -> Vec<CacheStats> {
        self.queues.iter().map(|q| q.stats()).collect()
    }

    /// Aggregate statistics across all classes.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets aggregate and per-class statistics.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::new();
        for q in &mut self.queues {
            q.reset_stats();
        }
    }

    /// Total bytes used across all classes.
    pub fn used_bytes(&self) -> u64 {
        self.queues.iter().map(|q| q.used_bytes()).sum()
    }

    /// Total resident items across all classes.
    pub fn len(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Whether the cache holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The application's total reservation in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.config.total_bytes
    }

    /// Changes the application's total reservation (FCFS mode grants no new
    /// pages beyond it; managed mode treats it as informational).
    pub fn set_total_bytes(&mut self, bytes: u64) {
        self.config.total_bytes = bytes;
    }

    /// Direct access to a class queue (used by allocators and tests).
    pub fn queue(&self, class: ClassId) -> &CacheQueue<V> {
        &self.queues[class.index()]
    }

    /// Mutable access to a class queue (used by allocators).
    pub fn queue_mut(&mut self, class: ClassId) -> &mut CacheQueue<V> {
        &mut self.queues[class.index()]
    }

    /// Stored value for `key`, if resident.
    pub fn value(&self, key: Key) -> Option<&V> {
        let class = self.resident_class.get(&key)?;
        self.queues[class.index()].value(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> Key {
        Key::new(i)
    }

    fn fcfs_cache(total: u64) -> SlabCache<()> {
        SlabCache::new(SlabCacheConfig {
            total_bytes: total,
            mode: AllocationMode::FirstComeFirstServe { page_size: 1 << 12 },
            ..SlabCacheConfig::default()
        })
    }

    #[test]
    fn routes_items_to_slab_classes_by_size() {
        let mut c = fcfs_cache(1 << 20);
        let (class_small, _) = c.set(key(1), 50, ()).unwrap();
        let (class_large, _) = c.set(key(2), 5_000, ()).unwrap();
        assert_ne!(class_small, class_large);
        assert_eq!(c.get(key(1), 50).unwrap().class, class_small);
        assert!(c.get(key(1), 50).unwrap().result.hit);
        assert!(c.get(key(2), 5_000).unwrap().result.hit);
    }

    #[test]
    fn rejects_items_larger_than_max() {
        let mut c = fcfs_cache(1 << 20);
        assert!(c.set(key(1), 2 << 20, ()).is_none());
        assert!(c.get(key(1), 2 << 20).is_none());
    }

    #[test]
    fn fcfs_exhausts_reservation_then_evicts_within_class() {
        // Small reservation: 16 KB. Fill it with large items first, then
        // insert small items; the small class only gets what is left.
        let mut c = fcfs_cache(16 << 10);
        for i in 0..100 {
            c.set(key(i), 1_000, ());
        }
        let used_large = c.used_bytes();
        assert!(used_large <= 16 << 10);
        // Now the small class arrives late and gets almost nothing: its
        // grant is bounded by what remains of the reservation.
        for i in 1_000..1_100 {
            c.set(key(i), 40, ());
        }
        let small_class = c.class_for_size(40).unwrap();
        let large_class = c.class_for_size(1_000).unwrap();
        assert!(
            c.class_target(small_class) < c.class_target(large_class),
            "late-arriving small class must not displace the large class under FCFS"
        );
        assert!(c.used_bytes() <= 16 << 10);
    }

    #[test]
    fn fcfs_total_budget_is_respected() {
        let total = 64 << 10;
        let mut c = fcfs_cache(total);
        for i in 0..2_000u64 {
            let size = if i % 3 == 0 { 100 } else { 900 };
            c.set(key(i), size, ());
        }
        assert!(c.used_bytes() <= total);
        let granted: u64 = (0..c.num_classes() as u32)
            .map(|cl| c.class_target(ClassId::new(cl)))
            .sum();
        assert!(granted <= total);
    }

    #[test]
    fn managed_mode_respects_external_targets() {
        let mut c: SlabCache<()> = SlabCache::new(SlabCacheConfig {
            total_bytes: 1 << 20,
            mode: AllocationMode::Managed,
            ..SlabCacheConfig::default()
        });
        let class = c.class_for_size(100).unwrap();
        c.set_class_target(class, 2_000);
        for i in 0..100 {
            c.set(key(i), 100, ());
        }
        assert!(c.class_used(class) <= 2_000);
        // Shrink and enforce.
        c.set_class_target(class, 500);
        c.enforce_targets();
        assert!(c.class_used(class) <= 500);
    }

    #[test]
    fn managed_mode_with_zero_target_admits_nothing_after_eviction() {
        let mut c: SlabCache<()> = SlabCache::new(SlabCacheConfig {
            total_bytes: 1 << 20,
            mode: AllocationMode::Managed,
            ..SlabCacheConfig::default()
        });
        let class = c.class_for_size(100).unwrap();
        c.set_class_target(class, 0);
        let (_, result) = c.set(key(1), 100, ()).unwrap();
        assert!(!result.admitted);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn get_untyped_uses_resident_class() {
        let mut c = fcfs_cache(1 << 20);
        c.set(key(1), 5_000, ());
        let res = c.get_untyped(key(1));
        assert!(res.result.hit);
        assert_eq!(res.class, c.class_for_size(5_000).unwrap());
        // Unknown key: cold miss.
        let res = c.get_untyped(key(42));
        assert!(!res.result.hit);
    }

    #[test]
    fn item_changing_size_class_moves() {
        let mut c = fcfs_cache(1 << 20);
        c.set(key(1), 50, ());
        let small = c.class_for_size(50).unwrap();
        c.set(key(1), 5_000, ());
        let large = c.class_for_size(5_000).unwrap();
        assert!(!c.queue(small).contains(key(1)));
        assert!(c.queue(large).contains(key(1)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn shadow_queues_sized_by_chunk() {
        let c: SlabCache<()> = SlabCache::new(SlabCacheConfig {
            shadow_bytes: 1 << 20,
            ..SlabCacheConfig::default()
        });
        let small = c.class_for_size(64).unwrap();
        let large = c.class_for_size(1 << 19).unwrap();
        assert!(
            c.queue(small).shadow().capacity() > c.queue(large).shadow().capacity(),
            "smaller slab classes hold more shadow keys per byte"
        );
        assert_eq!(c.queue(small).shadow().capacity(), (1 << 20) / 64);
    }

    #[test]
    fn stats_aggregate_across_classes() {
        let mut c = fcfs_cache(1 << 20);
        c.set(key(1), 100, ());
        c.set(key(2), 5_000, ());
        c.get(key(1), 100);
        c.get(key(2), 5_000);
        c.get(key(3), 100);
        let stats = c.stats();
        assert_eq!(stats.sets, 2);
        assert_eq!(stats.gets, 3);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
        let per_class = c.class_stats();
        let total_gets: u64 = per_class.iter().map(|s| s.gets).sum();
        assert_eq!(total_gets, 3);
    }

    #[test]
    fn delete_removes_resident_items() {
        let mut c = fcfs_cache(1 << 20);
        c.set(key(1), 100, ());
        assert!(c.delete(key(1)));
        assert!(!c.delete(key(1)));
        assert!(!c.get(key(1), 100).unwrap().result.hit);
    }

    #[test]
    fn values_accessible_by_key() {
        let mut c: SlabCache<String> = SlabCache::new(SlabCacheConfig::default());
        c.set(key(7), 100, "payload".to_string());
        assert_eq!(c.value(key(7)).map(String::as_str), Some("payload"));
        c.delete(key(7));
        assert!(c.value(key(7)).is_none());
    }
}
