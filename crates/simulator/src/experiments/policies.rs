//! Table 5: eviction-scheme comparison (paper §5.5).
//!
//! The paper compares LRU against Facebook's mid-queue insertion scheme and
//! against ARC, with and without Cliffhanger on top, on applications 3–5.

use crate::engine::{replay_app, CacheSystem, CliffhangerMode};
use crate::experiments::ExperimentContext;
use crate::report::Table;
use cache_core::PolicyKind;

/// Table 5: hit rates of applications 3–5 under the default allocation with
/// LRU, the Facebook scheme and ARC, and under Cliffhanger with LRU and with
/// the Facebook scheme.
pub fn table5_eviction_schemes(ctx: &ExperimentContext) -> Table {
    table5_for_apps(ctx, &[3, 4, 5])
}

/// The same comparison for an arbitrary set of applications.
pub fn table5_for_apps(ctx: &ExperimentContext, apps: &[u32]) -> Table {
    let systems = [
        ("default LRU", CacheSystem::Default(PolicyKind::Lru)),
        (
            "Facebook scheme",
            CacheSystem::Default(PolicyKind::Facebook),
        ),
        ("ARC", CacheSystem::Default(PolicyKind::Arc)),
        (
            "Cliffhanger + LRU",
            CacheSystem::Cliffhanger {
                mode: CliffhangerMode::Full,
                policy: PolicyKind::Lru,
            },
        ),
        (
            "Cliffhanger + Facebook",
            CacheSystem::Cliffhanger {
                mode: CliffhangerMode::Full,
                policy: PolicyKind::Facebook,
            },
        ),
    ];
    let mut headers = vec!["app".to_string()];
    headers.extend(systems.iter().map(|(name, _)| format!("{name} hit rate")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Table 5: eviction schemes with and without Cliffhanger",
        &header_refs,
    );
    for &app_number in apps {
        let trace = ctx.trace(app_number);
        let options = ctx.options(app_number);
        let mut row = vec![app_number.to_string()];
        for (_, system) in &systems {
            let result = replay_app(trace, system, &options);
            row.push(Table::pct(result.hit_rate()));
        }
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_support::shared_quick_context;

    #[test]
    fn table5_compares_five_schemes_on_three_apps() {
        let ctx = shared_quick_context();
        let table = table5_eviction_schemes(ctx);
        assert_eq!(table.rows.len(), 3);
        assert_eq!(table.headers.len(), 6);
        for row in &table.rows {
            for cell in &row[1..] {
                let value: f64 = cell.trim_end_matches('%').parse().unwrap();
                assert!((0.0..=100.0).contains(&value), "bad cell {cell}");
            }
        }
    }
}
