//! Shard-sweep entry point: throughput of the sharded server at 1/2/4/8
//! shards under the closed-loop Zipf workload (the scaling experiment the
//! loadgen subsystem exists to demonstrate).
//!
//! Run with: `cargo run --release -p bench --bin shard_sweep [requests]`
//!
//! Prints the sweep JSON (`cliffhanger-loadgen-sweep/v1`) on stdout and a
//! human-readable table on stderr. `cargo run --release -p loadgen --
//! --sweep 1,2,4,8` is the configurable superset of this binary.

use loadgen::{run_shard_sweep, LoadgenConfig, SelfHostConfig, WorkloadSpec};
use workloads::{KeyPopularity, SizeDistribution};

fn main() -> std::process::ExitCode {
    let requests: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);

    let load = LoadgenConfig {
        connections: 8,
        requests,
        warmup_keys: 20_000,
        pipeline: 32,
        workload: WorkloadSpec {
            keys: KeyPopularity::Zipf {
                num_keys: 50_000,
                exponent: 0.99,
            },
            sizes: SizeDistribution::Fixed(256),
            get_fraction: 0.9,
            ..WorkloadSpec::default()
        },
        ..LoadgenConfig::default()
    };
    let host = SelfHostConfig::default();

    match run_shard_sweep(&load, &host, &[1, 2, 4, 8]) {
        Ok(sweep) => {
            eprintln!("shards  throughput(req/s)  speedup  p99(us)");
            for p in &sweep.points {
                eprintln!(
                    "{:>6}  {:>17.0}  {:>7.2}  {:>7.0}",
                    p.shards, p.throughput_rps, p.speedup_vs_baseline, p.p99_us
                );
            }
            println!("{}", sweep.to_json());
            std::process::ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("shard_sweep: {err}");
            std::process::ExitCode::FAILURE
        }
    }
}
