//! A physical cache queue: an eviction policy, the stored values, a byte
//! budget and an attached shadow queue.
//!
//! [`CacheQueue`] is the unit the allocation algorithms reason about — one
//! per slab class (or one per application when optimizing across
//! applications). It charges each item `size + ITEM_OVERHEAD` bytes against
//! its `target_bytes` budget, evicts according to its policy when over
//! budget, and records evicted keys in its shadow queue so that later misses
//! can be classified as "would have hit with more memory".

use crate::key::Key;
use crate::lru::HitLocation;
use crate::policy::{EvictionPolicy, PolicyKind};
use crate::shadow::{ShadowHit, ShadowQueue};
use crate::stats::CacheStats;
use crate::ITEM_OVERHEAD;
use std::collections::HashMap;

/// Configuration of a [`CacheQueue`].
#[derive(Clone, Debug)]
pub struct QueueConfig {
    /// Eviction policy for the physical queue.
    pub policy: PolicyKind,
    /// Byte budget (values + per-item overhead).
    pub target_bytes: u64,
    /// Size of the tail region in items (0 disables tail classification).
    pub tail_region_items: usize,
    /// Capacity of the attached shadow queue in keys (0 disables it).
    pub shadow_capacity: usize,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            policy: PolicyKind::Lru,
            target_bytes: 1 << 20,
            tail_region_items: 0,
            shadow_capacity: 0,
        }
    }
}

impl QueueConfig {
    /// Convenience constructor for an LRU queue with the given byte budget.
    pub fn lru(target_bytes: u64) -> Self {
        QueueConfig {
            target_bytes,
            ..QueueConfig::default()
        }
    }
}

/// Outcome of a GET against a [`CacheQueue`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GetResult {
    /// Whether the key was resident in the physical queue.
    pub hit: bool,
    /// Where the hit landed (only for policies with tail-region support).
    pub location: Option<HitLocation>,
    /// If the request missed the physical queue, whether it hit the shadow
    /// queue and in which half.
    pub shadow_hit: Option<ShadowHit>,
}

impl GetResult {
    /// A miss that also missed the shadow queue.
    pub fn cold_miss() -> Self {
        GetResult {
            hit: false,
            location: None,
            shadow_hit: None,
        }
    }
}

/// Outcome of a SET against a [`CacheQueue`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SetResult {
    /// Whether the item was admitted (false only if it alone exceeds the
    /// queue's byte budget and `admit_oversized` is off).
    pub admitted: bool,
    /// Keys evicted from the physical queue to make room.
    pub evicted: Vec<Key>,
}

/// A physical cache queue with values, a byte budget and a shadow queue.
#[derive(Debug)]
pub struct CacheQueue<V> {
    policy: Box<dyn EvictionPolicy>,
    values: HashMap<Key, V>,
    shadow: ShadowQueue,
    target_bytes: u64,
    stats: CacheStats,
}

impl<V> CacheQueue<V> {
    /// Creates a queue from its configuration.
    pub fn new(config: QueueConfig) -> Self {
        let mut policy = config.policy.build();
        if config.tail_region_items > 0 {
            policy.set_tail_region(config.tail_region_items);
        }
        CacheQueue {
            policy,
            values: HashMap::new(),
            shadow: ShadowQueue::new(config.shadow_capacity),
            target_bytes: config.target_bytes,
            stats: CacheStats::new(),
        }
    }

    /// The memory charge of an item of `size` bytes.
    pub fn charge(size: u64) -> u64 {
        size + ITEM_OVERHEAD
    }

    /// Looks up `key`, updating recency, the shadow queue and statistics.
    pub fn get(&mut self, key: Key) -> GetResult {
        let location = self.policy.access(key);
        let hit = location.is_some();
        let shadow_hit = if hit {
            None
        } else {
            self.policy.on_miss(key);
            self.shadow.probe(key)
        };
        self.stats.record_get(hit);
        if shadow_hit.is_some() {
            self.stats.shadow_hits += 1;
        }
        GetResult {
            hit,
            location,
            shadow_hit,
        }
    }

    /// Returns the stored value without affecting recency or statistics.
    pub fn value(&self, key: Key) -> Option<&V> {
        self.values.get(&key)
    }

    /// Inserts `key` with a payload of `size` bytes, evicting items as needed
    /// to stay within the byte budget.
    pub fn set(&mut self, key: Key, size: u64, value: V) -> SetResult {
        self.stats.record_set();
        let charge = Self::charge(size);
        if charge > self.target_bytes {
            // The item alone exceeds the budget; do not admit it (Memcached
            // would fail the store with SERVER_ERROR object too large).
            // Remove any stale copy so we do not serve an outdated value.
            self.policy.remove(key);
            self.values.remove(&key);
            return SetResult {
                admitted: false,
                evicted: Vec::new(),
            };
        }
        self.policy.insert(key, charge);
        self.values.insert(key, value);
        // The key is now resident; it must not linger in the shadow queue.
        self.shadow.remove(key);
        let evicted = self.evict_to_target();
        SetResult {
            admitted: true,
            evicted,
        }
    }

    /// Removes `key` from the physical queue (but not the shadow queue).
    pub fn delete(&mut self, key: Key) -> bool {
        let removed = self.policy.remove(key).is_some();
        self.values.remove(&key);
        removed
    }

    /// Evicts items until the queue fits its byte budget; returns the evicted
    /// keys (they are recorded in the shadow queue).
    pub fn evict_to_target(&mut self) -> Vec<Key> {
        let mut evicted = Vec::new();
        while self.policy.total_weight() > self.target_bytes {
            match self.policy.evict() {
                Some((key, _)) => {
                    self.values.remove(&key);
                    self.shadow.insert(key);
                    evicted.push(key);
                }
                None => break,
            }
        }
        self.stats.record_evictions(evicted.len() as u64);
        evicted
    }

    /// Current byte budget.
    pub fn target_bytes(&self) -> u64 {
        self.target_bytes
    }

    /// Changes the byte budget. Shrinking does **not** evict immediately —
    /// eviction happens lazily on the next insertion (the paper resizes
    /// queues only on misses to avoid thrashing, §5.1). Call
    /// [`CacheQueue::evict_to_target`] to enforce the new budget eagerly.
    pub fn set_target_bytes(&mut self, bytes: u64) {
        self.target_bytes = bytes;
    }

    /// Bytes currently charged against the budget.
    pub fn used_bytes(&self) -> u64 {
        self.policy.total_weight()
    }

    /// Number of resident items.
    pub fn len(&self) -> usize {
        self.policy.len()
    }

    /// Whether the queue has no resident items.
    pub fn is_empty(&self) -> bool {
        self.policy.is_empty()
    }

    /// Whether `key` is resident.
    pub fn contains(&self, key: Key) -> bool {
        self.policy.contains(key)
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the statistics (e.g. after a warm-up phase).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::new();
    }

    /// The attached shadow queue.
    pub fn shadow(&self) -> &ShadowQueue {
        &self.shadow
    }

    /// Mutable access to the attached shadow queue (used by allocators that
    /// resize shadow queues together with their physical queues).
    pub fn shadow_mut(&mut self) -> &mut ShadowQueue {
        &mut self.shadow
    }

    /// Reconfigures the tail region of the physical queue.
    pub fn set_tail_region(&mut self, items: usize) {
        self.policy.set_tail_region(items);
    }

    /// Whether the underlying policy supports tail-region classification.
    pub fn supports_tail_region(&self) -> bool {
        self.policy.supports_tail_region()
    }

    /// The policy kind backing this queue.
    pub fn policy_kind(&self) -> PolicyKind {
        self.policy.kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> Key {
        Key::new(i)
    }

    fn queue(target_bytes: u64, shadow: usize) -> CacheQueue<()> {
        CacheQueue::new(QueueConfig {
            policy: PolicyKind::Lru,
            target_bytes,
            tail_region_items: 0,
            shadow_capacity: shadow,
        })
    }

    #[test]
    fn get_miss_then_set_then_hit() {
        let mut q = queue(10_000, 0);
        assert_eq!(q.get(key(1)), GetResult::cold_miss());
        let set = q.set(key(1), 100, ());
        assert!(set.admitted);
        assert!(set.evicted.is_empty());
        let got = q.get(key(1));
        assert!(got.hit);
        assert_eq!(q.stats().gets, 2);
        assert_eq!(q.stats().hits, 1);
        assert_eq!(q.stats().misses, 1);
        assert_eq!(q.stats().sets, 1);
    }

    #[test]
    fn byte_budget_is_enforced() {
        // Each item charges 100 + 48 = 148 bytes; budget fits 4 items.
        let mut q = queue(600, 0);
        for i in 0..10 {
            q.set(key(i), 100, ());
        }
        assert!(q.used_bytes() <= 600);
        assert_eq!(q.len(), 4);
        // The oldest items were evicted.
        assert!(!q.contains(key(0)));
        assert!(q.contains(key(9)));
        assert_eq!(q.stats().evictions, 6);
    }

    #[test]
    fn evicted_keys_land_in_shadow_queue() {
        let mut q = queue(600, 100);
        for i in 0..10 {
            q.set(key(i), 100, ());
        }
        // Key 0 was evicted; a GET on it must report a shadow hit.
        let result = q.get(key(0));
        assert!(!result.hit);
        assert!(result.shadow_hit.is_some());
        assert_eq!(q.stats().shadow_hits, 1);
        // A completely cold key misses both.
        assert_eq!(q.get(key(77)), GetResult::cold_miss());
    }

    #[test]
    fn oversized_items_are_rejected() {
        let mut q = queue(100, 0);
        let res = q.set(key(1), 1_000, ());
        assert!(!res.admitted);
        assert!(!q.contains(key(1)));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn oversized_overwrite_drops_stale_value() {
        let mut q = queue(1_000, 0);
        q.set(key(1), 100, ());
        assert!(q.contains(key(1)));
        // An update that no longer fits must not leave the old value behind.
        let res = q.set(key(1), 5_000, ());
        assert!(!res.admitted);
        assert!(!q.contains(key(1)));
        assert!(q.value(key(1)).is_none());
    }

    #[test]
    fn shrinking_budget_is_lazy_then_enforced() {
        let mut q = queue(10_000, 0);
        for i in 0..10 {
            q.set(key(i), 100, ());
        }
        let before = q.len();
        q.set_target_bytes(500);
        assert_eq!(q.len(), before, "shrinking must not evict immediately");
        let evicted = q.evict_to_target();
        assert!(!evicted.is_empty());
        assert!(q.used_bytes() <= 500);
    }

    #[test]
    fn values_are_stored_and_deleted() {
        let mut q: CacheQueue<String> = CacheQueue::new(QueueConfig::lru(10_000));
        q.set(key(1), 10, "hello".to_string());
        assert_eq!(q.value(key(1)).map(String::as_str), Some("hello"));
        assert!(q.delete(key(1)));
        assert!(!q.delete(key(1)));
        assert!(q.value(key(1)).is_none());
    }

    #[test]
    fn set_removes_key_from_shadow_queue() {
        let mut q = queue(600, 100);
        for i in 0..10 {
            q.set(key(i), 100, ());
        }
        assert!(q.shadow().contains(key(0)));
        q.set(key(0), 100, ());
        assert!(
            !q.shadow().contains(key(0)),
            "a resident key must not also be in the shadow queue"
        );
    }

    #[test]
    fn updating_an_item_does_not_double_charge() {
        let mut q = queue(10_000, 0);
        q.set(key(1), 100, ());
        let used = q.used_bytes();
        q.set(key(1), 100, ());
        assert_eq!(q.used_bytes(), used);
        q.set(key(1), 200, ());
        assert_eq!(q.used_bytes(), used + 100);
    }

    #[test]
    fn tail_region_classification_flows_through() {
        let mut q: CacheQueue<()> = CacheQueue::new(QueueConfig {
            policy: PolicyKind::Lru,
            target_bytes: 1 << 20,
            tail_region_items: 2,
            shadow_capacity: 0,
        });
        for i in 0..6 {
            q.set(key(i), 100, ());
        }
        assert_eq!(q.get(key(0)).location, Some(HitLocation::TailRegion));
        assert_eq!(q.get(key(5)).location, Some(HitLocation::Main));
        assert!(q.supports_tail_region());
    }

    #[test]
    fn works_with_every_policy_kind() {
        for kind in [
            PolicyKind::Lru,
            PolicyKind::Facebook,
            PolicyKind::Lfu,
            PolicyKind::Arc,
            PolicyKind::LruK(2),
            PolicyKind::TwoQ,
        ] {
            let mut q: CacheQueue<()> = CacheQueue::new(QueueConfig {
                policy: kind,
                target_bytes: 2_000,
                tail_region_items: 0,
                shadow_capacity: 16,
            });
            for i in 0..50 {
                q.get(key(i % 20));
                q.set(key(i % 20), 64, ());
            }
            assert!(q.used_bytes() <= 2_000, "budget violated for {kind:?}");
            assert!(!q.is_empty());
            assert_eq!(q.policy_kind(), kind);
        }
    }
}
