//! Minimal offline stand-in for [`criterion`](https://docs.rs/criterion).
//!
//! Provides the `criterion_group!` / `criterion_main!` entry points,
//! `Criterion`, benchmark groups, `Bencher::iter`, `black_box`,
//! `BenchmarkId`, and `Throughput`. Timing is a simple
//! warmup-then-measure loop over `std::time::Instant` — no statistics,
//! outlier analysis, or HTML reports — printing one `name ... mean ns/iter`
//! line per benchmark. Enough to run the paper's micro-benchmarks and keep
//! their code compiling under `--all-targets`.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark
/// bodies.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Units-of-work declaration used to report per-element throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Timer handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine`, running it enough times to smooth noise.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup and calibration: run until ~5ms have elapsed to pick an
        // iteration count, then measure one batch of that size.
        let calibration_start = Instant::now();
        let mut calibration_iters = 0u64;
        while calibration_start.elapsed() < Duration::from_millis(5) && calibration_iters < 10_000 {
            black_box(routine());
            calibration_iters += 1;
        }
        let per_iter = calibration_start.elapsed().as_nanos() as f64 / calibration_iters as f64;
        // Target ~20ms of measurement, capped to keep CI cheap.
        let measure_iters = ((20_000_000.0 / per_iter.max(1.0)) as u64).clamp(1, 100_000);
        let start = Instant::now();
        for _ in 0..measure_iters {
            black_box(routine());
        }
        self.iters = measure_iters;
        self.mean_ns = start.elapsed().as_nanos() as f64 / measure_iters as f64;
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark function.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by wall clock.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim ignores measurement time.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Sets the per-iteration throughput used in reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.throughput, f);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.id),
            self.throughput,
            |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, mut f: F) {
    let mut bencher = Bencher {
        iters: 0,
        mean_ns: 0.0,
    };
    f(&mut bencher);
    let rate = match throughput {
        Some(Throughput::Elements(n)) if bencher.mean_ns > 0.0 => {
            format!(" ({:.1} Melem/s)", n as f64 * 1_000.0 / bencher.mean_ns)
        }
        Some(Throughput::Bytes(n)) if bencher.mean_ns > 0.0 => {
            format!(" ({:.1} MB/s)", n as f64 * 953.7 / bencher.mean_ns)
        }
        _ => String::new(),
    };
    println!(
        "bench {name:<50} {:>12.1} ns/iter ({} iters){rate}",
        bencher.mean_ns, bencher.iters
    );
}

/// Collects benchmark functions into a single callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_a_cheap_routine() {
        let mut c = Criterion::default();
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(10).throughput(Throughput::Elements(1));
        group.bench_function(BenchmarkId::from_parameter(42), |b| {
            b.iter(|| black_box(42u64).wrapping_mul(7))
        });
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
