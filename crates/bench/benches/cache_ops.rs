//! Micro-benchmarks of the cache substrate's hot paths: LRU access/insert,
//! shadow-queue probes and slab-cache GET/SET.

use cache_core::lru::InsertPosition;
use cache_core::{Key, LruList, ShadowQueue, SlabCache, SlabCacheConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_lru(c: &mut Criterion) {
    let mut group = c.benchmark_group("lru_list");
    group.throughput(Throughput::Elements(1));

    group.bench_function("access_hit", |b| {
        let mut list = LruList::with_tail_region(128);
        for i in 0..10_000u64 {
            list.insert(Key::new(i), 100, InsertPosition::Top);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 10_000;
            black_box(list.access(Key::new(i)))
        });
    });

    group.bench_function("insert_evict", |b| {
        let mut list = LruList::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            list.insert(Key::new(i), 100, InsertPosition::Top);
            if list.len() > 10_000 {
                black_box(list.pop_lru());
            }
        });
    });
    group.finish();
}

fn bench_shadow(c: &mut Criterion) {
    let mut group = c.benchmark_group("shadow_queue");
    group.throughput(Throughput::Elements(1));

    group.bench_function("insert", |b| {
        let mut shadow = ShadowQueue::new(16_384);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(shadow.insert(Key::new(i)))
        });
    });

    group.bench_function("probe_miss", |b| {
        let mut shadow = ShadowQueue::new(16_384);
        for i in 0..16_384u64 {
            shadow.insert(Key::new(i));
        }
        let mut i = 1_000_000u64;
        b.iter(|| {
            i += 1;
            black_box(shadow.probe(Key::new(i)))
        });
    });
    group.finish();
}

fn bench_slab_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("slab_cache");
    group.throughput(Throughput::Elements(1));

    group.bench_function("get_hit", |b| {
        let mut cache: SlabCache<()> = SlabCache::new(SlabCacheConfig {
            total_bytes: 64 << 20,
            ..SlabCacheConfig::default()
        });
        for i in 0..50_000u64 {
            cache.set(Key::new(i), 100, ());
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 50_000;
            black_box(cache.get(Key::new(i), 100))
        });
    });

    group.bench_function("set_with_eviction", |b| {
        let mut cache: SlabCache<()> = SlabCache::new(SlabCacheConfig {
            total_bytes: 4 << 20,
            ..SlabCacheConfig::default()
        });
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(cache.set(Key::new(i), 100, ()))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_lru, bench_shadow, bench_slab_cache);
criterion_main!(benches);
