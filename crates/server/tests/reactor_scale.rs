//! The reactor at scale: connections ≫ event loops.
//!
//! These are the configurations the thread-per-connection front end could
//! not serve at all (PR 4 hit a real deadlock from `workers < clients`):
//!
//! * a soak with 256+ mostly-idle connections multiplexed on 2 event
//!   loops, active traffic interleaved, and a clean shutdown with every
//!   connection still open mid-flight;
//! * write backpressure — a client that requests far more response bytes
//!   than it reads must be throttled by TCP while its event loop keeps
//!   serving its siblings, and must eventually receive every byte intact;
//! * the shared-nothing contract — every data op executes on the loop
//!   that owns the key's shard (locally or via one forwarded message),
//!   `flush_all` and tenant-table growth ride the control plane without
//!   corrupting in-flight traffic, and message-based budget transfers
//!   conserve the configured total at every observable instant.

use bytes::Bytes;
use cache_server::{
    BackendConfig, BackendMode, CacheClient, CacheServer, ServerConfig, TenantSpec,
};
use cliffhanger::TenantBalanceConfig;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn start_server(workers: usize, max_connections: usize) -> CacheServer {
    CacheServer::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        max_connections,
        backend: BackendConfig {
            total_bytes: 32 << 20,
            mode: BackendMode::Cliffhanger,
            shards: 2,
            ..BackendConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("server must start")
}

fn stats_map(client: &mut CacheClient) -> HashMap<String, String> {
    client.stats().unwrap().into_iter().collect()
}

/// ≥ 256 concurrent live connections on 2 event loops: idle sessions cost
/// buffers, not threads; traffic keeps flowing around them; shutdown closes
/// every one of them mid-flight without hanging.
#[test]
fn soak_256_idle_connections_on_two_loops() {
    const IDLE: usize = 260;
    let mut server = start_server(2, 1024);
    let addr = server.local_addr();

    // Open the idle fleet. Each connection does one round-trip, so it is
    // fully registered with its event loop (not just sitting in a backlog)
    // before we count it.
    let mut idle: Vec<CacheClient> = Vec::with_capacity(IDLE);
    for i in 0..IDLE {
        let mut client = CacheClient::connect(addr).expect("connect idle");
        assert!(client
            .set(format!("idle-{i}").as_bytes(), 0, b"parked")
            .unwrap());
        idle.push(client);
    }

    // Active traffic interleaves with the parked fleet on the same 2 loops.
    let workers: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = CacheClient::connect(addr).expect("connect active");
                for i in 0..300 {
                    let key = format!("active-{t}-{}", i % 16);
                    let value = format!("v-{t}-{i}");
                    assert!(client.set(key.as_bytes(), 0, value.as_bytes()).unwrap());
                    let got = client.get(key.as_bytes()).unwrap().expect("own write");
                    assert_eq!(got.1, value.as_bytes());
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("active worker must not panic");
    }

    // The idle fleet is still fully connected and still works.
    let mut probe = CacheClient::connect(addr).unwrap();
    let stats = stats_map(&mut probe);
    let curr: u64 = stats["curr_connections"].parse().unwrap();
    assert!(
        curr > IDLE as u64,
        "all {IDLE} idle connections plus the probe must be live, got {curr}"
    );
    let total: u64 = stats["total_connections"].parse().unwrap();
    assert!(total >= IDLE as u64 + 5, "accept total counts everyone");
    assert_eq!(stats["rejected_connections"], "0");
    // Round-robin spread the fleet across both loops.
    let loop0: u64 = stats["conns:loop:0"].parse().unwrap();
    let loop1: u64 = stats["conns:loop:1"].parse().unwrap();
    assert_eq!(loop0 + loop1, curr);
    assert!(
        loop0 >= 100 && loop1 >= 100,
        "round-robin must spread connections: {loop0} / {loop1}"
    );
    for (i, client) in idle.iter_mut().enumerate().step_by(37) {
        let got = client
            .get(format!("idle-{i}").as_bytes())
            .unwrap()
            .expect("parked connection still serves");
        assert_eq!(got.1, b"parked");
    }

    // Clean shutdown with all 260+ connections open and traffic mid-flight.
    let disconnected = Arc::new(AtomicU64::new(0));
    let in_flight: Vec<_> = (0..3)
        .map(|t| {
            let disconnected = Arc::clone(&disconnected);
            std::thread::spawn(move || {
                let mut client = match CacheClient::connect(addr) {
                    Ok(c) => c,
                    Err(_) => {
                        disconnected.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                };
                for i in 0u64.. {
                    let key = format!("flight-{t}-{}", i % 8);
                    if client
                        .set(key.as_bytes(), 0, b"x")
                        .and_then(|_| client.get(key.as_bytes()).map(|_| ()))
                        .is_err()
                    {
                        disconnected.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
            })
        })
        .collect();
    std::thread::sleep(std::time::Duration::from_millis(100));
    server.shutdown();
    for h in in_flight {
        h.join().expect("mid-flight worker must not panic");
    }
    assert_eq!(disconnected.load(Ordering::Relaxed), 3);
    // Every parked connection was closed by the teardown.
    for (i, client) in idle.iter_mut().enumerate() {
        assert!(
            client.get(format!("idle-{i}").as_bytes()).is_err(),
            "idle connection {i} must observe the shutdown"
        );
    }
}

/// A reader that stalls mid-response parks its connection on write
/// backpressure; the event loop (there is only one) keeps serving a
/// sibling connection the whole time, and the stalled reader eventually
/// receives every response byte-exact.
#[test]
fn write_backpressure_does_not_block_the_loop() {
    const VALUE_BYTES: usize = 200 * 1024;
    const GETS: usize = 120; // ~24 MB of responses, far past every buffer
    let server = start_server(1, 64);
    let addr = server.local_addr();

    let mut setup = CacheClient::connect(addr).unwrap();
    let payload: Vec<u8> = (0..VALUE_BYTES).map(|i| (i % 251) as u8).collect();
    assert!(setup.set(b"big", 0, &payload).unwrap());

    // The stalling reader: pipeline GETS requests, read nothing yet.
    let stalled = TcpStream::connect(addr).unwrap();
    stalled.set_nodelay(true).unwrap();
    let mut stalled_writer = stalled.try_clone().unwrap();
    let request: Vec<u8> = b"get big\r\n".repeat(GETS);
    stalled_writer.write_all(&request).unwrap();
    // Let the server fill the socket buffers and hit the watermark.
    std::thread::sleep(std::time::Duration::from_millis(200));

    // The sibling on the same (only) event loop must be fully responsive
    // while the stalled connection is parked on EPOLLOUT.
    let mut sibling = CacheClient::connect(addr).unwrap();
    for i in 0..100 {
        let key = format!("sib-{i}");
        assert!(sibling.set(key.as_bytes(), 0, b"quick").unwrap());
        assert_eq!(sibling.get(key.as_bytes()).unwrap().unwrap().1, b"quick");
    }

    // Now drain the stalled connection: every one of the GETS responses
    // must arrive, framed exactly, with the payload intact.
    let mut reader = BufReader::with_capacity(64 * 1024, stalled);
    for response in 0..GETS {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).unwrap() > 0,
            "EOF before response {response}"
        );
        assert_eq!(
            line.trim_end(),
            format!("VALUE big 0 {VALUE_BYTES}"),
            "response {response} header"
        );
        let mut data = vec![0u8; VALUE_BYTES + 2];
        reader.read_exact(&mut data).unwrap();
        assert_eq!(&data[VALUE_BYTES..], b"\r\n");
        assert_eq!(&data[..VALUE_BYTES], &payload[..], "payload {response}");
        let mut end = String::new();
        reader.read_line(&mut end).unwrap();
        assert_eq!(end.trim_end(), "END", "response {response} END");
    }
}

/// Every data op lands on the loop that owns its shard. A single client
/// (pinned to one loop by the round-robin acceptor) drives keys that hash
/// to both shards; its home loop must execute the ops for its own shard
/// locally and forward exactly the rest to the other loop, which executes
/// no ops of its own. The per-loop ledgers must account for every op.
#[test]
fn keys_execute_on_the_loop_that_owns_their_shard() {
    const OPS: u64 = 200; // 100 sets + 100 gets, all from one connection
    let server = start_server(2, 64);
    let mut client = CacheClient::connect(server.local_addr()).unwrap();

    for i in 0..100 {
        let key = format!("aff-{i}");
        assert!(client.set(key.as_bytes(), 0, b"pinned").unwrap());
    }
    for i in 0..100 {
        let key = format!("aff-{i}");
        assert_eq!(client.get(key.as_bytes()).unwrap().unwrap().1, b"pinned");
    }

    let stats = stats_map(&mut client);
    assert_eq!(stats["plane:event_loops"], "2");
    // Static ownership: shard s is fused to loop s % loops, and with two
    // shards on two loops the owners are disjoint.
    assert_eq!(stats["shard:0:owner_loop"], "0");
    assert_eq!(stats["shard:1:owner_loop"], "1");

    let ledger = |l: usize| -> (u64, u64, u64) {
        (
            stats[&format!("loop:{l}:local_ops")].parse().unwrap(),
            stats[&format!("loop:{l}:remote_in")].parse().unwrap(),
            stats[&format!("loop:{l}:remote_out")].parse().unwrap(),
        )
    };
    // The client sits on exactly one loop; find it by who issued ops.
    let home = if ledger(0).0 + ledger(0).2 > 0 { 0 } else { 1 };
    let other = 1 - home;
    let (home_local, home_in, home_out) = ledger(home);
    let (other_local, other_in, other_out) = ledger(other);

    // The home loop issued every op: owned shards locally, the rest as
    // exactly one forwarded message each. The other loop originated none.
    assert_eq!(home_local + home_out, OPS, "home loop accounts for all ops");
    assert_eq!(home_in, 0, "nobody forwards to the client's own loop");
    assert_eq!(other_local, 0, "no client on the other loop");
    assert_eq!(other_out, 0);
    assert_eq!(other_in, home_out, "every forwarded op was executed");
    assert!(home_local > 0, "some keys hash to the home loop's shard");
    assert!(home_out > 0, "some keys hash to the remote shard");
    // Plane-wide rollups agree with the per-loop ledgers.
    assert_eq!(
        stats["plane:local_ops"].parse::<u64>().unwrap(),
        home_local + other_local
    );
    assert_eq!(stats["plane:remote_ops"].parse::<u64>().unwrap(), home_out);
}

/// `flush_all` is a control-plane conversation fanned out to every loop
/// while data traffic keeps flowing. Readers must only ever observe their
/// own exact bytes or a clean miss — never a torn or foreign value — and
/// the final flush must leave the cache verifiably empty.
#[test]
fn flush_all_during_traffic_never_corrupts_a_read() {
    let server = start_server(2, 64);
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..2)
        .map(|t| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = CacheClient::connect(addr).expect("connect writer");
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = format!("fl-{t}-{}", i % 32);
                    let value = format!("writer-{t}-round-{i}");
                    assert!(client.set(key.as_bytes(), 0, value.as_bytes()).unwrap());
                    match client.get(key.as_bytes()).unwrap() {
                        // A flush may race between the set and the get.
                        None => {}
                        Some((_, bytes)) => assert_eq!(
                            bytes,
                            value.as_bytes(),
                            "read must be byte-exact or a clean miss"
                        ),
                    }
                    i += 1;
                }
            })
        })
        .collect();

    let mut flusher = CacheClient::connect(addr).unwrap();
    for _ in 0..25 {
        flusher.flush_all().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().expect("writer must not panic");
    }

    flusher.flush_all().unwrap();
    let stats = stats_map(&mut flusher);
    assert_eq!(stats["curr_items"], "0", "final flush empties every shard");
    assert_eq!(stats["bytes"], "0");
    assert!(
        stats["plane:admin_msgs"].parse::<u64>().unwrap() >= 26,
        "each flush_all is served by the control thread"
    );
}

/// Tenant-table growth is an epoch-bumping control conversation; data
/// traffic that races it must keep executing lock-free on whatever
/// generation its loop holds, and every loop must observe each new tenant
/// once the create returns. This is the zero-shared-locks acceptance run:
/// the per-request path holds no lock any other thread can contend.
#[test]
fn tenant_table_growth_races_live_traffic() {
    const NEW_TENANTS: usize = 8;
    let server = start_server(2, 64);
    let addr = server.local_addr();
    let cache = server.cache().clone();
    let stop = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..2)
        .map(|t| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = CacheClient::connect(addr).expect("connect writer");
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = format!("race-{t}-{}", i % 16);
                    let value = format!("w{t}-gen-{i}");
                    assert!(client.set(key.as_bytes(), 0, value.as_bytes()).unwrap());
                    match client.get(key.as_bytes()).unwrap() {
                        // Re-carving budgets for a new tenant may evict.
                        None => {}
                        Some((_, bytes)) => assert_eq!(bytes, value.as_bytes()),
                    }
                    i += 1;
                }
            })
        })
        .collect();

    // Grow the tenant table under fire, and prove each new tenant is
    // immediately servable on every loop: a round-trip through both
    // shards touches both loops' freshly refreshed tables.
    for n in 0..NEW_TENANTS {
        let name = format!("app-{n}");
        let id = cache
            .create_tenant(&name, 1)
            .unwrap_or_else(|e| panic!("create {name}: {e}"));
        for k in 0..8 {
            let key = format!("seed-{n}-{k}");
            assert!(cache.set_for(id, key.as_bytes(), 0, Bytes::from_static(b"fresh")));
            assert_eq!(
                cache.get_for(id, key.as_bytes()).expect("own write").1,
                Bytes::from_static(b"fresh")
            );
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().expect("writer must survive every table mutation");
    }

    // The wire protocol sees the grown table too.
    let mut client = CacheClient::connect(addr).unwrap();
    let apps = client.app_list().unwrap();
    assert_eq!(apps.len(), 1 + NEW_TENANTS);
    assert!(client.app("app-3").unwrap());
    assert!(client.set(b"wired", 0, b"up").unwrap());
    assert_eq!(client.get(b"wired").unwrap().unwrap().1, b"up");

    let stats = stats_map(&mut client);
    assert_eq!(
        stats["tenant_count"],
        (1 + NEW_TENANTS).to_string(),
        "every app_create committed"
    );
    // Tenant creation is a multi-message conversation (carve on every
    // loop, then commit); the counters prove it rode the message plane.
    assert!(stats["plane:admin_msgs"].parse::<u64>().unwrap() >= NEW_TENANTS as u64);
}

/// Budget transfers are message conversations (shrink on the loser's
/// loops, then grow on the winner's); concurrency must never let the
/// budget vector sum past the configured total, and skewed demand must
/// still move bytes toward the needy tenant — through the message plane,
/// not through a shared lock.
#[test]
fn message_based_transfers_conserve_the_budget_total() {
    const TOTAL: u64 = 16 << 20;
    let server = CacheServer::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        max_connections: 64,
        backend: BackendConfig {
            total_bytes: TOTAL,
            mode: BackendMode::Cliffhanger,
            shards: 2,
            tenants: vec![TenantSpec::new("greedy", 1), TenantSpec::new("modest", 1)],
            tenant_balance: TenantBalanceConfig {
                interval_requests: 1_024,
                credit_bytes: 256 << 10,
                min_tenant_bytes: 1 << 20,
                min_gradient_gap: 4,
                hysteresis: 0.05,
                ..TenantBalanceConfig::default()
            },
            ..BackendConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("server must start");
    let cache = server.cache().clone();
    let greedy = cache.tenant_index("greedy").unwrap();
    let stop = Arc::new(AtomicBool::new(false));

    // Greedy's demand: disjoint key ranges whose combined population lands
    // past the physical capacity of each engine but inside its shadow
    // window, so reuse distances register as shadow hits (the gradient
    // signal) instead of physical hits or silence. Same geometry as the
    // embedded-backend arbitration test, but every op here is a message
    // round-trip through the owning event loop.
    let workers: Vec<_> = (0..3)
        .map(|w| {
            let cache = cache.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let payload = Bytes::from(vec![b'g'; 200]);
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = format!("g{w}-{}", i % 6_600);
                    cache.set_for(greedy, key.as_bytes(), 0, payload.clone());
                    cache.get_for(greedy, key.as_bytes());
                    i += 1;
                }
            })
        })
        .collect();

    // Force arbitration rounds concurrently with the traffic.
    let poker = {
        let cache = cache.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                cache.arbitrate_now();
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        })
    };
    // Audit conservation at every observable instant: shrink-then-grow
    // means the sum may briefly dip below the total mid-transfer, but it
    // must never exceed it.
    let violations = Arc::new(AtomicU64::new(0));
    let auditor = {
        let cache = cache.clone();
        let stop = Arc::clone(&stop);
        let violations = Arc::clone(&violations);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let sum: u64 = cache.tenant_budgets().iter().sum();
                if sum > TOTAL {
                    violations.fetch_add(1, Ordering::Relaxed);
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        })
    };

    // Wait until a transfer has actually happened (bounded), so the
    // conservation assertions below are about a plane that really moved
    // budget, not one that sat still.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let transfers = loop {
        std::thread::sleep(std::time::Duration::from_millis(200));
        let stats: HashMap<String, String> = cache.stats().into_iter().collect();
        let transfers: u64 = stats["arbiter:transfers"].parse().unwrap();
        if transfers > 0 || std::time::Instant::now() >= deadline {
            break transfers;
        }
    };
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().expect("traffic worker must not panic");
    }
    poker.join().unwrap();
    auditor.join().unwrap();

    assert_eq!(
        violations.load(Ordering::Relaxed),
        0,
        "budget sum exceeded the configured total mid-transfer"
    );
    assert!(transfers > 0, "skewed demand must have moved budget");
    let budgets = cache.tenant_budgets();
    assert_eq!(budgets.iter().sum::<u64>(), TOTAL, "quiescent sum is exact");
    let modest = cache.tenant_index("modest").unwrap();
    assert!(
        budgets[greedy] > budgets[modest],
        "bytes must flow toward the loaded tenant: {budgets:?}"
    );
}
