//! Key-only shadow queues.
//!
//! A shadow queue is an extension of an eviction queue that stores only keys,
//! not values (paper §3.4). Keys evicted from the physical queue are pushed
//! onto the front of the shadow queue; a request that misses the physical
//! queue but hits the shadow queue would have been a hit if the physical
//! queue had been larger by (roughly) the shadow queue's length. The *rate*
//! of shadow hits therefore approximates the local gradient of the hit-rate
//! curve, which is all the hill-climbing algorithm needs.
//!
//! For the cliff-scaling algorithm the shadow queue is additionally split
//! into a *left half* (the more recent evictions, adjacent to the physical
//! queue) and a *right half* (older evictions, farther along the hit-rate
//! curve); which half a hit lands in approximates the sign of the second
//! derivative (paper §4.2, Algorithm 2).

use crate::key::Key;
use crate::list::{LinkedArena, NodeHandle};
use std::collections::HashMap;

/// Which half of a shadow queue a hit landed in.
///
/// `Left` is the half adjacent to the physical queue (most recent evictions);
/// `Right` is the farther half. These names follow Algorithm 2 in the paper,
/// where a hit in the *right* half of the right shadow queue pushes the right
/// pointer further right (towards larger simulated queues).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ShadowHalf {
    /// The more recent (nearer) half.
    Left,
    /// The older (farther) half.
    Right,
}

/// Outcome of probing a shadow queue.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ShadowHit {
    /// Which half of the queue the key was found in.
    pub half: ShadowHalf,
    /// Approximate distance (in entries, counted from the physical queue)
    /// at which the key was found: 0-based index of the half boundary the
    /// key fell into. `0` for the left half, `capacity / 2` for the right.
    pub depth_hint: usize,
}

#[derive(Clone, Copy, Debug)]
struct Slot {
    half: ShadowHalf,
    handle: NodeHandle,
}

/// A fixed-capacity, key-only LRU queue with exact half classification.
///
/// Internally the queue keeps two segments (left = newer, right = older) whose
/// concatenation is the full recency order; the boundary is maintained at
/// `ceil(len / 2)` so half membership is exact at all times.
#[derive(Debug)]
pub struct ShadowQueue {
    left: LinkedArena<Key>,
    right: LinkedArena<Key>,
    index: HashMap<Key, Slot>,
    capacity: usize,
}

impl ShadowQueue {
    /// Creates a shadow queue holding at most `capacity` keys.
    pub fn new(capacity: usize) -> Self {
        ShadowQueue {
            left: LinkedArena::new(),
            right: LinkedArena::new(),
            index: HashMap::new(),
            capacity,
        }
    }

    /// Maximum number of keys retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of keys.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the queue holds no keys.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether `key` is currently in the shadow queue (no side effects).
    pub fn contains(&self, key: Key) -> bool {
        self.index.contains_key(&key)
    }

    /// Changes the capacity, evicting the oldest keys if necessary.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        self.enforce_capacity();
        self.rebalance();
    }

    /// Inserts a key evicted from the physical queue at the front (most
    /// recent end). If the key is already present it is refreshed. Returns
    /// the key that fell off the far end, if any.
    pub fn insert(&mut self, key: Key) -> Option<Key> {
        if self.capacity == 0 {
            return None;
        }
        if let Some(slot) = self.index.remove(&key) {
            match slot.half {
                ShadowHalf::Left => self.left.remove(slot.handle),
                ShadowHalf::Right => self.right.remove(slot.handle),
            };
        }
        let handle = self.left.push_front(key);
        self.index.insert(
            key,
            Slot {
                half: ShadowHalf::Left,
                handle,
            },
        );
        let evicted = self.enforce_capacity();
        self.rebalance();
        evicted
    }

    /// Probes the shadow queue for `key`. On a hit the key is removed (it is
    /// about to be re-admitted to the physical queue by the caller) and the
    /// half it was found in is reported.
    pub fn probe(&mut self, key: Key) -> Option<ShadowHit> {
        let slot = self.index.remove(&key)?;
        match slot.half {
            ShadowHalf::Left => self.left.remove(slot.handle),
            ShadowHalf::Right => self.right.remove(slot.handle),
        };
        self.rebalance();
        Some(ShadowHit {
            half: slot.half,
            depth_hint: match slot.half {
                ShadowHalf::Left => 0,
                ShadowHalf::Right => self.capacity / 2,
            },
        })
    }

    /// Looks up `key` without removing it.
    pub fn peek(&self, key: Key) -> Option<ShadowHalf> {
        self.index.get(&key).map(|s| s.half)
    }

    /// Removes `key` if present (used when the physical queue re-admits a key
    /// through a path that did not call [`ShadowQueue::probe`]).
    pub fn remove(&mut self, key: Key) -> bool {
        match self.index.remove(&key) {
            Some(slot) => {
                match slot.half {
                    ShadowHalf::Left => self.left.remove(slot.handle),
                    ShadowHalf::Right => self.right.remove(slot.handle),
                };
                self.rebalance();
                true
            }
            None => false,
        }
    }

    /// Drops every key.
    pub fn clear(&mut self) {
        self.left.clear();
        self.right.clear();
        self.index.clear();
    }

    /// Iterates over keys from most to least recently evicted.
    pub fn iter(&self) -> impl Iterator<Item = Key> + '_ {
        self.left.iter().copied().chain(self.right.iter().copied())
    }

    fn enforce_capacity(&mut self) -> Option<Key> {
        let mut last_evicted = None;
        while self.index.len() > self.capacity {
            let key = self
                .right
                .pop_back()
                .or_else(|| self.left.pop_back())
                .expect("index non-empty implies a segment is non-empty");
            self.index.remove(&key);
            last_evicted = Some(key);
        }
        last_evicted
    }

    fn rebalance(&mut self) {
        let left_target = self.index.len().div_ceil(2);
        while self.left.len() > left_target {
            let key = self.left.pop_back().expect("left non-empty");
            let handle = self.right.push_front(key);
            self.reindex(key, ShadowHalf::Right, handle);
        }
        while self.left.len() < left_target {
            let key = self.right.pop_front().expect("right non-empty");
            let handle = self.left.push_back(key);
            self.reindex(key, ShadowHalf::Left, handle);
        }
    }

    fn reindex(&mut self, key: Key, half: ShadowHalf, handle: NodeHandle) {
        if let Some(slot) = self.index.get_mut(&key) {
            slot.half = half;
            slot.handle = handle;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> Key {
        Key::new(i)
    }

    #[test]
    fn insert_and_probe() {
        let mut q = ShadowQueue::new(4);
        q.insert(key(1));
        q.insert(key(2));
        assert!(q.contains(key(1)));
        // Halves are relative to the current contents: key 2 is the newer
        // half, key 1 the older half.
        let hit = q.probe(key(1)).unwrap();
        assert_eq!(hit.half, ShadowHalf::Right);
        let hit = q.probe(key(2)).unwrap();
        assert_eq!(hit.half, ShadowHalf::Left);
        // Probe removes the key.
        assert!(!q.contains(key(1)));
        assert!(q.probe(key(1)).is_none());
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut q = ShadowQueue::new(3);
        q.insert(key(1));
        q.insert(key(2));
        q.insert(key(3));
        let evicted = q.insert(key(4));
        assert_eq!(evicted, Some(key(1)));
        assert_eq!(q.len(), 3);
        assert!(!q.contains(key(1)));
        assert!(q.contains(key(2)));
    }

    #[test]
    fn halves_are_exact() {
        let mut q = ShadowQueue::new(8);
        for i in 0..8 {
            q.insert(key(i));
        }
        // Recency order (newest first): 7,6,5,4 | 3,2,1,0
        assert_eq!(q.peek(key(7)), Some(ShadowHalf::Left));
        assert_eq!(q.peek(key(4)), Some(ShadowHalf::Left));
        assert_eq!(q.peek(key(3)), Some(ShadowHalf::Right));
        assert_eq!(q.peek(key(0)), Some(ShadowHalf::Right));
    }

    #[test]
    fn odd_lengths_put_extra_in_left() {
        let mut q = ShadowQueue::new(10);
        for i in 0..5 {
            q.insert(key(i));
        }
        // Order: 4,3,2 | 1,0 (left holds ceil(5/2) = 3).
        assert_eq!(q.peek(key(2)), Some(ShadowHalf::Left));
        assert_eq!(q.peek(key(1)), Some(ShadowHalf::Right));
    }

    #[test]
    fn probe_reports_right_half() {
        let mut q = ShadowQueue::new(4);
        for i in 0..4 {
            q.insert(key(i));
        }
        let hit = q.probe(key(0)).unwrap();
        assert_eq!(hit.half, ShadowHalf::Right);
        assert_eq!(hit.depth_hint, 2);
    }

    #[test]
    fn reinsert_refreshes_recency() {
        let mut q = ShadowQueue::new(3);
        q.insert(key(1));
        q.insert(key(2));
        q.insert(key(3));
        q.insert(key(1)); // refresh
        let evicted = q.insert(key(4));
        assert_eq!(evicted, Some(key(2)), "key 1 was refreshed, 2 is oldest");
        assert!(q.contains(key(1)));
    }

    #[test]
    fn zero_capacity_is_inert() {
        let mut q = ShadowQueue::new(0);
        assert_eq!(q.insert(key(1)), None);
        assert!(q.is_empty());
        assert!(q.probe(key(1)).is_none());
    }

    #[test]
    fn shrink_capacity_drops_oldest() {
        let mut q = ShadowQueue::new(6);
        for i in 0..6 {
            q.insert(key(i));
        }
        q.set_capacity(2);
        assert_eq!(q.len(), 2);
        assert!(q.contains(key(5)));
        assert!(q.contains(key(4)));
        assert!(!q.contains(key(3)));
    }

    #[test]
    fn remove_then_iterate() {
        let mut q = ShadowQueue::new(5);
        for i in 0..5 {
            q.insert(key(i));
        }
        assert!(q.remove(key(2)));
        assert!(!q.remove(key(2)));
        let keys: Vec<u64> = q.iter().map(Key::raw).collect();
        assert_eq!(keys, vec![4, 3, 1, 0]);
    }

    #[test]
    fn clear_empties() {
        let mut q = ShadowQueue::new(5);
        q.insert(key(1));
        q.clear();
        assert!(q.is_empty());
        assert!(!q.contains(key(1)));
    }
}
