//! End-to-end hot-key replication consistency.
//!
//! A promoted key is served from per-loop replica caches, so the sharp
//! question is staleness: a GET issued *after* a SET was acknowledged must
//! never return the overwritten value, no matter which loop serves it and
//! no matter how the promotion set churns mid-flight. The protocol under
//! test: the owning loop bumps the key's version slot before the write is
//! acknowledged, and a replica entry serves only while its captured
//! version equals the live slot.
//!
//! Three angles:
//! * promotion end-to-end — heat a key over TCP, force a control round,
//!   and require the promoted set, replica hits and the `stats json`
//!   `hot_keys` block to all show it;
//! * a concurrent SET storm on a promoted key with readers spread across
//!   all four loops, every read asserting version >= the last write that
//!   was acknowledged before the read began, while promotion rounds churn
//!   the key in and out of the hot set;
//! * demotion under churn — once the traffic moves on, the key must leave
//!   the promoted set.

use cache_server::{BackendConfig, CacheClient, CacheServer, HotKeyConfig, ServerConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const WORKERS: usize = 4;

fn start_server(hot_key: HotKeyConfig) -> CacheServer {
    CacheServer::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: WORKERS,
        backend: BackendConfig {
            total_bytes: 32 << 20,
            shards: 8,
            hot_key,
            ..BackendConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("server must start")
}

/// Parses the probe payload `v:<n>:<padding>` back to `n`.
fn probe_version(data: &[u8]) -> u64 {
    let text = std::str::from_utf8(data).expect("probe payload is ASCII");
    let mut parts = text.splitn(3, ':');
    assert_eq!(parts.next(), Some("v"), "unexpected probe payload {text:?}");
    parts
        .next()
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("unparseable probe payload {text:?}"))
}

fn probe_payload(n: u64) -> Vec<u8> {
    format!("v:{n}:{}", "x".repeat(64)).into_bytes()
}

fn replica_hits(server: &CacheServer) -> u64 {
    let mut client = CacheClient::connect(server.local_addr()).unwrap();
    let doc: serde_json::Value =
        serde_json::from_str(&client.stats_json().unwrap()).expect("stats json must parse");
    doc.get("hot_keys")
        .and_then(|h| h.get("replica_hits"))
        .and_then(serde_json::Value::as_u64)
        .expect("hot_keys block must be present when the feature is on")
}

#[test]
fn promotion_serves_replica_hits_and_shows_in_stats() {
    let server = start_server(HotKeyConfig::aggressive());
    let mut heater = CacheClient::connect(server.local_addr()).unwrap();
    assert!(heater.set(b"viral", 7, b"payload").unwrap());
    for _ in 0..200 {
        assert!(heater.get(b"viral").unwrap().is_some());
    }
    server.cache().hot_round_now();
    let promoted = server.cache().promoted_keys();
    assert!(
        promoted.contains(&("default".to_string(), "viral".to_string())),
        "200 tracked GETs must promote the key: {promoted:?}"
    );

    // Eight connections round-robin across four loops: at least six sit on
    // loops that do not own the key, and their second GET must be a local
    // replica hit (the first rides the forward and fills).
    let mut clients: Vec<CacheClient> = (0..2 * WORKERS)
        .map(|_| CacheClient::connect(server.local_addr()).unwrap())
        .collect();
    for client in &mut clients {
        for _ in 0..2 {
            let (flags, data) = client.get(b"viral").unwrap().expect("promoted key hit");
            assert_eq!(flags, 7);
            assert_eq!(data, b"payload");
        }
    }
    let hits = replica_hits(&server);
    assert!(hits > 0, "non-owning loops must serve locally: {hits}");

    // The document shows the full observability block.
    let mut client = CacheClient::connect(server.local_addr()).unwrap();
    let doc: serde_json::Value = serde_json::from_str(&client.stats_json().unwrap()).unwrap();

    // Replica-served GETs must not vanish from the tenant's wire counters:
    // every GET issued so far was a hit, locally served or not.
    let issued = 200 + 2 * clients.len() as u64;
    let tenant = doc
        .get("tenants")
        .and_then(serde_json::Value::as_array)
        .and_then(|t| t.first())
        .expect("default tenant doc");
    let tenant_hits = tenant
        .get("get_hits")
        .and_then(serde_json::Value::as_u64)
        .unwrap();
    assert!(
        tenant_hits >= issued,
        "tenant get_hits ({tenant_hits}) must include the {hits} \
         replica-served GETs of the {issued} issued"
    );
    let hot = doc.get("hot_keys").expect("hot_keys block");
    let counter = |name: &str| hot.get(name).and_then(serde_json::Value::as_u64).unwrap();
    assert!(counter("promotions") >= 1);
    assert!(counter("rounds") >= 1);
    assert!(counter("replica_fills") >= 1);
    let entry_field = |e: &serde_json::Value, name: &str| {
        e.get(name)
            .and_then(serde_json::Value::as_str)
            .unwrap_or_default()
            .to_string()
    };
    let tracked = hot
        .get("tracked")
        .and_then(serde_json::Value::as_array)
        .unwrap();
    assert!(
        tracked.iter().any(|e| {
            entry_field(e, "app") == "default"
                && entry_field(e, "key") == "viral"
                && e.get("ops").and_then(serde_json::Value::as_u64).unwrap() > 0
        }),
        "the tracker must expose the hot key: {tracked:?}"
    );
    let promoted_doc = hot
        .get("promoted")
        .and_then(serde_json::Value::as_array)
        .unwrap();
    assert!(promoted_doc
        .iter()
        .any(|e| entry_field(e, "key") == "viral"));

    // And the Prometheus exposition carries the per-key series.
    let prom = client.stats_prom().unwrap();
    assert!(prom.contains("cliffhanger_hot_key_ops{app=\"default\",key=\"viral\"}"));
    assert!(prom.contains("cliffhanger_hot_key_replica_hits_total"));
}

#[test]
fn no_stale_reads_while_promotion_churns_under_a_set_storm() {
    // Small window + tiny thresholds + max_promoted 2 with competing keys:
    // the probe key is repeatedly displaced and re-promoted while the storm
    // runs, which is exactly when a stale replica would slip through.
    let server = start_server(HotKeyConfig {
        enabled: true,
        sample: 1,
        window: 512,
        promote_threshold: 16,
        demote_threshold: 4,
        max_promoted: 2,
        interval_requests: 4096,
        ..HotKeyConfig::aggressive()
    });
    let addr = server.local_addr();

    // Seed and heat the probe key so the first round promotes it.
    let mut seed = CacheClient::connect(addr).unwrap();
    assert!(seed.set(b"probe", 0, &probe_payload(0)).unwrap());
    for _ in 0..64 {
        seed.get(b"probe").unwrap();
    }
    server.cache().hot_round_now();
    assert!(
        server
            .cache()
            .promoted_keys()
            .contains(&("default".to_string(), "probe".to_string())),
        "the probe key must start promoted"
    );

    let last_acked = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    // The writer: acknowledge-then-publish. `last_acked` only moves after
    // the server said STORED, so any reader snapshot is a write whose
    // version bump is already observable.
    let writer = {
        let last_acked = Arc::clone(&last_acked);
        std::thread::spawn(move || {
            let mut client = CacheClient::connect(addr).unwrap();
            for n in 1..=1_500u64 {
                assert!(client.set(b"probe", 0, &probe_payload(n)).unwrap());
                last_acked.store(n, Ordering::Release);
            }
        })
    };

    // The churn actor: heats two competitor keys (displacing the probe from
    // the top-2) and alternates with probe-only heat, forcing rounds the
    // whole time so promotion state flips mid-storm.
    let churn = {
        let stop = Arc::clone(&stop);
        let cache = Arc::clone(server.cache());
        std::thread::spawn(move || {
            let mut client = CacheClient::connect(addr).unwrap();
            client.set(b"rival-a", 0, b"a").unwrap();
            client.set(b"rival-b", 0, b"b").unwrap();
            let mut flips = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for _ in 0..48 {
                    client.get(b"rival-a").unwrap();
                    client.get(b"rival-b").unwrap();
                }
                cache.hot_round_now();
                flips += 1;
            }
            flips
        })
    };

    // Readers across all loops: snapshot the acknowledged frontier, read,
    // and require the observed version to be at or past the snapshot.
    let readers: Vec<_> = (0..WORKERS)
        .map(|_| {
            let last_acked = Arc::clone(&last_acked);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = CacheClient::connect(addr).unwrap();
                let mut reads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let floor = last_acked.load(Ordering::Acquire);
                    let (_, data) = client
                        .get(b"probe")
                        .unwrap()
                        .expect("the probe key is never deleted or evicted");
                    let seen = probe_version(&data);
                    assert!(
                        seen >= floor,
                        "stale read: observed v{seen} after v{floor} was acknowledged"
                    );
                    reads += 1;
                }
                reads
            })
        })
        .collect();

    writer.join().expect("writer must not panic");
    stop.store(true, Ordering::Relaxed);
    let flips = churn.join().expect("churn actor must not panic");
    let reads: u64 = readers
        .into_iter()
        .map(|r| r.join().expect("reader must not panic"))
        .sum();
    assert!(flips >= 2, "promotion rounds must have churned: {flips}");
    assert!(
        reads > 100,
        "readers must have exercised the storm: {reads}"
    );
    assert_eq!(
        last_acked.load(Ordering::Acquire),
        1_500,
        "the writer must have completed the storm"
    );

    // Final read on a fresh connection: exactly the last acknowledged
    // write, on every loop.
    let mut clients: Vec<CacheClient> = (0..2 * WORKERS)
        .map(|_| CacheClient::connect(addr).unwrap())
        .collect();
    for client in &mut clients {
        let (_, data) = client.get(b"probe").unwrap().expect("probe survives");
        assert_eq!(probe_version(&data), 1_500);
    }
}

#[test]
fn flush_all_is_never_shadowed_by_stale_replicas() {
    // `flush_all` rebuilds the tenant's engines without being able to
    // enumerate its keys, so it bumps every version slot (and broadcasts
    // a tenant-wide purge) before acknowledging. A GET on any loop after
    // the ack must miss — a replica serving the pre-flush value here is
    // exactly the acknowledged-mutation-shadowed bug.
    let server = start_server(HotKeyConfig::aggressive());
    let addr = server.local_addr();
    let mut heater = CacheClient::connect(addr).unwrap();
    assert!(heater.set(b"viral", 7, b"pre-flush").unwrap());
    for _ in 0..200 {
        assert!(heater.get(b"viral").unwrap().is_some());
    }
    server.cache().hot_round_now();
    assert!(server
        .cache()
        .promoted_keys()
        .contains(&("default".to_string(), "viral".to_string())));

    // Warm a replica on every loop: two clients per loop, two GETs each
    // (the first forwards and fills, the second hits locally).
    let mut clients: Vec<CacheClient> = (0..2 * WORKERS)
        .map(|_| CacheClient::connect(addr).unwrap())
        .collect();
    for client in &mut clients {
        for _ in 0..2 {
            assert_eq!(client.get(b"viral").unwrap().unwrap().1, b"pre-flush");
        }
    }
    assert!(replica_hits(&server) > 0, "replicas must be warm pre-flush");

    heater.flush_all().unwrap();
    for client in &mut clients {
        assert_eq!(
            client.get(b"viral").unwrap(),
            None,
            "an acknowledged flush_all must not be shadowed by a replica"
        );
    }

    // The subsystem still works after the slot-wide bump: a fresh value
    // promotes and replicates again.
    assert!(heater.set(b"viral", 7, b"post-flush").unwrap());
    for _ in 0..200 {
        assert!(heater.get(b"viral").unwrap().is_some());
    }
    server.cache().hot_round_now();
    for client in &mut clients {
        for _ in 0..2 {
            assert_eq!(client.get(b"viral").unwrap().unwrap().1, b"post-flush");
        }
    }
}

#[test]
fn failed_mutations_do_not_invalidate_replicas() {
    // `add` on a present key and `delete` of a missing key change nothing,
    // so they must not bump the version slot: every warmed replica keeps
    // serving without a refill round-trip.
    let server = start_server(HotKeyConfig::aggressive());
    let addr = server.local_addr();
    let mut heater = CacheClient::connect(addr).unwrap();
    assert!(heater.set(b"viral", 0, b"payload").unwrap());
    for _ in 0..200 {
        assert!(heater.get(b"viral").unwrap().is_some());
    }
    server.cache().hot_round_now();
    assert!(server
        .cache()
        .promoted_keys()
        .contains(&("default".to_string(), "viral".to_string())));

    // Warm every loop's replica, then settle the baseline hit counter.
    let mut clients: Vec<CacheClient> = (0..2 * WORKERS)
        .map(|_| CacheClient::connect(addr).unwrap())
        .collect();
    for client in &mut clients {
        for _ in 0..2 {
            assert!(client.get(b"viral").unwrap().is_some());
        }
    }
    let before = replica_hits(&server);

    // Both failed mutations: NOT_STORED and NOT_FOUND.
    assert!(!heater.add(b"viral", 0, b"usurper").unwrap());
    assert!(!heater.delete(b"never-stored").unwrap());

    // One GET per client: every one on a non-owning loop must still be a
    // replica hit (at least 2 * WORKERS - 2 of the 2 * WORKERS clients).
    // Had the failed mutations bumped the version, each loop's first GET
    // would have evicted the replica and forwarded instead.
    for client in &mut clients {
        assert_eq!(client.get(b"viral").unwrap().unwrap().1, b"payload");
    }
    let delta = replica_hits(&server) - before;
    assert!(
        delta >= (2 * WORKERS - 2) as u64,
        "failed mutations must not evict valid replicas: only {delta} of \
         {} GETs hit locally",
        2 * WORKERS
    );
}

#[test]
fn a_cooled_key_is_demoted_once_traffic_moves_on() {
    let server = start_server(HotKeyConfig {
        enabled: true,
        sample: 1,
        window: 256,
        promote_threshold: 16,
        demote_threshold: 4,
        interval_requests: 1 << 20,
        ..HotKeyConfig::aggressive()
    });
    let mut client = CacheClient::connect(server.local_addr()).unwrap();
    assert!(client.set(b"fad", 0, b"v").unwrap());
    for _ in 0..64 {
        client.get(b"fad").unwrap();
    }
    server.cache().hot_round_now();
    assert!(
        server
            .cache()
            .promoted_keys()
            .contains(&("default".to_string(), "fad".to_string())),
        "the fad must first be promoted"
    );

    // Traffic moves on: thousands of distinct keys slide every loop's
    // sample window past the fad's entries, so its merged count decays
    // below the demotion threshold.
    for i in 0..2_000u64 {
        let key = format!("long-tail-{i}");
        client.set(key.as_bytes(), 0, b"t").unwrap();
        client.get(key.as_bytes()).unwrap();
    }
    server.cache().hot_round_now();
    let promoted = server.cache().promoted_keys();
    assert!(
        !promoted.contains(&("default".to_string(), "fad".to_string())),
        "a cooled key must be demoted: {promoted:?}"
    );
    // The value itself is untouched — demotion only drops replicas.
    assert_eq!(client.get(b"fad").unwrap().unwrap().1, b"v");
}
