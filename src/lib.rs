//! # cliffhanger-repro
//!
//! A from-scratch Rust reproduction of *Cliffhanger: Scaling Performance
//! Cliffs in Web Memory Caches* (Cidon, Eisenman, Alizadeh, Katti — NSDI
//! 2016).
//!
//! This facade crate re-exports the workspace members so applications can
//! depend on a single crate:
//!
//! * [`cache_core`] — the Memcached-like cache substrate (slab classes,
//!   eviction policies, shadow queues, multi-tenant stores).
//! * [`cliffhanger`] — the paper's contribution: shadow-queue hill climbing
//!   and incremental cliff scaling.
//! * [`profiler`] — stack distances, hit-rate curves and the curve-based
//!   baselines (Dynacache, Talus, LookAhead).
//! * [`workloads`] — the synthetic Memcachier-like traces and Facebook-ETC
//!   micro-benchmark workloads.
//! * [`simulator`] — the trace-driven engine and the per-table / per-figure
//!   experiments.
//! * [`cache_server`] — a Memcached-text-protocol TCP server and client
//!   backed by the Cliffhanger-managed cache, N-way sharded.
//! * [`loadgen`] — a memtier-style load generator with HDR-style latency
//!   telemetry and a shard-sweep mode (see README "Benchmarking").
//!
//! See `examples/quickstart.rs` for a five-minute tour and DESIGN.md /
//! EXPERIMENTS.md for the reproduction methodology and results.

#![warn(missing_docs)]

pub use cache_core;
pub use cache_server;
pub use cliffhanger;
pub use loadgen;
pub use profiler;
pub use simulator;
pub use workloads;

/// The most commonly used types, for glob import in examples and tests.
pub mod prelude {
    pub use cache_core::{
        AppId, CacheStats, ClassId, GlobalLruCache, HitRatio, Key, PolicyKind, SlabCache,
        SlabCacheConfig, SlabConfig,
    };
    pub use cache_server::{BackendConfig, BackendMode, CacheClient, CacheServer, ServerConfig};
    pub use cliffhanger::{Cliffhanger, CliffhangerConfig, CliffhangerServer};
    pub use profiler::{DynacacheSolver, HitRateCurve, QueueProfile, TalusPartition};
    pub use simulator::{
        engine::{replay_app, CacheSystem, CliffhangerMode, ReplayOptions},
        experiments::ExperimentContext,
    };
    pub use workloads::{
        memcachier_trace, AppProfile, MemcachierConfig, Op, Phase, Request, SizeDistribution, Trace,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_a_working_cache() {
        let mut cache: Cliffhanger<()> =
            Cliffhanger::new(CliffhangerConfig::with_total_bytes(1 << 20));
        cache.set(Key::new(1), 128, ());
        assert!(cache.get(Key::new(1), 128).unwrap().1.hit);
    }
}
