//! Building solver inputs (per-queue hit-rate curves and frequencies) from
//! traces.
//!
//! The Dynacache solver and LookAhead need, for every queue, the hit-rate
//! curve and the fraction of GETs it receives (paper Equation 1). This module
//! derives them from a trace by running per-slab-class stack-distance
//! trackers over the GET stream — exactly what the paper did with the
//! week-long Memcachier trace.

use cache_core::{CacheQueue, ClassId, SlabConfig};
use profiler::{DynacacheSolver, QueueProfile, StackDistanceTracker};
use workloads::{Op, Trace};

/// Per-class profile of a single application's trace.
#[derive(Debug)]
pub struct ClassProfiles {
    /// One profile per slab class (classes with no GETs have frequency 0).
    pub profiles: Vec<QueueProfile>,
    /// Raw GET counts per class.
    pub gets_per_class: Vec<u64>,
}

impl ClassProfiles {
    /// Classes that actually received requests.
    pub fn active_classes(&self) -> Vec<ClassId> {
        self.gets_per_class
            .iter()
            .enumerate()
            .filter(|(_, &g)| g > 0)
            .map(|(i, _)| ClassId::new(i as u32))
            .collect()
    }
}

/// Profiles a single-application trace per slab class.
///
/// `max_curve_points` bounds the size of each hit-rate curve (the curves are
/// downsampled, mirroring the bucketing the paper uses to keep profiling
/// affordable).
pub fn profile_app_classes(
    trace: &Trace,
    slab: &SlabConfig,
    max_curve_points: usize,
) -> ClassProfiles {
    let num_classes = slab.num_classes();
    let mut trackers: Vec<StackDistanceTracker> = (0..num_classes)
        .map(|_| StackDistanceTracker::new())
        .collect();
    let mut gets = vec![0u64; num_classes];
    for request in trace.iter() {
        if request.op != Op::Get {
            continue;
        }
        let Some(class) = slab.class_for_size(request.size as u64) else {
            continue;
        };
        gets[class.index()] += 1;
        trackers[class.index()].record(request.key);
    }
    let total_gets: u64 = gets.iter().sum();
    let profiles = trackers
        .iter()
        .enumerate()
        .map(|(idx, tracker)| {
            let class = ClassId::new(idx as u32);
            let curve = tracker.to_curve().downsample(max_curve_points);
            let frequency = if total_gets == 0 {
                0.0
            } else {
                gets[idx] as f64 / total_gets as f64
            };
            let bytes_per_item = CacheQueue::<()>::charge(slab.chunk_size(class));
            QueueProfile::new(curve, frequency, bytes_per_item)
        })
        .collect();
    ClassProfiles {
        profiles,
        gets_per_class: gets,
    }
}

/// Runs the Dynacache solver on a trace's per-class profiles and returns the
/// per-class byte targets for the given reservation.
pub fn dynacache_plan(
    trace: &Trace,
    slab: &SlabConfig,
    reserved_bytes: u64,
    step_bytes: u64,
) -> Vec<u64> {
    let profiles = profile_app_classes(trace, slab, 512);
    let solver = DynacacheSolver::new(step_bytes);
    solver.allocate(&profiles.profiles, reserved_bytes).bytes
}

/// Builds an application-level profile (one queue per application) for
/// cross-application optimisation (Table 3). The curve is the application's
/// global-LRU hit-rate curve over items; `bytes_per_item` is the mean charge
/// of the application's items, which converts the byte budget into items.
pub fn profile_whole_app(trace: &Trace, max_curve_points: usize) -> QueueProfile {
    let mut tracker = StackDistanceTracker::new();
    let mut gets = 0u64;
    let mut total_size: u128 = 0;
    for request in trace.iter() {
        if request.op != Op::Get {
            continue;
        }
        gets += 1;
        total_size += CacheQueue::<()>::charge(request.size as u64) as u128;
        tracker.record(request.key);
    }
    let mean_charge = if gets == 0 {
        1
    } else {
        (total_size / gets as u128).max(1) as u64
    };
    QueueProfile::new(
        tracker.to_curve().downsample(max_curve_points),
        gets as f64,
        mean_charge,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{AppProfile, Phase, SizeDistribution};

    fn two_class_trace() -> Trace {
        // 70% of requests are small items over a large universe (needs
        // memory), 30% are large items over a tiny universe (does not).
        let profile = AppProfile::simple(
            1,
            "profiling",
            1.0,
            4 << 20,
            Phase {
                fraction: 1.0,
                popularity: workloads::KeyPopularity::Zipf {
                    num_keys: 20_000,
                    exponent: 0.9,
                },
                sizes: SizeDistribution::Mixture(vec![
                    (0.7, SizeDistribution::Fixed(100)),
                    (0.3, SizeDistribution::Fixed(4_000)),
                ]),
                scan_fraction: 0.0,
                scan_length: 0,
                key_offset: 0,
            },
        )
        .with_get_fraction(1.0);
        Trace::from_requests(profile.generate(60_000, 3_600, 3))
    }

    #[test]
    fn frequencies_sum_to_one_over_active_classes() {
        let trace = two_class_trace();
        let slab = SlabConfig::default();
        let profiles = profile_app_classes(&trace, &slab, 256);
        let total_freq: f64 = profiles.profiles.iter().map(|p| p.frequency).sum();
        assert!((total_freq - 1.0).abs() < 1e-9);
        let active = profiles.active_classes();
        assert_eq!(active.len(), 2, "two size groups -> two active classes");
        let gets_total: u64 = profiles.gets_per_class.iter().sum();
        assert_eq!(gets_total, trace.summary().gets);
    }

    #[test]
    fn curves_are_monotone_and_bounded() {
        let trace = two_class_trace();
        let slab = SlabConfig::default();
        let profiles = profile_app_classes(&trace, &slab, 128);
        for p in &profiles.profiles {
            let points = p.curve.points();
            assert!(points.len() <= 128);
            for w in points.windows(2) {
                assert!(w[0].1 <= w[1].1 + 1e-12);
            }
            assert!(p.curve.max_hit_rate() <= 1.0);
        }
    }

    #[test]
    fn dynacache_plan_prefers_the_popular_small_class() {
        let trace = two_class_trace();
        let slab = SlabConfig::default();
        let plan = dynacache_plan(&trace, &slab, 2 << 20, 64 << 10);
        let small_class = slab.class_for_size(100).unwrap().index();
        let large_class = slab.class_for_size(4_000).unwrap().index();
        assert_eq!(plan.iter().sum::<u64>(), 2 << 20);
        assert!(plan[small_class] > plan[large_class], "plan = {plan:?}");
    }

    #[test]
    fn whole_app_profile_reflects_request_volume() {
        let trace = two_class_trace();
        let profile = profile_whole_app(&trace, 256);
        assert!((profile.frequency - trace.summary().gets as f64).abs() < 1e-9);
        assert!(profile.bytes_per_item > 100);
        assert!(profile.curve.max_hit_rate() > 0.3);
    }

    #[test]
    fn empty_trace_profiles_are_harmless() {
        let trace = Trace::new();
        let slab = SlabConfig::default();
        let profiles = profile_app_classes(&trace, &slab, 64);
        assert!(profiles.active_classes().is_empty());
        assert!(profiles.profiles.iter().all(|p| p.frequency == 0.0));
        let whole = profile_whole_app(&trace, 64);
        assert_eq!(whole.frequency, 0.0);
    }
}
