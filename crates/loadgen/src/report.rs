//! Machine-readable run reports.
//!
//! Every loadgen run emits one JSON document (schema
//! `cliffhanger-loadgen/v1`) so results can be diffed across PRs — the same
//! trajectory the repo's `BENCH_*.json` files follow. A shard sweep emits a
//! `cliffhanger-loadgen-sweep/v1` document embedding one run report per
//! shard count.

use crate::telemetry::LatencySummary;
use serde::{Deserialize, Serialize};
use serde_json::Value;

/// Report of a single load-generation run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LoadReport {
    /// Schema tag: `cliffhanger-loadgen/v1`.
    pub schema: String,
    /// `closed` or `open`.
    pub mode: String,
    /// Target server address.
    pub addr: String,
    /// Worker threads / TCP connections.
    pub connections: u64,
    /// Requests per pipelined batch (1 = strict request/response).
    pub pipeline: u64,
    /// Open-loop target rate in requests/sec (0 for closed-loop).
    pub target_rps: f64,
    /// Requests completed in the measured window.
    pub requests: u64,
    /// Untimed warm-up requests issued before the window.
    pub warmup_requests: u64,
    /// Wall-clock seconds of the measured window.
    pub elapsed_secs: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// GET requests completed.
    pub gets: u64,
    /// GETs answered with a value.
    pub get_hits: u64,
    /// GET hit rate (0 when no GETs were issued).
    pub hit_rate: f64,
    /// SET requests completed (demand fills included).
    pub sets: u64,
    /// Demand-fill SETs among `sets` (`--fill-on-miss`): in closed loop
    /// they ride in the next pipelined batch; in open loop each fill
    /// occupies the next scheduled arrival slot, so its latency is charged
    /// against the schedule exactly like a generated request
    /// (coordinated-omission correct).
    pub fills: u64,
    /// SETs the server did not store, plus protocol-level surprises.
    pub errors: u64,
    /// Latency over every request.
    pub latency: LatencySummary,
    /// Latency of GETs alone.
    pub get_latency: LatencySummary,
    /// Latency of SETs alone (demand fills included).
    pub set_latency: LatencySummary,
    /// Latency of demand fills alone (empty unless `--fill-on-miss`).
    pub fill_latency: LatencySummary,
    /// Workload knobs, echoed for reproducibility.
    pub workload: WorkloadEcho,
    /// Server-side counters (present when the run self-hosted the server).
    pub server: Option<ServerEcho>,
    /// The server's own telemetry document, scraped over the wire with
    /// `stats json` after the measured window closes: the verbatim
    /// `cliffhanger-stats/v1` tree, carrying per-loop service-time
    /// histograms, the slow-op count and the control-plane journal. Present
    /// when the run self-hosted the server. (Pre-PR7 reports lack the
    /// field; same untyped-reader caveat as `tenants`.)
    pub server_stats: Option<Value>,
    /// Per-tenant breakdowns of a multi-tenant run (empty for single-tenant
    /// runs; pre-PR4 reports lack the field, and every consumer of committed
    /// baselines reads them untyped, so those stay readable).
    pub tenants: Vec<TenantSection>,
}

/// One tenant's slice of a multi-tenant run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TenantSection {
    /// The application name (`default` for the implicit tenant).
    pub tenant: String,
    /// Connections driving this tenant.
    pub connections: u64,
    /// Requests this tenant completed in the measured window.
    pub requests: u64,
    /// GET requests completed.
    pub gets: u64,
    /// GETs answered with a value.
    pub get_hits: u64,
    /// GET hit rate (0 when no GETs were issued).
    pub hit_rate: f64,
    /// SET requests completed (demand fills included).
    pub sets: u64,
    /// Demand-fill SETs among `sets` (see [`LoadReport::fills`]).
    pub fills: u64,
    /// SETs not stored plus protocol-level surprises.
    pub errors: u64,
    /// Latency over every request of this tenant.
    pub latency: LatencySummary,
    /// Latency of this tenant's GETs alone.
    pub get_latency: LatencySummary,
    /// Latency of this tenant's SETs alone (demand fills included).
    pub set_latency: LatencySummary,
    /// Latency of this tenant's demand fills alone.
    pub fill_latency: LatencySummary,
    /// The tenant's workload knobs, echoed for reproducibility.
    pub workload: WorkloadEcho,
    /// The tenant's server-side byte budget at the end of the run (0 unless
    /// self-hosted).
    pub budget_bytes: u64,
    /// The tenant's cumulative shadow-queue hits (0 unless self-hosted).
    pub shadow_hits: u64,
    /// Evictions charged to this tenant (0 unless self-hosted).
    pub evictions: u64,
}

/// The workload parameters a report was generated with.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct WorkloadEcho {
    /// Popularity model (`zipf:<exponent>`, `uniform`, `hotset`).
    pub keys: String,
    /// Key-universe size.
    pub num_keys: u64,
    /// Fraction of GETs.
    pub get_fraction: f64,
    /// Size model description.
    pub sizes: String,
    /// Base seed.
    pub seed: u64,
}

/// Server-side facts for self-hosted runs.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ServerEcho {
    /// Number of backend shards.
    pub shards: u64,
    /// Cache budget in bytes.
    pub total_bytes: u64,
    /// Allocator mode (`default`, `hillclimbing`, `cliffhanger`).
    pub allocator: String,
    /// Server worker threads.
    pub workers: u64,
    /// Evictions observed during the run.
    pub evictions: u64,
    /// Whether cross-shard rebalancing was active. (Pre-PR3 reports lack
    /// the `rebalance_*` fields; the perf gate reads reports untyped, so
    /// the committed baselines stay readable.)
    pub rebalance_enabled: bool,
    /// Rebalancing rounds the server ran during the load.
    pub rebalance_runs: u64,
    /// Budget transfers applied between shards.
    pub rebalance_transfers: u64,
    /// Bytes of budget moved between shards.
    pub rebalance_bytes_moved: u64,
    /// Number of tenants the server hosted (1 for single-tenant).
    pub tenant_count: u64,
    /// Whether cross-tenant arbitration was active. (Pre-PR4 reports lack
    /// the `tenant_*`/`arbiter_*` fields; same untyped-reader caveat as the
    /// rebalance fields above.)
    pub arbiter_enabled: bool,
    /// Arbitration rounds the server ran during the load.
    pub arbiter_runs: u64,
    /// Budget transfers applied between tenants.
    pub arbiter_transfers: u64,
    /// Bytes of budget moved between tenants.
    pub arbiter_bytes_moved: u64,
    /// Event loops serving the run — the shared-nothing plane's shard
    /// owners. (Pre-PR6 reports lack the `event_loops`/`plane_*`/
    /// `shard_owner_loops` fields; same untyped-reader caveat as above.)
    pub event_loops: u64,
    /// Data ops executed directly on the loop owning both the connection
    /// and the key's shard (the zero-lock fast path).
    pub plane_local_ops: u64,
    /// Data ops forwarded to the owning loop as cross-loop messages.
    pub plane_remote_ops: u64,
    /// Admin commands (`stats`, `flush_all`, `app_create`, `app_list`)
    /// served by the control thread during the run.
    pub plane_admin_msgs: u64,
    /// The owning event loop of each shard, indexed by shard
    /// (`owner(shard) = shard % event_loops`).
    pub shard_owner_loops: Vec<u64>,
    /// Connections the idle reaper closed during the run. (Pre-PR7 reports
    /// lack the `idle_closed_connections`/`slow_ops` fields; same
    /// untyped-reader caveat as above.)
    pub idle_closed_connections: u64,
    /// Ops that exceeded the server's slow-op threshold (0 when the
    /// threshold is disabled).
    pub slow_ops: u64,
    /// Whether hot-key detection and per-loop replication were active
    /// (`--hot-key-promote`). These fields are sourced from the scraped
    /// `stats json` document — the legacy text `stats` key set is pinned
    /// and never grows. (Pre-PR10 reports lack the `hot_key_*` fields;
    /// same untyped-reader caveat as above.)
    pub hot_key_enabled: bool,
    /// Keys the control thread promoted into per-loop replica caches.
    pub hot_key_promotions: u64,
    /// Promoted keys demoted back out (cooled or displaced).
    pub hot_key_demotions: u64,
    /// GETs served from a local replica instead of a cross-loop forward.
    pub hot_key_replica_hits: u64,
}

/// One point of a shard sweep.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Shard count of this point.
    pub shards: u64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Throughput relative to the first (baseline) point.
    pub speedup_vs_baseline: f64,
    /// GET hit rate.
    pub hit_rate: f64,
    /// p99 latency in microseconds.
    pub p99_us: f64,
    /// Full report for the point.
    pub report: LoadReport,
}

/// Report of a shard sweep (schema `cliffhanger-loadgen-sweep/v1`).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SweepReport {
    /// Schema tag: `cliffhanger-loadgen-sweep/v1`.
    pub schema: String,
    /// One point per shard count, in sweep order.
    pub points: Vec<SweepPoint>,
}

/// Schema tag for single-run reports.
pub const LOAD_SCHEMA: &str = "cliffhanger-loadgen/v1";
/// Schema tag for sweep reports.
pub const SWEEP_SCHEMA: &str = "cliffhanger-loadgen-sweep/v1";

impl LoadReport {
    /// Serialises to compact JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report serialisation cannot fail")
    }
}

impl SweepReport {
    /// Serialises to compact JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report serialisation cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_json() {
        let report = LoadReport {
            schema: LOAD_SCHEMA.to_string(),
            mode: "closed".to_string(),
            addr: "127.0.0.1:11211".to_string(),
            connections: 4,
            pipeline: 16,
            requests: 30_000,
            elapsed_secs: 1.5,
            throughput_rps: 20_000.0,
            gets: 27_000,
            get_hits: 20_000,
            hit_rate: 20_000.0 / 27_000.0,
            sets: 3_000,
            latency: LatencySummary {
                count: 30_000,
                p50_us: 100.0,
                p99_us: 900.0,
                p999_us: 2_000.0,
                ..LatencySummary::default()
            },
            ..LoadReport::default()
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\":\"cliffhanger-loadgen/v1\""));
        let back: LoadReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.requests, 30_000);
        assert_eq!(back.latency.p99_us, 900.0);
        assert!(back.server.is_none());
    }

    #[test]
    fn sweep_report_round_trips() {
        let sweep = SweepReport {
            schema: SWEEP_SCHEMA.to_string(),
            points: vec![
                SweepPoint {
                    shards: 1,
                    throughput_rps: 10_000.0,
                    speedup_vs_baseline: 1.0,
                    ..SweepPoint::default()
                },
                SweepPoint {
                    shards: 4,
                    throughput_rps: 25_000.0,
                    speedup_vs_baseline: 2.5,
                    ..SweepPoint::default()
                },
            ],
        };
        let back: SweepReport = serde_json::from_str(&sweep.to_json()).unwrap();
        assert_eq!(back.points.len(), 2);
        assert_eq!(back.points[1].shards, 4);
        assert_eq!(back.points[1].speedup_vs_baseline, 2.5);
    }
}
