//! The per-(shard, tenant) cache engine and the key-routing arithmetic,
//! shared by the two backends:
//!
//! * [`crate::backend::SharedCache`] — the embedded, lock-per-engine
//!   backend used by tests, benches and library consumers;
//! * the server's shared-nothing data plane (`crate::plane`) — where each
//!   event loop *owns* its engines outright and no lock exists at all.
//!
//! Keeping the engine operations (exact-match lookup semantics, charge
//! accounting, budget grow/shrink) and the routing function in one place
//! guarantees the two backends cannot drift: a key stores the same bytes,
//! charges the same size and routes to the same shard no matter which
//! front end drives it.

use crate::backend::{BackendConfig, BackendMode};
use bytes::Bytes;
use cache_core::key::mix64;
use cache_core::store::AllocationMode;
use cache_core::{hash_bytes, CacheStats, Key, PolicyKind, SlabCache, SlabCacheConfig};
use cliffhanger::{Cliffhanger, CliffhangerConfig, EventSink};
use std::sync::Arc;

/// A value as stored by the server.
#[derive(Clone, Debug)]
pub(crate) struct StoredValue {
    /// The full byte-string key (for exact-match verification).
    pub(crate) key: Bytes,
    /// Client flags.
    pub(crate) flags: u32,
    /// The payload.
    pub(crate) data: Bytes,
}

impl StoredValue {
    pub(crate) fn new(key: &[u8], flags: u32, data: Bytes) -> StoredValue {
        StoredValue {
            key: Bytes::copy_from_slice(key),
            flags,
            data,
        }
    }
}

/// The bytes an item is charged against its engine's budget.
pub(crate) fn charge_size(key: &[u8], data: &[u8]) -> u64 {
    (key.len() + data.len()) as u64
}

/// Routes a byte-string key of one tenant to its shard index and 64-bit
/// cache key.
///
/// The shard selector re-mixes the FNV hash so that shard membership is
/// decorrelated from the bits the per-shard engines use; non-default
/// tenants fold a per-tenant salt in (the backend-side form of key
/// prefixing) so their key populations spread independently, while the
/// default tenant routes exactly as the single-tenant server did.
pub(crate) fn route_key(tenant: usize, key: &[u8], shards: usize) -> (usize, Key) {
    let hash = hash_bytes(key);
    let salt = if tenant == 0 { 0 } else { mix64(tenant as u64) };
    let index = (mix64(hash ^ salt) % shards as u64) as usize;
    (index, Key::new(hash))
}

/// Splits `total` into weight-proportional integer shares that sum exactly
/// to `total` (the remainder lands on the first share).
pub(crate) fn weighted_split(total: u64, weights: &[u64]) -> Vec<u64> {
    let sum: u128 = weights.iter().map(|&w| w as u128).sum();
    let mut shares: Vec<u64> = weights
        .iter()
        .map(|&w| ((total as u128 * w as u128) / sum.max(1)) as u64)
        .collect();
    let assigned: u64 = shares.iter().sum();
    shares[0] += total - assigned;
    shares
}

/// Splits `total` into `parts` even integer shares summing exactly to
/// `total` (remainder on the first share).
pub(crate) fn even_split(total: u64, parts: usize) -> Vec<u64> {
    let share = total / parts as u64;
    let mut out = vec![share; parts];
    out[0] += total - share * parts as u64;
    out
}

/// One tenant's cache engine on one shard: a plain slab cache in
/// `Default` mode, a Cliffhanger-managed cache otherwise. The engine has
/// no lock of its own — synchronisation (a mutex in the embedded backend,
/// thread ownership in the data plane) is the caller's concern.
pub(crate) enum Engine {
    Plain(Box<SlabCache<StoredValue>>),
    Managed(Box<Cliffhanger<StoredValue>>),
}

impl Engine {
    /// Builds an engine of `config.mode` with a `engine_bytes` budget.
    pub(crate) fn build(config: &BackendConfig, engine_bytes: u64) -> Engine {
        match config.mode {
            BackendMode::Default => Engine::Plain(Box::new(SlabCache::new(SlabCacheConfig {
                slab: config.slab.clone(),
                total_bytes: engine_bytes,
                policy: PolicyKind::Lru,
                mode: AllocationMode::FirstComeFirstServe { page_size: 1 << 20 },
                shadow_bytes: 0,
                tail_region_items: 0,
            }))),
            BackendMode::HillClimbing | BackendMode::Cliffhanger => {
                let cfg = CliffhangerConfig {
                    slab: config.slab.clone(),
                    total_bytes: engine_bytes,
                    enable_hill_climbing: true,
                    enable_cliff_scaling: config.mode == BackendMode::Cliffhanger,
                    ..CliffhangerConfig::default()
                };
                Engine::Managed(Box::new(Cliffhanger::new(cfg)))
            }
        }
    }

    /// Installs a decision-event sink on a managed engine (the flight
    /// recorder hook); a plain slab cache makes no decisions to narrate.
    pub(crate) fn set_event_sink(&mut self, sink: Arc<dyn EventSink + Send + Sync>) {
        if let Engine::Managed(cache) = self {
            cache.set_event_sink(sink);
        }
    }

    pub(crate) fn value(&self, id: Key) -> Option<&StoredValue> {
        match self {
            Engine::Plain(cache) => cache.value(id),
            Engine::Managed(cache) => cache.value(id),
        }
    }

    /// Whether `key` is resident with an exact byte-string match.
    pub(crate) fn contains_exact(&self, id: Key, key: &[u8]) -> bool {
        self.value(id).map(|s| s.key == key).unwrap_or(false)
    }

    /// A wire-level GET: records the access (feeding the shadow queues in
    /// managed mode) and returns `(flags, data)` on an exact byte-string
    /// match. A 64-bit hash collision is a miss for the colliding key,
    /// never a wrong value.
    pub(crate) fn wire_get(&mut self, id: Key, key: &[u8]) -> Option<(u32, Bytes)> {
        let found = match self {
            Engine::Plain(cache) => {
                let hit = cache.get_untyped(id).result.hit;
                if hit {
                    cache.value(id).cloned()
                } else {
                    None
                }
            }
            Engine::Managed(cache) => {
                let (_, event) = cache.get_untyped(id);
                if event.hit {
                    cache.value(id).cloned()
                } else {
                    None
                }
            }
        };
        match found {
            Some(stored) if stored.key == key => Some((stored.flags, stored.data)),
            _ => None,
        }
    }

    /// A wire-level store: charges `key + data` bytes and admits the item.
    /// Returns `false` only if the item could not be admitted (e.g. larger
    /// than the largest slab class).
    pub(crate) fn wire_set(&mut self, id: Key, key: &[u8], flags: u32, data: Bytes) -> bool {
        let size = charge_size(key, &data);
        let stored = StoredValue::new(key, flags, data);
        self.set(id, size, stored)
    }

    pub(crate) fn set(&mut self, id: Key, size: u64, stored: StoredValue) -> bool {
        match self {
            Engine::Plain(cache) => cache
                .set(id, size, stored)
                .map(|(_, r)| r.admitted)
                .unwrap_or(false),
            Engine::Managed(cache) => cache
                .set(id, size, stored)
                .map(|(_, admitted)| admitted)
                .unwrap_or(false),
        }
    }

    /// Deletes `id`; returns whether it was present.
    pub(crate) fn delete(&mut self, id: Key) -> bool {
        match self {
            Engine::Plain(cache) => cache.delete(id),
            Engine::Managed(cache) => cache.delete(id),
        }
    }

    pub(crate) fn stats(&self) -> CacheStats {
        match self {
            Engine::Plain(cache) => cache.stats(),
            Engine::Managed(cache) => cache.stats(),
        }
    }

    /// Grows the engine's total budget (managed engines only; a plain slab
    /// cache has no dynamic-budget path and is never rebalanced).
    pub(crate) fn grow_total(&mut self, bytes: u64) {
        if let Engine::Managed(cache) = self {
            cache.grow_total(bytes);
        }
    }

    /// Releases `bytes` of the engine's budget, evicting as needed. Returns
    /// whether the release happened.
    pub(crate) fn shrink_total(&mut self, bytes: u64) -> bool {
        match self {
            Engine::Plain(_) => false,
            Engine::Managed(cache) => cache.shrink_total(bytes),
        }
    }

    pub(crate) fn used_bytes(&self) -> u64 {
        match self {
            Engine::Plain(cache) => cache.used_bytes(),
            Engine::Managed(cache) => cache.used_bytes(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            Engine::Plain(cache) => cache.len(),
            Engine::Managed(cache) => cache.len(),
        }
    }
}
