//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// The permitted length range of a generated collection.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        SizeRange {
            min: range.start,
            max: range.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange {
            min: len,
            max: len + 1,
        }
    }
}

/// Strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + rng.next_below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `Vec`s whose length falls in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
