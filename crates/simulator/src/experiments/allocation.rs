//! Allocation-baseline tables: Table 1 (per-slab misses under the default
//! scheme vs the Dynacache solver), Table 2 (slab classes vs a global LRU vs
//! the solver) and Table 3 (cross-application optimisation of the top five
//! applications).

use crate::engine::{replay_app, CacheSystem, ReplayOptions};
use crate::experiments::ExperimentContext;
use crate::profiles::{dynacache_plan, profile_app_classes, profile_whole_app};
use crate::report::Table;
use cache_core::PolicyKind;
use profiler::DynacacheSolver;

/// The solver step used throughout (1 MB, Memcached's page size, scaled down
/// for small test contexts).
fn solver_step(options: &ReplayOptions) -> u64 {
    (options.reserved_bytes / 64).clamp(16 << 10, 1 << 20)
}

/// Replays one application under the default scheme and under the Dynacache
/// solver's static plan; returns (default, dynacache) results.
pub fn default_vs_dynacache(
    ctx: &ExperimentContext,
    app_number: u32,
) -> (crate::engine::AppRunResult, crate::engine::AppRunResult) {
    let trace = ctx.trace(app_number);
    let options = ctx.options(app_number);
    let default = replay_app(trace, &CacheSystem::default_lru(), &options);
    let plan = dynacache_plan(
        trace,
        &options.slab,
        options.reserved_bytes,
        solver_step(&options),
    );
    let solved = replay_app(
        trace,
        &CacheSystem::StaticPlan {
            class_targets: plan,
            policy: PolicyKind::Lru,
        },
        &options,
    );
    (default, solved)
}

/// Table 1: per-slab-class GET share and share of misses for applications 4
/// and 6, under the default scheme and under the Dynacache solver.
pub fn table1_slab_misses(ctx: &ExperimentContext) -> Table {
    let mut table = Table::new(
        "Table 1: misses by slab class (default vs Dynacache solver)",
        &[
            "app",
            "slab class",
            "% GETs",
            "default % of misses",
            "Dynacache % of misses",
        ],
    );
    for app_number in [4u32, 6] {
        let options = ctx.options(app_number);
        let profiles = profile_app_classes(ctx.trace(app_number), &options.slab, 256);
        let (default, solved) = default_vs_dynacache(ctx, app_number);
        let total_gets: u64 = profiles.gets_per_class.iter().sum();
        let default_misses: u64 = default.class_stats.iter().map(|s| s.misses).sum();
        let solved_misses: u64 = solved.class_stats.iter().map(|s| s.misses).sum();
        for class in profiles.active_classes() {
            let idx = class.index();
            let get_share = profiles.gets_per_class[idx] as f64 / total_gets.max(1) as f64;
            if get_share < 0.005 {
                continue; // the paper only lists classes with visible traffic
            }
            let default_share = if default_misses == 0 {
                0.0
            } else {
                default.class_stats[idx].misses as f64 / default_misses as f64
            };
            let solved_share = if solved_misses == 0 {
                0.0
            } else {
                solved.class_stats[idx].misses as f64 / solved_misses as f64
            };
            table.push_row(vec![
                app_number.to_string(),
                idx.to_string(),
                Table::pct(get_share),
                Table::pct(default_share),
                Table::pct(solved_share),
            ]);
        }
        // A summary row per application: overall miss change.
        table.push_row(vec![
            app_number.to_string(),
            "total misses".to_string(),
            Table::pct(1.0),
            default_misses.to_string(),
            solved_misses.to_string(),
        ]);
    }
    table
}

/// Table 2: hit rates of applications 3–5 under the default slab scheme, a
/// global LRU (the log-structured-memory model) and the Dynacache solver.
pub fn table2_global_lru(ctx: &ExperimentContext) -> Table {
    let mut table = Table::new(
        "Table 2: slab classes vs log-structured (global LRU) vs Dynacache",
        &[
            "app",
            "default hit rate",
            "global LRU hit rate",
            "Dynacache hit rate",
        ],
    );
    for app_number in [3u32, 4, 5] {
        let trace = ctx.trace(app_number);
        let options = ctx.options(app_number);
        let (default, solved) = default_vs_dynacache(ctx, app_number);
        let global = replay_app(trace, &CacheSystem::GlobalLru, &options);
        table.push_row(vec![
            app_number.to_string(),
            Table::pct(default.hit_rate()),
            Table::pct(global.hit_rate()),
            Table::pct(solved.hit_rate()),
        ]);
    }
    table
}

/// Table 3: cross-application optimisation of the top five applications —
/// the Dynacache solver reassigns the five reservations to maximise the
/// overall hit rate; each application is then replayed under the default
/// scheme at its new reservation.
pub fn table3_cross_app(ctx: &ExperimentContext) -> Table {
    let apps = [1u32, 2, 3, 4, 5];
    let total_memory: u64 = apps.iter().map(|&a| ctx.app(a).reserved_bytes).sum();

    // Application-level profiles (one queue per application).
    let profiles: Vec<_> = apps
        .iter()
        .map(|&a| profile_whole_app(ctx.trace(a), 512))
        .collect();
    let step = (total_memory / 128).clamp(16 << 10, 1 << 20);
    let allocation = DynacacheSolver::new(step).allocate(&profiles, total_memory);

    let mut table = Table::new(
        "Table 3: cross-application optimisation of the top 5 applications",
        &[
            "app",
            "original memory %",
            "solver memory %",
            "original hit rate",
            "solver hit rate",
        ],
    );
    for (i, &app_number) in apps.iter().enumerate() {
        let trace = ctx.trace(app_number);
        let original_bytes = ctx.app(app_number).reserved_bytes;
        let solver_bytes = allocation.bytes_for(i).max(1);
        let original = replay_app(trace, &CacheSystem::default_lru(), &ctx.options(app_number));
        let mut new_options = ctx.options(app_number);
        new_options.reserved_bytes = solver_bytes;
        let optimised = replay_app(trace, &CacheSystem::default_lru(), &new_options);
        table.push_row(vec![
            app_number.to_string(),
            Table::pct(original_bytes as f64 / total_memory as f64),
            Table::pct(solver_bytes as f64 / total_memory as f64),
            Table::pct(original.hit_rate()),
            Table::pct(optimised.hit_rate()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_support::shared_quick_context;

    #[test]
    fn table1_reports_the_size_imbalanced_apps() {
        let ctx = shared_quick_context();
        let table = table1_slab_misses(ctx);
        assert!(table.rows.len() >= 4, "{table}");
        // Every app contributes at least one class row plus a summary row.
        assert!(table.rows.iter().any(|r| r[0] == "4"));
        assert!(table.rows.iter().any(|r| r[0] == "6"));
        // GET shares of the listed classes are percentages.
        for row in table.rows.iter().filter(|r| r[1] != "total misses") {
            assert!(row[2].ends_with('%'));
        }
    }

    #[test]
    fn table2_covers_three_apps_and_three_systems() {
        let ctx = shared_quick_context();
        let table = table2_global_lru(ctx);
        assert_eq!(table.rows.len(), 3);
        assert_eq!(table.headers.len(), 4);
        for row in &table.rows {
            for cell in &row[1..] {
                let value: f64 = cell.trim_end_matches('%').parse().unwrap();
                assert!((0.0..=100.0).contains(&value));
            }
        }
    }

    #[test]
    fn table3_conserves_memory_share() {
        let ctx = shared_quick_context();
        let table = table3_cross_app(ctx);
        assert_eq!(table.rows.len(), 5);
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        let original: f64 = table.rows.iter().map(|r| parse(&r[1])).sum();
        let solved: f64 = table.rows.iter().map(|r| parse(&r[2])).sum();
        assert!(
            (original - 100.0).abs() < 1.0,
            "original sums to {original}"
        );
        assert!((solved - 100.0).abs() < 2.0, "solved sums to {solved}");
    }
}
