//! The Mimir bucket approximation of stack distances.
//!
//! Mimir (Saemundsson et al., SoCC 2014) estimates stack distances in
//! O(N / B) by keeping B buckets of keys ordered by recency *of bucket*, not
//! of key: an access to a key in bucket `i` is assigned the average rank of
//! that bucket (the sum of the sizes of all newer buckets plus half its own),
//! the key moves to the newest bucket, and buckets age wholesale when the
//! newest one fills up. Dynacache uses this estimator because exact Mattson
//! profiling is too expensive on a cache server (paper §2.1); the paper also
//! notes it loses accuracy for curves spanning tens of thousands of items —
//! a property the tests below exhibit rather than hide.

use crate::curve::HitRateCurve;
use crate::stack_distance::StackDistanceHistogram;
use cache_core::Key;
use std::collections::{HashMap, HashSet, VecDeque};

/// Approximate stack-distance estimator with a fixed number of buckets.
#[derive(Debug)]
pub struct MimirEstimator {
    /// Buckets from newest (front) to oldest (back); each holds distinct keys.
    buckets: VecDeque<HashSet<Key>>,
    /// Which bucket (by stable id) each tracked key lives in.
    key_bucket: HashMap<Key, u64>,
    /// Stable id of the newest bucket; older buckets have smaller ids.
    newest_id: u64,
    /// Number of buckets (the paper's B; Dynacache used 100).
    num_buckets: usize,
    /// Maximum keys tracked overall; beyond this the oldest bucket is pruned.
    max_tracked: usize,
    histogram: StackDistanceHistogram,
}

impl MimirEstimator {
    /// Creates an estimator with `num_buckets` buckets (the paper used 100)
    /// tracking at most `max_tracked` distinct keys.
    pub fn new(num_buckets: usize, max_tracked: usize) -> Self {
        assert!(num_buckets >= 2, "at least two buckets are required");
        let mut buckets = VecDeque::with_capacity(num_buckets);
        buckets.push_front(HashSet::new());
        MimirEstimator {
            buckets,
            key_bucket: HashMap::new(),
            newest_id: 0,
            num_buckets,
            max_tracked: max_tracked.max(num_buckets),
            histogram: StackDistanceHistogram::new(),
        }
    }

    /// Default configuration: 100 buckets, one million tracked keys.
    pub fn with_default_buckets() -> Self {
        MimirEstimator::new(100, 1_000_000)
    }

    /// Records an access and returns the estimated stack distance
    /// (`None` for keys not currently tracked, i.e. cold or pruned).
    pub fn record(&mut self, key: Key) -> Option<usize> {
        let estimate = match self.key_bucket.get(&key).copied() {
            Some(bucket_id) => {
                let index = self.index_of(bucket_id);
                let mut rank = 0usize;
                for b in self.buckets.iter().take(index) {
                    rank += b.len();
                }
                let own = self.buckets[index].len();
                self.buckets[index].remove(&key);
                Some((rank + own.div_ceil(2)).max(1))
            }
            None => None,
        };
        match estimate {
            Some(d) => self.histogram.record(d),
            None => self.histogram.record_cold(),
        }
        // Move (or admit) the key into the newest bucket.
        self.buckets[0].insert(key);
        self.key_bucket.insert(key, self.newest_id);
        self.maybe_age();
        self.maybe_prune();
        estimate
    }

    fn index_of(&self, bucket_id: u64) -> usize {
        // newest_id corresponds to index 0; ids decrease towards the back.
        (self.newest_id - bucket_id) as usize
    }

    /// Ages buckets when the newest one grows past its share of the tracked
    /// population: a fresh bucket is opened and, if the bucket count exceeds
    /// B, the two oldest buckets are merged.
    fn maybe_age(&mut self) {
        let per_bucket = (self.key_bucket.len() / self.num_buckets).max(16);
        if self.buckets[0].len() <= per_bucket {
            return;
        }
        self.newest_id += 1;
        self.buckets.push_front(HashSet::new());
        if self.buckets.len() > self.num_buckets {
            let oldest = self.buckets.pop_back().expect("len > num_buckets >= 2");
            let merged_into = self.buckets.len() - 1;
            let merged_id = self.newest_id - merged_into as u64;
            for key in oldest {
                self.buckets[merged_into].insert(key);
                self.key_bucket.insert(key, merged_id);
            }
        }
    }

    /// Drops keys from the oldest bucket when the tracked population exceeds
    /// the configured bound.
    fn maybe_prune(&mut self) {
        while self.key_bucket.len() > self.max_tracked {
            let Some(oldest) = self.buckets.back_mut() else {
                return;
            };
            if oldest.is_empty() {
                if self.buckets.len() == 1 {
                    return;
                }
                self.buckets.pop_back();
                continue;
            }
            // Drain the oldest bucket.
            let keys: Vec<Key> = oldest.drain().collect();
            for key in keys {
                self.key_bucket.remove(&key);
            }
        }
    }

    /// Number of distinct keys currently tracked.
    pub fn tracked_keys(&self) -> usize {
        self.key_bucket.len()
    }

    /// Number of buckets currently in use.
    pub fn active_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// The accumulated (approximate) stack-distance histogram.
    pub fn histogram(&self) -> &StackDistanceHistogram {
        &self.histogram
    }

    /// The approximate hit-rate curve implied by the accesses seen so far.
    pub fn to_curve(&self) -> HitRateCurve {
        self.histogram.to_curve()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack_distance::StackDistanceTracker;
    use rand::distributions::Distribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key(i: u64) -> Key {
        Key::new(i)
    }

    #[test]
    fn immediate_reuse_estimates_small_distances() {
        let mut m = MimirEstimator::new(10, 10_000);
        m.record(key(1));
        let d = m.record(key(1)).unwrap();
        assert!(
            d <= 2,
            "immediate reuse must estimate a tiny distance, got {d}"
        );
    }

    #[test]
    fn cold_keys_are_reported_as_cold() {
        let mut m = MimirEstimator::new(10, 10_000);
        assert_eq!(m.record(key(1)), None);
        assert_eq!(m.record(key(2)), None);
        assert_eq!(m.histogram().cold(), 2);
    }

    #[test]
    fn distant_reuse_estimates_larger_distances() {
        let mut m = MimirEstimator::new(20, 100_000);
        m.record(key(0));
        for i in 1..2_000u64 {
            m.record(key(i));
        }
        let near = {
            let mut m2 = MimirEstimator::new(20, 100_000);
            m2.record(key(0));
            m2.record(key(1));
            m2.record(key(0)).unwrap()
        };
        let far = m.record(key(0)).unwrap();
        assert!(
            far > near * 10,
            "reuse across 2000 keys ({far}) must estimate far larger than \
             immediate reuse ({near})"
        );
        assert!(
            far >= 1_000,
            "estimate should be in the right ballpark, got {far}"
        );
    }

    #[test]
    fn curve_tracks_exact_curve_on_zipf_trace() {
        let mut rng = StdRng::seed_from_u64(42);
        let zipf = rand::distributions::WeightedIndex::new(
            (1..=500u64).map(|r| 1.0 / r as f64).collect::<Vec<_>>(),
        )
        .unwrap();
        let mut exact = StackDistanceTracker::new();
        let mut approx = MimirEstimator::new(50, 100_000);
        for _ in 0..30_000 {
            let k = key(zipf.sample(&mut rng) as u64);
            exact.record(k);
            approx.record(k);
        }
        let exact_curve = exact.to_curve();
        let approx_curve = approx.to_curve();
        // Compare hit rates at several cache sizes; the bucket estimator is
        // allowed a modest absolute error.
        for probe in [25u64, 50, 100, 250, 500] {
            let e = exact_curve.hit_rate_at(probe);
            let a = approx_curve.hit_rate_at(probe);
            assert!(
                (e - a).abs() < 0.15,
                "at {probe} items exact={e:.3} approx={a:.3}"
            );
        }
    }

    #[test]
    fn bucket_count_is_bounded() {
        let mut m = MimirEstimator::new(8, 100_000);
        for i in 0..10_000u64 {
            m.record(key(i % 3_000));
        }
        assert!(m.active_buckets() <= 8);
    }

    #[test]
    fn tracked_population_is_bounded() {
        let mut m = MimirEstimator::new(8, 1_000);
        for i in 0..50_000u64 {
            m.record(key(i));
        }
        assert!(
            m.tracked_keys() <= 1_100,
            "tracked {} keys",
            m.tracked_keys()
        );
    }

    #[test]
    #[should_panic(expected = "at least two buckets")]
    fn one_bucket_rejected() {
        let _ = MimirEstimator::new(1, 100);
    }
}
