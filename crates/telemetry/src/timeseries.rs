//! Fixed-size time series of cumulative per-tenant counters.
//!
//! The `stats` document is a point-in-time snapshot: totals since boot. A
//! single scrape therefore shows no *trajectory* — was the hit rate rising
//! or collapsing when you looked? [`TimeSeries`] fixes that with the same
//! shared-nothing discipline as the rest of the telemetry plane: each event
//! loop keeps its own bounded ring of interval buckets, records the current
//! cumulative counters for its owned shards into the bucket for "now" once
//! per reactor pass (overwriting within the interval — the *latest* sample
//! wins), and the control thread merges per-loop rings at snapshot time with
//! [`TimeSeries::merged`]. Differencing adjacent merged buckets turns the
//! cumulative counters into windowed rates ([`TimeSeries::rates`]) without
//! the loops ever sharing state or the hot path taking a clock reading.
//!
//! Buckets are indexed by `now_us / interval_us`, so rings recorded on
//! different loops (whose passes are not synchronised) line up by
//! construction as long as they share a time base — the plane passes every
//! loop the same boot instant.

use serde::{Deserialize, Serialize};

/// One cumulative counter sample for one column (tenant).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeriesSample {
    /// Cumulative GETs.
    pub gets: u64,
    /// Cumulative GET hits.
    pub hits: u64,
    /// Cumulative evictions.
    pub evictions: u64,
}

impl SeriesSample {
    fn add(&mut self, other: &SeriesSample) {
        self.gets += other.gets;
        self.hits += other.hits;
        self.evictions += other.evictions;
    }
}

/// One interval bucket: the latest cumulative sample per column recorded
/// during that interval.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeriesBucket {
    /// Bucket index: `sample_time_us / interval_us`.
    pub index: u64,
    /// Latest cumulative sample per column (indexed by column id; a column
    /// is a tenant slot in the plane).
    pub columns: Vec<SeriesSample>,
}

/// Windowed rates between two adjacent buckets, per column.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SeriesRates {
    /// Bucket index of the *end* of the window.
    pub index: u64,
    /// Window length in seconds (whole intervals; > 1 when buckets were
    /// skipped because no pass sampled during an interval).
    pub seconds: f64,
    /// Per-column rates over the window.
    pub columns: Vec<ColumnRates>,
}

/// Windowed rates for one column (tenant).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ColumnRates {
    /// GET operations per second over the window.
    pub ops_per_sec: f64,
    /// Hit rate over the window (`None` when the window saw no GETs — kept
    /// an Option so JSON renders `null`, never NaN).
    pub hit_rate: Option<f64>,
    /// Evictions per second over the window.
    pub evictions_per_sec: f64,
}

/// A bounded ring of cumulative-counter buckets (see module docs).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Bucket width in microseconds.
    interval_us: u64,
    /// Maximum retained buckets; older buckets are dropped from the front.
    capacity: usize,
    /// Buckets in strictly increasing `index` order (not necessarily
    /// contiguous — an interval nobody sampled has no bucket).
    buckets: Vec<SeriesBucket>,
}

impl TimeSeries {
    /// An empty series of up to `capacity` buckets of `interval_us` each.
    pub fn new(interval_us: u64, capacity: usize) -> TimeSeries {
        assert!(interval_us > 0, "interval must be nonzero");
        assert!(capacity > 0, "capacity must be nonzero");
        TimeSeries {
            interval_us,
            capacity,
            buckets: Vec::new(),
        }
    }

    /// Bucket width in microseconds.
    pub fn interval_us(&self) -> u64 {
        self.interval_us
    }

    /// The retained buckets, oldest first.
    pub fn buckets(&self) -> &[SeriesBucket] {
        &self.buckets
    }

    /// Records the current cumulative `columns` at time `now_us` (micros
    /// since the shared time base). Within one interval the latest sample
    /// overwrites; a new interval pushes a bucket and drops the oldest past
    /// `capacity`. Out-of-order samples older than the newest bucket are
    /// dropped (can only happen across loops, and merged() re-aligns those).
    pub fn record(&mut self, now_us: u64, columns: Vec<SeriesSample>) {
        let index = now_us / self.interval_us;
        match self.buckets.last_mut() {
            Some(last) if last.index == index => last.columns = columns,
            Some(last) if last.index > index => {}
            _ => {
                self.buckets.push(SeriesBucket { index, columns });
                if self.buckets.len() > self.capacity {
                    let excess = self.buckets.len() - self.capacity;
                    self.buckets.drain(..excess);
                }
            }
        }
    }

    /// Merges per-loop rings into one series by bucket index, summing each
    /// column across loops. A loop with no bucket at some index contributes
    /// its latest *earlier* sample (counters are cumulative, so the value
    /// carries forward); a loop with no earlier sample contributes zero.
    pub fn merged(parts: &[&TimeSeries]) -> TimeSeries {
        let interval_us = parts
            .iter()
            .map(|p| p.interval_us)
            .max()
            .unwrap_or(1_000_000);
        let capacity = parts.iter().map(|p| p.capacity).max().unwrap_or(1);
        let mut indices: Vec<u64> = parts
            .iter()
            .flat_map(|p| p.buckets.iter().map(|b| b.index))
            .collect();
        indices.sort_unstable();
        indices.dedup();
        // Keep only the newest `capacity` merged buckets.
        if indices.len() > capacity {
            indices.drain(..indices.len() - capacity);
        }
        let mut buckets = Vec::with_capacity(indices.len());
        for &index in &indices {
            let mut columns: Vec<SeriesSample> = Vec::new();
            for part in parts {
                // The latest bucket at-or-before `index`: cumulative
                // counters carry forward over intervals the loop skipped.
                let carried = part
                    .buckets
                    .iter()
                    .rev()
                    .find(|b| b.index <= index)
                    .map(|b| &b.columns);
                if let Some(cols) = carried {
                    if columns.len() < cols.len() {
                        columns.resize_with(cols.len(), SeriesSample::default);
                    }
                    for (dst, src) in columns.iter_mut().zip(cols.iter()) {
                        dst.add(src);
                    }
                }
            }
            buckets.push(SeriesBucket { index, columns });
        }
        TimeSeries {
            interval_us,
            capacity,
            buckets,
        }
    }

    /// Differences adjacent buckets into windowed per-column rates, oldest
    /// window first. `n` buckets yield `n - 1` windows. Counters are
    /// cumulative, so a counter that appears to *decrease* across buckets
    /// (a tenant slot reset) clamps to zero rather than going negative.
    pub fn rates(&self) -> Vec<SeriesRates> {
        let mut out = Vec::new();
        for pair in self.buckets.windows(2) {
            let (prev, next) = (&pair[0], &pair[1]);
            let seconds = ((next.index - prev.index) * self.interval_us) as f64 / 1_000_000.0;
            let mut columns = Vec::with_capacity(next.columns.len());
            for (slot, sample) in next.columns.iter().enumerate() {
                let base = prev.columns.get(slot).copied().unwrap_or_default();
                let gets = sample.gets.saturating_sub(base.gets);
                let hits = sample.hits.saturating_sub(base.hits);
                let evictions = sample.evictions.saturating_sub(base.evictions);
                columns.push(ColumnRates {
                    ops_per_sec: gets as f64 / seconds,
                    hit_rate: (gets > 0).then(|| hits as f64 / gets as f64),
                    evictions_per_sec: evictions as f64 / seconds,
                });
            }
            out.push(SeriesRates {
                index: next.index,
                seconds,
                columns,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(gets: u64, hits: u64, evictions: u64) -> SeriesSample {
        SeriesSample {
            gets,
            hits,
            evictions,
        }
    }

    #[test]
    fn latest_sample_within_an_interval_wins() {
        let mut ts = TimeSeries::new(1_000_000, 4);
        ts.record(100, vec![sample(1, 1, 0)]);
        ts.record(900_000, vec![sample(5, 3, 1)]);
        assert_eq!(ts.buckets().len(), 1);
        assert_eq!(ts.buckets()[0].columns[0], sample(5, 3, 1));
        ts.record(1_100_000, vec![sample(9, 5, 1)]);
        assert_eq!(ts.buckets().len(), 2);
        assert_eq!(ts.buckets()[1].index, 1);
    }

    #[test]
    fn ring_drops_oldest_past_capacity() {
        let mut ts = TimeSeries::new(1_000_000, 3);
        for i in 0..5u64 {
            ts.record(i * 1_000_000, vec![sample(i, i, 0)]);
        }
        let indices: Vec<u64> = ts.buckets().iter().map(|b| b.index).collect();
        assert_eq!(indices, vec![2, 3, 4]);
    }

    #[test]
    fn out_of_order_samples_are_dropped() {
        let mut ts = TimeSeries::new(1_000_000, 4);
        ts.record(5_000_000, vec![sample(10, 5, 0)]);
        ts.record(1_000_000, vec![sample(1, 1, 0)]);
        assert_eq!(ts.buckets().len(), 1);
        assert_eq!(ts.buckets()[0].index, 5);
    }

    #[test]
    fn rates_difference_adjacent_buckets() {
        let mut ts = TimeSeries::new(1_000_000, 8);
        ts.record(0, vec![sample(100, 50, 0)]);
        ts.record(1_000_000, vec![sample(300, 150, 10)]);
        // Interval 2 skipped entirely; bucket 3 spans a 2-second window.
        ts.record(3_000_000, vec![sample(500, 150, 10)]);
        let rates = ts.rates();
        assert_eq!(rates.len(), 2);
        assert_eq!(rates[0].index, 1);
        assert_eq!(rates[0].seconds, 1.0);
        assert_eq!(rates[0].columns[0].ops_per_sec, 200.0);
        assert_eq!(rates[0].columns[0].hit_rate, Some(0.5));
        assert_eq!(rates[0].columns[0].evictions_per_sec, 10.0);
        assert_eq!(rates[1].seconds, 2.0);
        assert_eq!(rates[1].columns[0].ops_per_sec, 100.0);
        assert_eq!(rates[1].columns[0].hit_rate, Some(0.0));
        assert_eq!(rates[1].columns[0].evictions_per_sec, 0.0);
    }

    #[test]
    fn windows_without_gets_render_null_hit_rate_not_nan() {
        let mut ts = TimeSeries::new(1_000_000, 4);
        ts.record(0, vec![sample(7, 3, 0)]);
        ts.record(1_000_000, vec![sample(7, 3, 2)]);
        let rates = ts.rates();
        assert_eq!(rates[0].columns[0].hit_rate, None);
        let json = serde_json::to_string(&rates).unwrap();
        assert!(json.contains("\"hit_rate\":null"), "{json}");
    }

    #[test]
    fn merged_sums_columns_and_carries_forward_missing_buckets() {
        // Loop A samples every interval; loop B misses interval 1 (its
        // cumulative counters carry forward) and has a second tenant.
        let mut a = TimeSeries::new(1_000_000, 8);
        a.record(0, vec![sample(10, 5, 0)]);
        a.record(1_000_000, vec![sample(20, 10, 1)]);
        a.record(2_000_000, vec![sample(30, 15, 1)]);
        let mut b = TimeSeries::new(1_000_000, 8);
        b.record(0, vec![sample(100, 50, 0), sample(1, 0, 0)]);
        b.record(2_000_000, vec![sample(300, 150, 4), sample(3, 1, 0)]);

        let merged = TimeSeries::merged(&[&a, &b]);
        let indices: Vec<u64> = merged.buckets().iter().map(|x| x.index).collect();
        assert_eq!(indices, vec![0, 1, 2]);
        assert_eq!(merged.buckets()[0].columns[0], sample(110, 55, 0));
        // Interval 1: B carries its interval-0 sample forward.
        assert_eq!(merged.buckets()[1].columns[0], sample(120, 60, 1));
        assert_eq!(merged.buckets()[1].columns[1], sample(1, 0, 0));
        assert_eq!(merged.buckets()[2].columns[0], sample(330, 165, 5));
        assert_eq!(merged.buckets()[2].columns[1], sample(3, 1, 0));

        // Rates over the merged ring are well-formed.
        let rates = merged.rates();
        assert_eq!(rates.len(), 2);
        assert_eq!(rates[0].columns[0].ops_per_sec, 10.0);
        assert_eq!(rates[1].columns[0].ops_per_sec, 210.0);
    }

    #[test]
    fn merged_respects_capacity() {
        let mut a = TimeSeries::new(1_000_000, 3);
        for i in 0..6u64 {
            a.record(i * 1_000_000, vec![sample(i, 0, 0)]);
        }
        let merged = TimeSeries::merged(&[&a]);
        let indices: Vec<u64> = merged.buckets().iter().map(|x| x.index).collect();
        assert_eq!(indices, vec![3, 4, 5]);
    }
}
