//! Cross-crate integration tests: workload generation → trace replay →
//! allocation algorithms → experiment reports, exercised through the public
//! API exactly as the examples and harness binaries use it.

use cliffhanger_repro::prelude::*;
use cliffhanger_repro::simulator::engine::replay_many;
use cliffhanger_repro::simulator::experiments::comparison::compare_apps;
use cliffhanger_repro::simulator::experiments::ExperimentContext;
use cliffhanger_repro::simulator::profiles::dynacache_plan;
use cliffhanger_repro::workloads::MemcachierConfig;

/// The workspace-wiring smoke test: a basic GET/SET round-trip through the
/// facade crate's re-exports alone. If the workspace manifests, the facade
/// prelude, or any inter-crate dependency edge breaks, this fails before
/// the heavier paper-level tests below even start.
#[test]
fn facade_get_set_round_trip() {
    let mut cache: Cliffhanger<&'static str> =
        Cliffhanger::new(CliffhangerConfig::with_total_bytes(1 << 20));
    let key = Key::new(42);
    let size = 256;

    // Cold: a GET misses.
    let (_, miss) = cache.get(key, size).expect("size maps to a slab class");
    assert!(!miss.hit, "fresh cache must miss");

    // SET then GET: a hit that returns the stored value.
    cache.set(key, size, "hello-cliffhanger");
    let (_, hit) = cache.get(key, size).expect("size maps to a slab class");
    assert!(hit.hit, "value stored via the facade must be readable");
    assert_eq!(cache.value(key), Some(&"hello-cliffhanger"));

    // And the same through the wire-protocol backend re-exports.
    let shared = cache_server::SharedCache::new(BackendConfig::default());
    assert!(shared.set(b"greeting", 7, bytes::Bytes::from_static(b"hi")));
    let (flags, data) = shared.get(b"greeting").expect("stored key must hit");
    assert_eq!(flags, 7);
    assert_eq!(&data[..], b"hi");
}

/// A scan-dominated application whose working set slightly exceeds its
/// reservation: the canonical performance cliff.
///
/// Sizing note: the 4 MB reservation holds ~8.5k items of this shape
/// (400-byte values charge a 512-byte chunk + item overhead), so a 9k scan
/// misses fitting by a few percent — a genuine cliff (plain LRU drops to
/// its floor) that still sits within the cliff shadows' sensory range: a
/// scanned key is only *observable* if it is re-referenced within
/// `cliff_shadow_items` evictions of leaving the queue, which bounds
/// detectable overshoot at roughly `2 × cliff_shadow_items` items (the
/// shadows scale with the reservation since PR 4; an earlier revision used
/// a 10.5k scan — "barely misses" only under data-byte accounting — which
/// no honest 128-entry-era configuration could observe).
fn cliff_trace(requests: u64) -> (Trace, ReplayOptions) {
    let profile = AppProfile::simple(
        11,
        "integration-cliff",
        1.0,
        4 << 20,
        Phase::zipf(1_000, 0.8, SizeDistribution::Fixed(400)).with_scan(0.85, 9_000),
    )
    .with_get_fraction(1.0);
    let trace = Trace::from_requests(profile.generate(requests, 3_600, 123));
    (trace, ReplayOptions::new(4 << 20))
}

#[test]
fn cliffhanger_beats_the_default_scheme_on_a_cliff_workload() {
    let (trace, options) = cliff_trace(300_000);
    let results = replay_many(
        &trace,
        &[CacheSystem::default_lru(), CacheSystem::cliffhanger()],
        &options,
    );
    let default_rate = results[0].hit_rate();
    let cliffhanger_rate = results[1].hit_rate();
    assert!(
        cliffhanger_rate > default_rate + 0.05,
        "cliffhanger ({cliffhanger_rate:.3}) should clearly beat the default \
         ({default_rate:.3}) on a scan that barely misses fitting"
    );
}

#[test]
fn dynacache_plan_matches_or_beats_default_on_size_imbalanced_app() {
    // An app where most GETs go to small items but large items hog the FCFS
    // allocation — the Table 1 situation.
    let profile = AppProfile::simple(
        6,
        "integration-imbalanced",
        1.0,
        2 << 20,
        Phase {
            fraction: 1.0,
            popularity: workloads::KeyPopularity::Zipf {
                num_keys: 12_000,
                exponent: 0.9,
            },
            sizes: SizeDistribution::Mixture(vec![
                (0.8, SizeDistribution::Fixed(120)),
                (
                    0.2,
                    SizeDistribution::Uniform {
                        min: 8_192,
                        max: 32_768,
                    },
                ),
            ]),
            scan_fraction: 0.0,
            scan_length: 0,
            key_offset: 0,
        },
    )
    .with_get_fraction(1.0);
    let trace = Trace::from_requests(profile.generate(200_000, 3_600, 5));
    let options = ReplayOptions::new(2 << 20);
    let plan = dynacache_plan(&trace, &options.slab, options.reserved_bytes, 64 << 10);
    let results = replay_many(
        &trace,
        &[
            CacheSystem::default_lru(),
            CacheSystem::StaticPlan {
                class_targets: plan,
                policy: PolicyKind::Lru,
            },
        ],
        &options,
    );
    assert!(
        results[1].hit_rate() + 0.01 >= results[0].hit_rate(),
        "the solver plan ({:.3}) should not lose to FCFS ({:.3}) on a \
         size-imbalanced workload",
        results[1].hit_rate(),
        results[0].hit_rate()
    );
}

#[test]
fn quick_experiment_context_supports_the_full_comparison() {
    let ctx = ExperimentContext::new(MemcachierConfig {
        total_requests: 80_000,
        scale: 0.06,
        duration_secs: 24 * 3_600,
        ..MemcachierConfig::default()
    });
    let rows = compare_apps(&ctx);
    assert_eq!(rows.len(), 20);
    // Aggregate: the managed systems must not collapse relative to the
    // default on this trace.
    let total_default_misses: u64 = rows.iter().map(|r| r.misses.0).sum();
    let total_cliffhanger_misses: u64 = rows.iter().map(|r| r.misses.2).sum();
    assert!(
        (total_cliffhanger_misses as f64) < (total_default_misses as f64) * 1.15,
        "cliffhanger misses {total_cliffhanger_misses} vs default {total_default_misses}"
    );
}

#[test]
fn trace_roundtrips_through_jsonl_and_replays_identically() {
    let (trace, options) = cliff_trace(20_000);
    let mut buffer = Vec::new();
    trace.write_jsonl(&mut buffer).unwrap();
    let reloaded = Trace::read_jsonl(std::io::Cursor::new(buffer)).unwrap();
    assert_eq!(reloaded.len(), trace.len());
    let a = simulator::engine::replay_app(&trace, &CacheSystem::default_lru(), &options);
    let b = simulator::engine::replay_app(&reloaded, &CacheSystem::default_lru(), &options);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn global_lru_and_slab_cache_agree_on_uniform_sizes() {
    // With a single item size there is no fragmentation difference, so the
    // two organisations should produce nearly identical hit rates.
    let profile = AppProfile::simple(
        2,
        "integration-uniform",
        1.0,
        1 << 20,
        Phase::zipf(20_000, 1.0, SizeDistribution::Fixed(256)),
    )
    .with_get_fraction(1.0);
    let trace = Trace::from_requests(profile.generate(120_000, 3_600, 9));
    let options = ReplayOptions::new(1 << 20);
    let results = replay_many(
        &trace,
        &[CacheSystem::default_lru(), CacheSystem::GlobalLru],
        &options,
    );
    let diff = (results[0].hit_rate() - results[1].hit_rate()).abs();
    assert!(
        diff < 0.03,
        "slab ({:.3}) and global LRU ({:.3}) should agree on uniform sizes",
        results[0].hit_rate(),
        results[1].hit_rate()
    );
}
