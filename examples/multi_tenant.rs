//! Multi-tenant replay: generate a small Memcachier-like 20-application
//! trace and compare Memcached's default first-come-first-serve allocation
//! against the Dynacache solver and Cliffhanger for every application — a
//! miniature version of the paper's Figure 6.
//!
//! Run with: `cargo run --release --example multi_tenant`

use cliffhanger_repro::simulator::experiments::comparison::{compare_apps, figure6_hit_rates};
use cliffhanger_repro::simulator::experiments::ExperimentContext;
use cliffhanger_repro::workloads::MemcachierConfig;

fn main() {
    println!("generating a scaled-down Memcachier-like trace (20 applications)...");
    let ctx = ExperimentContext::new(MemcachierConfig {
        total_requests: 400_000,
        scale: 0.15,
        ..MemcachierConfig::default()
    });

    println!("replaying every application under default / Dynacache / Cliffhanger...\n");
    let rows = compare_apps(&ctx);

    println!(
        "{:>4}  {:>6}  {:>10}  {:>10}  {:>12}  {:>8}",
        "app", "cliff?", "default", "Dynacache", "Cliffhanger", "Δ misses"
    );
    for row in &rows {
        println!(
            "{:>4}  {:>6}  {:>9.1}%  {:>9.1}%  {:>11.1}%  {:>7.1}%",
            row.app,
            if row.has_cliff { "*" } else { "" },
            row.default_rate * 100.0,
            row.dynacache_rate * 100.0,
            row.cliffhanger_rate * 100.0,
            row.cliffhanger_miss_reduction() * 100.0,
        );
    }

    let avg_default: f64 = rows.iter().map(|r| r.default_rate).sum::<f64>() / rows.len() as f64;
    let avg_cliff: f64 = rows.iter().map(|r| r.cliffhanger_rate).sum::<f64>() / rows.len() as f64;
    println!(
        "\naverage hit rate: default {:.1}% -> Cliffhanger {:.1}% ({:+.1} points)",
        avg_default * 100.0,
        avg_cliff * 100.0,
        (avg_cliff - avg_default) * 100.0
    );

    // The same data as a CSV figure, like the paper's Figure 6.
    let figure = figure6_hit_rates(&rows);
    println!("\n{figure}");
}
