//! The combined Cliffhanger controller for one application (§4.3).
//!
//! [`Cliffhanger`] is a drop-in, slab-structured cache like
//! [`cache_core::SlabCache`], except that memory is *managed*: every slab
//! class is a [`PartitionedQueue`] (cliff scaling within the class) and a
//! [`HillClimber`] moves credits between classes whenever a request hits a
//! class's long shadow queue (hill climbing across classes). Both algorithms
//! run purely on local signals, per request, with no profiling phase.

use crate::cliff_scale::CliffScaler;
use crate::config::CliffhangerConfig;
use crate::events::{EventSink, SinkSlot};
use crate::hill_climb::HillClimber;
use crate::partitioned_queue::{PartitionedQueue, PartitionedQueueConfig, QueueEvent};
use cache_core::{CacheStats, ClassId, Key};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A point-in-time view of one managed slab class (used by experiments that
/// plot allocations over time, e.g. Figure 8).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClassSnapshot {
    /// The slab class.
    pub class: u32,
    /// Chunk size of the class in bytes.
    pub chunk_size: u64,
    /// Byte budget currently assigned by hill climbing.
    pub target_bytes: u64,
    /// Bytes in use.
    pub used_bytes: u64,
    /// Resident items.
    pub items: usize,
    /// The Talus request ratio of the class's partitioned queue.
    pub ratio: f64,
    /// The cliff-scaling pointers (left, right) in items.
    pub pointers: (u64, u64),
    /// Whether the class is currently scaling a detected cliff.
    pub scaling_cliff: bool,
    /// Per-class statistics.
    pub stats: CacheStats,
}

/// The Cliffhanger-managed cache for a single application.
#[derive(Debug)]
pub struct Cliffhanger<V> {
    config: CliffhangerConfig,
    queues: Vec<PartitionedQueue<V>>,
    climber: HillClimber,
    /// Memory not yet granted to any class (drained first-come-first-serve
    /// while the cache warms up, exactly like Memcached's free pages).
    free_bytes: u64,
    /// Slab class of every resident key — the equivalent of Memcached's
    /// global hash table, so lookups without a size hint stay O(1).
    resident: std::collections::HashMap<Key, ClassId>,
    stats: CacheStats,
    /// Optional host sink narrating allocation decisions (free-pool grants,
    /// cliff-scaler ratio steps). `None` keeps every hook zero-cost.
    sink: SinkSlot,
    /// Last 5%-step bucket of each class's Talus ratio reported to the
    /// sink, so per-twitch pointer moves do not flood the host's recorder.
    ratio_buckets: Vec<i16>,
}

impl<V> Cliffhanger<V> {
    /// Creates a managed cache from its configuration.
    ///
    /// Initialisation mirrors the paper's prototype, which runs on top of
    /// Memcached's own slab allocation: every class starts with a small
    /// floor and the rest of the reservation sits in a free pool that is
    /// granted first-come-first-serve as classes need room (exactly what
    /// stock Memcached does while it still has free pages). Once the pool is
    /// exhausted, the only way a class grows is by hill-climbing credits
    /// taken from another class.
    pub fn new(config: CliffhangerConfig) -> Self {
        config.validate();
        let num_classes = config.slab.num_classes();
        // The per-class floor must stay below the even-split share, otherwise
        // no queue could ever afford to give up a credit and hill climbing
        // would be frozen on small reservations.
        let even_share = config.total_bytes / num_classes.max(1) as u64;
        let floor = config.min_class_bytes.min(even_share / 2).max(1);
        let initial_targets = vec![floor; num_classes];
        let free_bytes = config
            .total_bytes
            .saturating_sub(floor * num_classes as u64);
        let mut climber =
            HillClimber::new(initial_targets, config.credit_bytes, floor, config.seed);
        // Per-class credit floor: every class wins at least one chunk's worth
        // of bytes per shadow hit, and once grown it never donates below one
        // resident item. With the global 1–4 KB credit a 16–64 KB class
        // needed dozens of wins before a single item fit again, so random
        // loser picks drained giant classes far faster than hill climbing
        // could refill them (the slow-convergence case of the shard
        // experiments); chunk-granular credits are the same medicine as
        // Memcached's page-granular slab rebalancer.
        for c in 0..num_classes {
            let charge = config.charge_per_item(ClassId::new(c as u32));
            climber.set_queue_credit(c, config.credit_bytes.max(charge));
            climber.set_queue_floor(c, floor.max(charge));
        }
        let queues = (0..num_classes as u32)
            .map(|c| {
                let class = ClassId::new(c);
                PartitionedQueue::new(PartitionedQueueConfig {
                    policy: config.policy,
                    target_bytes: climber.target(c as usize),
                    charge_per_item: config.charge_per_item(class),
                    cliff_shadow_items: config.cliff_shadow_items,
                    hill_shadow_entries: config.hill_shadow_entries(class),
                    credit_items: config.credit_items(class),
                    cliff_min_items: config.cliff_min_items,
                    enable_cliff_scaling: config.enable_cliff_scaling,
                })
            })
            .collect();
        Cliffhanger {
            config,
            queues,
            climber,
            free_bytes,
            resident: std::collections::HashMap::new(),
            stats: CacheStats::new(),
            sink: SinkSlot::default(),
            // Fresh partitioned queues start with an even 0.5 split.
            ratio_buckets: vec![10; num_classes],
        }
    }

    /// Installs a host sink for allocation decisions (free-pool grants and
    /// cliff-scaler ratio steps). The sink is called inline from the data
    /// path, so implementations must be cheap and non-blocking — the
    /// intended host sink appends to a bounded ring journal.
    pub fn set_event_sink(&mut self, sink: Arc<dyn EventSink + Send + Sync>) {
        self.sink = SinkSlot(Some(sink));
    }

    /// Reports the class's Talus ratio to the sink when it crossed into a
    /// new 5% step since the last report.
    fn note_ratio(&mut self, idx: usize) {
        let Some(sink) = &self.sink.0 else { return };
        let ratio = self.queues[idx].ratio();
        let bucket = (ratio * 20.0).round() as i16;
        if bucket != self.ratio_buckets[idx] {
            self.ratio_buckets[idx] = bucket;
            sink.scaler_ratio(idx as u32, ratio);
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CliffhangerConfig {
        &self.config
    }

    /// The slab class an item of `size` bytes maps to.
    pub fn class_for_size(&self, size: u64) -> Option<ClassId> {
        self.config.slab.class_for_size(size)
    }

    /// Number of slab classes.
    pub fn num_classes(&self) -> usize {
        self.queues.len()
    }

    /// Looks up `key`; `size` routes the request to its slab class.
    pub fn get(&mut self, key: Key, size: u64) -> Option<(ClassId, QueueEvent)> {
        let class = self.class_for_size(size)?;
        Some((class, self.get_in_class(key, class)))
    }

    /// Looks up `key` without a size hint, as the wire-protocol GET path
    /// must (the item size is unknown until a value is found). Resident keys
    /// are routed by the global key index in O(1); misses are recorded but
    /// their shadow classification is deferred to the demand-fill SET, which
    /// knows the size (see [`PartitionedQueue::set`]).
    pub fn get_untyped(&mut self, key: Key) -> (ClassId, QueueEvent) {
        match self.resident.get(&key).copied() {
            Some(class) => (class, self.get_in_class(key, class)),
            None => {
                self.stats.record_get(false);
                let class = ClassId::new(0);
                (
                    class,
                    QueueEvent {
                        hit: false,
                        partition: crate::partitioned_queue::Partition::Left,
                        tail_hit: false,
                        cliff_shadow_hit: false,
                        hill_shadow_hit: false,
                    },
                )
            }
        }
    }

    fn get_in_class(&mut self, key: Key, class: ClassId) -> QueueEvent {
        let idx = class.index();
        let event = self.queues[idx].get(key);
        self.stats.record_get(event.hit);
        if !event.hit && self.resident.get(&key) == Some(&class) {
            // The index said resident but the queue no longer holds it (it
            // was evicted through a path we could not observe); heal the
            // index so it cannot grow stale entries.
            self.resident.remove(&key);
        }
        if event.hill_shadow_hit {
            self.stats.shadow_hits += 1;
            self.hill_climb(idx);
        }
        if event.cliff_shadow_hit {
            self.stats.cliff_shadow_hits += 1;
        }
        if event.cliff_shadow_hit || event.tail_hit {
            // Only pointer events (tail / cliff-shadow hits) can move the
            // Talus ratio, so this is the one place a step can appear.
            self.note_ratio(idx);
        }
        event
    }

    /// While the free pool is non-empty, classes grow into it on demand
    /// (Memcached's first-come-first-serve page grants); afterwards memory
    /// only moves through hill climbing.
    fn grant_from_free_pool(&mut self, class: ClassId, size: u64) {
        if self.free_bytes == 0 {
            return;
        }
        let idx = class.index();
        let charge = self.config.charge_per_item(class).max(size);
        // Headroom covers the queue's worst-case slack when it is actually
        // full: with cliff scaling active the queue runs two partitions,
        // each of which can be item-full while still `item cost - 1` bytes
        // under its own split of the target, so `target - used` can exceed
        // one charge without a single byte being admittable (a one-charge
        // threshold deadlocked there, stranding the free pool). Partition
        // skew beyond that is caught by [`Cliffhanger::grant_on_eviction`].
        let headroom = 2 * (charge + cache_core::ITEM_OVERHEAD);
        let needed = self.queues[idx].used_bytes() + headroom;
        let target = self.climber.target(idx);
        if needed <= target {
            return;
        }
        let grant = (needed - target)
            .max(self.config.credit_bytes)
            .min(self.free_bytes);
        let new_target = target + grant;
        self.climber.set_target(idx, new_target);
        self.queues[idx].set_target_bytes(new_target);
        self.free_bytes -= grant;
        if let Some(sink) = &self.sink.0 {
            sink.free_pool_grant(idx as u32, grant);
        }
    }

    /// The demand-driven half of free-pool granting: a class that just
    /// *evicted* while free memory exists is starved no matter what its
    /// used-vs-target arithmetic says (the cliff scaler can pin one
    /// partition at a size routing underfills, leaving permanent paper
    /// slack), so the eviction itself is the fullness signal — exactly
    /// Memcached's rule of granting a free page to whichever class evicts
    /// while pages remain.
    fn grant_on_eviction(&mut self, class: ClassId) {
        if self.free_bytes == 0 {
            return;
        }
        let idx = class.index();
        let grant = self
            .config
            .credit_bytes
            .max(self.config.charge_per_item(class))
            .min(self.free_bytes);
        let new_target = self.climber.target(idx) + grant;
        self.climber.set_target(idx, new_target);
        self.queues[idx].set_target_bytes(new_target);
        self.free_bytes -= grant;
        if let Some(sink) = &self.sink.0 {
            sink.free_pool_grant(idx as u32, grant);
        }
    }

    fn hill_climb(&mut self, winner: usize) {
        if !self.config.enable_hill_climbing {
            return;
        }
        if let Some(transfer) = self.climber.on_shadow_hit(winner) {
            let winner_target = self.climber.target(transfer.winner);
            let loser_target = self.climber.target(transfer.loser);
            self.queues[transfer.winner].set_target_bytes(winner_target);
            self.queues[transfer.loser].set_target_bytes(loser_target);
            // The donated memory is reclaimed immediately (reassigning a slab
            // page evicts its items), so the sum of resident bytes can never
            // exceed the reservation just because the loser happens to be
            // idle.
            for evicted in self.queues[transfer.loser].enforce_target() {
                self.resident.remove(&evicted);
            }
        }
    }

    /// Stores `key` with a payload of `size` bytes. Returns the class and
    /// whether the item was admitted, or `None` if the item is too large for
    /// any slab class.
    pub fn set(&mut self, key: Key, size: u64, value: V) -> Option<(ClassId, bool)> {
        let class = self.class_for_size(size)?;
        self.stats.record_set();
        // If the item changed size class, drop the stale copy.
        if let Some(&old_class) = self.resident.get(&key) {
            if old_class != class {
                self.queues[old_class.index()].delete(key);
                self.resident.remove(&key);
            }
        }
        self.grant_from_free_pool(class, size);
        let outcome = self.queues[class.index()].set(key, size, value);
        if outcome.hill_shadow_hit {
            self.stats.shadow_hits += 1;
            self.hill_climb(class.index());
        }
        if outcome.cliff_shadow_hit {
            self.stats.cliff_shadow_hits += 1;
            self.note_ratio(class.index());
        }
        for evicted in &outcome.evicted {
            self.resident.remove(evicted);
        }
        if !outcome.evicted.is_empty() {
            self.grant_on_eviction(class);
        }
        if outcome.admitted {
            self.resident.insert(key, class);
        } else {
            self.resident.remove(&key);
        }
        Some((class, outcome.admitted))
    }

    /// Deletes `key` from whichever class holds it.
    pub fn delete(&mut self, key: Key) -> bool {
        match self.resident.remove(&key) {
            Some(class) => self.queues[class.index()].delete(key),
            None => false,
        }
    }

    /// The stored value for `key`, if resident.
    pub fn value(&self, key: Key) -> Option<&V> {
        let class = self.resident.get(&key)?;
        self.queues[class.index()].value(key)
    }

    /// Whether `key` is resident in any class.
    pub fn contains(&self, key: Key) -> bool {
        self.resident.contains_key(&key)
    }

    /// Aggregate statistics (evictions are accounted inside the per-class
    /// queues and folded in here).
    pub fn stats(&self) -> CacheStats {
        let mut stats = self.stats;
        stats.evictions = self.queues.iter().map(|q| q.stats().evictions).sum();
        stats
    }

    /// Per-class statistics, indexed by class.
    pub fn class_stats(&self) -> Vec<CacheStats> {
        self.queues.iter().map(|q| q.stats()).collect()
    }

    /// Resets aggregate and per-class statistics (memory allocations are left
    /// untouched, so a warmed-up cache can be measured cleanly).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::new();
        for q in &mut self.queues {
            q.reset_stats();
        }
    }

    /// Total bytes in use.
    pub fn used_bytes(&self) -> u64 {
        self.queues.iter().map(|q| q.used_bytes()).sum()
    }

    /// Total resident items.
    pub fn len(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The total memory budget: the sum of class targets plus whatever is
    /// still in the free pool. Conserved by hill climbing and by free-pool
    /// grants alike.
    pub fn total_bytes(&self) -> u64 {
        self.climber.total() + self.free_bytes
    }

    /// Memory not yet granted to any slab class.
    pub fn free_bytes(&self) -> u64 {
        self.free_bytes
    }

    /// Current byte target of one class.
    pub fn class_target(&self, class: ClassId) -> u64 {
        self.climber.target(class.index())
    }

    /// The hill-climbing credit one class wins per shadow hit (at least one
    /// chunk; see the per-class credit floor in [`Cliffhanger::new`]).
    pub fn class_credit(&self, class: ClassId) -> u64 {
        self.climber.queue_credit(class.index())
    }

    /// The floor below which hill climbing never shrinks one class.
    pub fn class_floor(&self, class: ClassId) -> u64 {
        self.climber.queue_floor(class.index())
    }

    /// Snapshots of every class (allocation, pointers, ratios, stats).
    pub fn class_snapshots(&self) -> Vec<ClassSnapshot> {
        self.queues
            .iter()
            .enumerate()
            .map(|(idx, q)| ClassSnapshot {
                class: idx as u32,
                chunk_size: self.config.slab.chunk_size(ClassId::new(idx as u32)),
                target_bytes: q.target_bytes(),
                used_bytes: q.used_bytes(),
                items: q.len(),
                ratio: q.ratio(),
                pointers: q.pointers(),
                scaling_cliff: q.is_scaling_a_cliff(),
                stats: q.stats(),
            })
            .collect()
    }

    /// Number of hill-climbing credit transfers performed so far.
    pub fn transfers(&self) -> u64 {
        self.climber.transfers()
    }

    /// Direct access to one class's partitioned queue (diagnostics, tests).
    pub fn queue(&self, class: ClassId) -> &PartitionedQueue<V> {
        &self.queues[class.index()]
    }

    /// The cliff scaler of one class (diagnostics, tests).
    pub fn scaler(&self, class: ClassId) -> &CliffScaler {
        self.queues[class.index()].scaler()
    }

    /// Grows one class's budget by `bytes` from outside (used by the
    /// cross-application layer). The extra memory is real: the cache's total
    /// grows.
    pub fn grow_class(&mut self, class: ClassId, bytes: u64) {
        let idx = class.index();
        let new_target = self.climber.target(idx) + bytes;
        self.climber.set_target(idx, new_target);
        self.queues[idx].set_target_bytes(new_target);
    }

    /// Grows the cache's total budget by `bytes` from outside (the
    /// cross-shard rebalancer). The new memory lands in the free pool, where
    /// classes grow into it on demand exactly like Memcached's free pages —
    /// and from there the within-cache hill climber takes over, so an outer
    /// transfer needs no opinion about *which* class deserves the memory.
    pub fn grow_total(&mut self, bytes: u64) {
        self.free_bytes += bytes;
    }

    /// Shrinks the cache's total budget by `bytes`, returning `true` if the
    /// memory could be released. The free pool is drained first; the rest is
    /// taken from the largest classes (largest first), never below each
    /// class's own floor (at least one chunk — the same floor hill climbing
    /// honours, so an outer transfer cannot re-create the drained-giant-
    /// class starvation the per-class floors exist to prevent), with the
    /// displaced items evicted immediately so the released bytes are real.
    /// Returns `false` — and changes nothing — when the floors make the
    /// release impossible.
    pub fn shrink_total(&mut self, bytes: u64) -> bool {
        let from_free = self.free_bytes.min(bytes);
        let mut needed = bytes - from_free;
        let spare_of = |climber: &HillClimber, i: usize| {
            climber.target(i).saturating_sub(climber.queue_floor(i))
        };
        let spare: u64 = (0..self.queues.len())
            .map(|i| spare_of(&self.climber, i))
            .sum();
        if needed > spare {
            return false;
        }
        self.free_bytes -= from_free;
        while needed > 0 {
            let idx = (0..self.queues.len())
                .max_by_key(|&i| spare_of(&self.climber, i))
                .expect("needed > 0 implies at least one class");
            let take = spare_of(&self.climber, idx).min(needed);
            debug_assert!(take > 0, "spare check guarantees progress");
            let new_target = self.climber.target(idx) - take;
            self.climber.set_target(idx, new_target);
            self.queues[idx].set_target_bytes(new_target);
            for evicted in self.queues[idx].enforce_target() {
                self.resident.remove(&evicted);
            }
            needed -= take;
        }
        true
    }

    /// Shrinks the cache by `bytes`, returning `true` if the memory could be
    /// released. Ungranted free-pool memory is released first; otherwise the
    /// class with the most memory above its own floor (at least one chunk,
    /// as in [`Cliffhanger::shrink_total`]) gives it up.
    pub fn shrink_some_class(&mut self, bytes: u64) -> bool {
        if self.free_bytes >= bytes {
            self.free_bytes -= bytes;
            return true;
        }
        let candidate = (0..self.queues.len())
            .filter(|&i| {
                let target = self.climber.target(i);
                target >= bytes && target - bytes >= self.climber.queue_floor(i)
            })
            .max_by_key(|&i| self.climber.target(i));
        match candidate {
            Some(idx) => {
                let new_target = self.climber.target(idx) - bytes;
                self.climber.set_target(idx, new_target);
                self.queues[idx].set_target_bytes(new_target);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_core::SlabConfig;

    fn key(i: u64) -> Key {
        Key::new(i)
    }

    fn config(total: u64) -> CliffhangerConfig {
        CliffhangerConfig {
            slab: SlabConfig::new(64, 2.0, 8192),
            total_bytes: total,
            credit_bytes: 1 << 10,
            hill_shadow_bytes: 64 << 10,
            cliff_shadow_items: 16,
            cliff_min_items: 1_000,
            min_class_bytes: 4 << 10,
            seed: 7,
            ..CliffhangerConfig::default()
        }
    }

    #[test]
    fn basic_get_set_roundtrip() {
        let mut c: Cliffhanger<()> = Cliffhanger::new(config(1 << 20));
        assert!(!c.get(key(1), 100).unwrap().1.hit);
        let (class, admitted) = c.set(key(1), 100, ()).unwrap();
        assert!(admitted);
        let (class2, event) = c.get(key(1), 100).unwrap();
        assert_eq!(class, class2);
        assert!(event.hit);
        assert_eq!(c.stats().gets, 2);
        assert_eq!(c.stats().hits, 1);
        assert!(c.contains(key(1)));
    }

    #[test]
    fn oversized_items_are_rejected() {
        let mut c: Cliffhanger<()> = Cliffhanger::new(config(1 << 20));
        assert!(c.set(key(1), 1 << 20, ()).is_none());
        assert!(c.get(key(1), 1 << 20).is_none());
    }

    #[test]
    fn total_memory_is_conserved_under_hill_climbing() {
        let mut c: Cliffhanger<()> = Cliffhanger::new(config(2 << 20));
        let total = c.total_bytes();
        // Drive a skewed workload: small items dominate.
        for round in 0..30u64 {
            for i in 0..3_000u64 {
                let size = if i % 10 == 0 { 2_000 } else { 60 };
                let k = key(i);
                let hit = c.get(k, size).unwrap().1.hit;
                if !hit {
                    c.set(k, size, ());
                }
            }
            let _ = round;
        }
        assert_eq!(c.total_bytes(), total, "hill climbing must conserve memory");
        assert!(c.used_bytes() <= total + (64 << 10));
    }

    #[test]
    fn memory_shifts_towards_the_busy_class() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut c: Cliffhanger<()> = Cliffhanger::new(config(2 << 20));
        let small_class = c.class_for_size(60).unwrap();
        let large_class = c.class_for_size(4_000).unwrap();
        let initial_small = c.class_target(small_class);
        // Both classes want far more memory than the 2 MB reservation, but
        // the small class receives ten times the requests: hill climbing
        // should give it the larger share.
        let mut rng = StdRng::seed_from_u64(17);
        for round in 0..30 {
            for _ in 0..5_000u64 {
                let k = key(rng.gen_range(0..30_000));
                if !c.get(k, 60).unwrap().1.hit {
                    c.set(k, 60, ());
                }
            }
            for _ in 0..500u64 {
                let k = key(1_000_000 + rng.gen_range(0..2_000u64));
                if !c.get(k, 4_000).unwrap().1.hit {
                    c.set(k, 4_000, ());
                }
            }
            let _ = round;
        }
        assert!(
            c.class_target(small_class) > initial_small,
            "the busy small class should have gained memory: {} -> {}",
            initial_small,
            c.class_target(small_class)
        );
        assert!(
            c.class_target(small_class) > c.class_target(large_class),
            "small {} vs large {}",
            c.class_target(small_class),
            c.class_target(large_class)
        );
        assert!(c.transfers() > 0);
        assert_eq!(c.free_bytes(), 0, "the free pool should be exhausted");
    }

    #[test]
    fn hill_climbing_disabled_moves_no_credits() {
        let mut c: Cliffhanger<()> = Cliffhanger::new(config(1 << 20).cliff_scaling_only());
        let total = c.total_bytes();
        for i in 0..20_000u64 {
            let k = key(i % 15_000);
            if !c.get(k, 60).unwrap().1.hit {
                c.set(k, 60, ());
            }
        }
        // Classes may still grow into the free pool (stock Memcached
        // behaviour), but no hill-climbing credit is ever transferred.
        assert_eq!(c.transfers(), 0);
        assert_eq!(c.total_bytes(), total);
    }

    #[test]
    fn untyped_get_finds_resident_items() {
        let mut c: Cliffhanger<()> = Cliffhanger::new(config(1 << 20));
        c.set(key(5), 3_000, ());
        let (class, event) = c.get_untyped(key(5));
        assert!(event.hit);
        assert_eq!(class, c.class_for_size(3_000).unwrap());
        let (_, miss) = c.get_untyped(key(99));
        assert!(!miss.hit);
    }

    #[test]
    fn item_changing_class_does_not_duplicate() {
        let mut c: Cliffhanger<()> = Cliffhanger::new(config(1 << 20));
        c.set(key(1), 60, ());
        c.set(key(1), 4_000, ());
        let copies = (0..c.num_classes())
            .filter(|&i| c.queue(ClassId::new(i as u32)).contains(key(1)))
            .count();
        assert_eq!(copies, 1);
        assert!(c.delete(key(1)));
        assert!(!c.contains(key(1)));
    }

    #[test]
    fn class_snapshots_report_allocation_state() {
        let mut c: Cliffhanger<()> = Cliffhanger::new(config(1 << 20));
        for i in 0..200 {
            c.set(key(i), 60, ());
        }
        let snaps = c.class_snapshots();
        assert_eq!(snaps.len(), c.num_classes());
        let total_target: u64 = snaps.iter().map(|s| s.target_bytes).sum();
        assert_eq!(total_target + c.free_bytes(), c.total_bytes());
        let small = &snaps[c.class_for_size(60).unwrap().index()];
        assert!(small.items > 0);
        assert!(small.used_bytes > 0);
        assert_eq!(small.chunk_size, 64);
    }

    #[test]
    fn grow_and_shrink_interact_with_external_allocators() {
        let mut c: Cliffhanger<()> = Cliffhanger::new(config(1 << 20));
        let class = c.class_for_size(60).unwrap();
        let before_total = c.total_bytes();
        c.grow_class(class, 64 << 10);
        assert_eq!(c.total_bytes(), before_total + (64 << 10));
        assert!(c.shrink_some_class(64 << 10));
        assert_eq!(c.total_bytes(), before_total);
        // Shrinking more than any class can afford fails gracefully.
        assert!(!c.shrink_some_class(10 << 20));
    }

    #[test]
    fn grow_total_lands_in_the_free_pool_and_is_grantable() {
        let mut c: Cliffhanger<()> = Cliffhanger::new(config(1 << 20));
        let before_total = c.total_bytes();
        let before_free = c.free_bytes();
        c.grow_total(512 << 10);
        assert_eq!(c.total_bytes(), before_total + (512 << 10));
        assert_eq!(c.free_bytes(), before_free + (512 << 10));
        // The grown memory is demand-grantable: fills can use it.
        for i in 0..2_000 {
            c.set(key(i), 60, ());
        }
        assert!(c.free_bytes() < before_free + (512 << 10));
        assert_eq!(c.total_bytes(), before_total + (512 << 10));
    }

    #[test]
    fn shrink_total_releases_real_memory_and_respects_floors() {
        let mut c: Cliffhanger<()> = Cliffhanger::new(config(2 << 20));
        // Fill well past the shrink amount so eviction must do real work.
        for i in 0..20_000u64 {
            let k = key(i);
            if !c.get(k, 60).unwrap().1.hit {
                c.set(k, 60, ());
            }
        }
        let total = c.total_bytes();
        assert!(c.shrink_total(1 << 20));
        assert_eq!(c.total_bytes(), total - (1 << 20));
        assert!(
            c.used_bytes() <= c.total_bytes(),
            "shrink must evict down to the new budget: used {} vs total {}",
            c.used_bytes(),
            c.total_bytes()
        );
        // Evicted keys are healed out of the resident index.
        let resident_everywhere = (0..20_000u64).filter(|&i| c.contains(key(i))).count();
        assert_eq!(resident_everywhere, c.len());
        // Shrinking below the per-class floors fails atomically.
        let before = c.total_bytes();
        assert!(!c.shrink_total(1 << 30));
        assert_eq!(c.total_bytes(), before);
    }

    #[test]
    fn shrink_total_prefers_the_free_pool() {
        let mut c: Cliffhanger<()> = Cliffhanger::new(config(2 << 20));
        let free = c.free_bytes();
        assert!(free > 256 << 10, "fresh cache starts with a free pool");
        assert!(c.shrink_total(256 << 10));
        assert_eq!(c.free_bytes(), free - (256 << 10));
        assert_eq!(c.stats().evictions, 0, "free-pool release evicts nothing");
    }

    #[test]
    fn churn_claims_the_whole_budget_and_grow_total_becomes_resident() {
        // Regression for the stranded-free-pool spiral: a single hot class
        // churning past its allocation must claim the entire free pool (the
        // eviction-driven grant), and budget added later via `grow_total`
        // must become resident items — not sit in the pool while the class
        // evicts (the one-sided cliff-scaler ratio pinned a partition at a
        // fraction of the budget and the old grant threshold never fired).
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut c: Cliffhanger<()> = Cliffhanger::new(config(2 << 20));
        let mut rng = StdRng::seed_from_u64(11);
        let n = 12_000u64;
        let size = 330u64;
        let drive = |c: &mut Cliffhanger<()>, requests: u64, rng: &mut StdRng| {
            for _ in 0..requests {
                let k = key(rng.gen_range(0..n));
                if !c.get(k, size).unwrap().1.hit {
                    c.set(k, size, ());
                }
            }
        };
        drive(&mut c, 300_000, &mut rng);
        assert!(
            c.used_bytes() > (c.total_bytes() * 9) / 10,
            "sustained churn must claim ~the whole budget: used {} of {} ({} free)",
            c.used_bytes(),
            c.total_bytes(),
            c.free_bytes()
        );
        let used_small = c.used_bytes();
        c.grow_total(2 << 20);
        drive(&mut c, 300_000, &mut rng);
        assert!(
            c.used_bytes() > used_small + (1 << 20),
            "grown budget must become resident items: {} -> {}",
            used_small,
            c.used_bytes()
        );
    }

    #[test]
    fn giant_class_credit_is_floored_at_one_chunk() {
        // Regression for the slow-convergence open item: with the global
        // 1 KB credit, the 8 KB class would need ~8 wins per re-admitted
        // item; the per-class credit floor makes one shadow win move one
        // whole chunk, and the per-class floor keeps a grown class able to
        // hold at least one item.
        let c: Cliffhanger<()> = Cliffhanger::new(config(2 << 20));
        let small = c.class_for_size(60).unwrap();
        let giant = c.class_for_size(8_000).unwrap();
        let giant_charge = c.config().charge_per_item(giant);
        assert!(giant_charge > 8 << 10);
        assert_eq!(c.class_credit(small), 1 << 10, "small classes keep 1 KB");
        assert_eq!(
            c.class_credit(giant),
            giant_charge,
            "giant classes win a full chunk per shadow hit"
        );
        assert_eq!(c.class_floor(giant), giant_charge);
    }

    #[test]
    fn giant_class_is_not_starved_by_random_loser_picks() {
        // Sustained demand on an 8 KB class while a small class hammers its
        // own shadow queue: the giant class's target must converge to (and
        // never again drop below) at least one chunk, so its items are
        // re-admittable after every random-loser drain.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut c: Cliffhanger<()> = Cliffhanger::new(config(2 << 20));
        let giant = c.class_for_size(8_000).unwrap();
        let giant_charge = c.config().charge_per_item(giant);
        let mut rng = StdRng::seed_from_u64(23);
        let mut grown = false;
        for _ in 0..40 {
            // Small-item churn far beyond the budget: constant shadow wins
            // for the small class (the starvation pressure).
            for _ in 0..4_000u64 {
                let k = key(rng.gen_range(0..40_000));
                if !c.get(k, 60).unwrap().1.hit {
                    c.set(k, 60, ());
                }
            }
            // A handful of giant keys cycle through; each miss lands in the
            // giant class's shadow queue eventually.
            for g in 0..4u64 {
                let k = key(2_000_000 + g);
                if !c.get(k, 8_000).unwrap().1.hit {
                    c.set(k, 8_000, ());
                }
            }
            if c.class_target(giant) >= giant_charge {
                grown = true;
            }
            if grown {
                assert!(
                    c.class_target(giant) >= giant_charge,
                    "once grown to a chunk, the floor must hold: target {} < charge {}",
                    c.class_target(giant),
                    giant_charge
                );
            }
        }
        assert!(
            grown,
            "sustained demand must grow the giant class to at least one chunk \
             (target {}, charge {giant_charge})",
            c.class_target(giant)
        );
        assert_eq!(c.total_bytes(), 2 << 20, "credits always conserve memory");
    }

    #[test]
    fn outer_shrink_respects_per_class_chunk_floors() {
        // Regression: shrink_total (the path every cross-shard / cross-
        // tenant transfer takes) used the global min_class_bytes floor,
        // bypassing the per-class one-chunk floors — repeated donor-side
        // transfers could drain a giant class below a single resident item.
        let mut c: Cliffhanger<()> = Cliffhanger::new(config(2 << 20));
        let giant = c.class_for_size(8_000).unwrap();
        let charge = c.config().charge_per_item(giant);
        // Demand-fill the giant class so it owns more than one chunk.
        for g in 0..60u64 {
            let k = key(g);
            if !c.get(k, 8_000).unwrap().1.hit {
                c.set(k, 8_000, ());
            }
        }
        assert!(
            c.class_target(giant) > charge,
            "giant class must have grown"
        );
        // Drain the cache as far as the floors allow.
        while c.shrink_total(64 << 10) {}
        assert!(
            c.class_target(giant) >= c.class_floor(giant),
            "outer shrinking must never take a class below its floor: {} < {}",
            c.class_target(giant),
            c.class_floor(giant)
        );
        assert!(c.class_floor(giant) >= charge, "the floor is one chunk");
        // shrink_some_class honours the same per-class floor.
        let before = c.class_target(giant);
        while c.shrink_some_class(32 << 10) {}
        assert!(c.class_target(giant) >= c.class_floor(giant));
        let _ = before;
    }

    #[test]
    fn installed_sink_hears_grants_and_ratio_steps() {
        use crate::events::test_support::RecordingSink;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut c: Cliffhanger<()> = Cliffhanger::new(config(1 << 20));
        let sink = Arc::new(RecordingSink::default());
        c.set_event_sink(sink.clone());
        let free_before = c.free_bytes();
        // Churn one class far past the budget: the warmup drains the free
        // pool through grants, and the sustained evictions walk the cliff
        // scaler's pointers until the ratio leaves its initial 0.5 step.
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..150_000u64 {
            let k = key(rng.gen_range(0..12_000));
            if !c.get(k, 60).unwrap().1.hit {
                c.set(k, 60, ());
            }
        }
        let grants = sink.grants.lock().unwrap();
        let granted: u64 = grants.iter().map(|&(_, bytes)| bytes).sum();
        assert!(!grants.is_empty(), "warmup must grant from the free pool");
        assert_eq!(
            granted,
            free_before - c.free_bytes(),
            "narrated grants account for every byte that left the pool"
        );
        let ratios = sink.ratios.lock().unwrap();
        assert!(
            !ratios.is_empty(),
            "sustained cliff-shadow traffic must step the ratio"
        );
        assert!(ratios.iter().all(|&(_, r)| (0.0..=1.0).contains(&r)));
    }

    #[test]
    fn reset_stats_preserves_allocation() {
        let mut c: Cliffhanger<()> = Cliffhanger::new(config(1 << 20));
        for i in 0..500 {
            let k = key(i);
            if !c.get(k, 60).unwrap().1.hit {
                c.set(k, 60, ());
            }
        }
        let used = c.used_bytes();
        c.reset_stats();
        assert_eq!(c.stats().gets, 0);
        assert_eq!(c.used_bytes(), used);
        assert!(c.class_stats().iter().all(|s| s.gets == 0));
    }
}
