//! A blocking Memcached-text-protocol client.
//!
//! Used by the integration tests, the examples and the Table 6/7 benchmark
//! harness. The client is intentionally simple: one request at a time over
//! one connection, with buffered reads.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};

/// A blocking client for the cache server.
pub struct CacheClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl CacheClient {
    /// Connects to the server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<CacheClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(CacheClient {
            reader,
            writer: stream,
        })
    }

    /// Connects to a specific socket address.
    pub fn connect_addr(addr: SocketAddr) -> std::io::Result<CacheClient> {
        Self::connect(addr)
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end_matches(['\r', '\n']).to_string())
    }

    /// Selects the application namespace for the rest of this session
    /// (`app <name>`); returns whether the server accepted it. Keys, stats
    /// and `flush_all` after a successful call are scoped to that
    /// application; without it the session runs in the `default` namespace.
    pub fn app(&mut self, name: &str) -> std::io::Result<bool> {
        self.writer
            .write_all(format!("app {name}\r\n").as_bytes())?;
        let line = self.read_line()?;
        Ok(line == "OK")
    }

    /// Creates an application namespace live (`app_create <name> <weight>`);
    /// returns whether the server accepted it (duplicates and invalid names
    /// come back as `CLIENT_ERROR`, i.e. `false`).
    pub fn app_create(&mut self, name: &str, weight: u64) -> std::io::Result<bool> {
        self.writer
            .write_all(format!("app_create {name} {weight}\r\n").as_bytes())?;
        let line = self.read_line()?;
        Ok(line == "OK")
    }

    /// Lists the hosted applications as `(name, weight, budget bytes)`
    /// (`app_list`).
    pub fn app_list(&mut self) -> std::io::Result<Vec<(String, u64, u64)>> {
        self.writer.write_all(b"app_list\r\n")?;
        let mut apps = Vec::new();
        loop {
            let line = self.read_line()?;
            if line == "END" {
                return Ok(apps);
            }
            if let Some(rest) = line.strip_prefix("APP ") {
                let mut parts = rest.split_ascii_whitespace();
                let name = parts.next().unwrap_or("").to_string();
                let weight: u64 = parts.next().unwrap_or("0").parse().unwrap_or(0);
                let budget: u64 = parts.next().unwrap_or("0").parse().unwrap_or(0);
                apps.push((name, weight, budget));
            } else if line.starts_with("CLIENT_ERROR") || line == "ERROR" {
                return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, line));
            }
        }
    }

    /// Stores a value; returns whether the server acknowledged it.
    pub fn set(&mut self, key: &[u8], flags: u32, value: &[u8]) -> std::io::Result<bool> {
        self.store("set", key, flags, value)
    }

    /// `add`: stores only if absent.
    pub fn add(&mut self, key: &[u8], flags: u32, value: &[u8]) -> std::io::Result<bool> {
        self.store("add", key, flags, value)
    }

    /// `replace`: stores only if present.
    pub fn replace(&mut self, key: &[u8], flags: u32, value: &[u8]) -> std::io::Result<bool> {
        self.store("replace", key, flags, value)
    }

    fn store(&mut self, verb: &str, key: &[u8], flags: u32, value: &[u8]) -> std::io::Result<bool> {
        let header = format!(
            "{verb} {} {flags} 0 {}\r\n",
            String::from_utf8_lossy(key),
            value.len()
        );
        self.writer.write_all(header.as_bytes())?;
        self.writer.write_all(value)?;
        self.writer.write_all(b"\r\n")?;
        let line = self.read_line()?;
        Ok(line == "STORED")
    }

    /// Fetches a key; `Ok(None)` on a miss.
    pub fn get(&mut self, key: &[u8]) -> std::io::Result<Option<(u32, Vec<u8>)>> {
        let command = format!("get {}\r\n", String::from_utf8_lossy(key));
        self.writer.write_all(command.as_bytes())?;
        let mut result = None;
        loop {
            let line = self.read_line()?;
            if line == "END" {
                return Ok(result);
            }
            if let Some(rest) = line.strip_prefix("VALUE ") {
                let mut parts = rest.split_ascii_whitespace();
                let _key = parts.next().unwrap_or("");
                let flags: u32 = parts.next().unwrap_or("0").parse().unwrap_or(0);
                let len: usize = parts.next().unwrap_or("0").parse().unwrap_or(0);
                let mut data = vec![0u8; len];
                self.reader.read_exact(&mut data)?;
                let mut crlf = [0u8; 2];
                self.reader.read_exact(&mut crlf)?;
                result = Some((flags, data));
            } else if line.starts_with("CLIENT_ERROR") || line == "ERROR" {
                return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, line));
            }
        }
    }

    /// Deletes a key; returns whether it existed.
    pub fn delete(&mut self, key: &[u8]) -> std::io::Result<bool> {
        let command = format!("delete {}\r\n", String::from_utf8_lossy(key));
        self.writer.write_all(command.as_bytes())?;
        let line = self.read_line()?;
        Ok(line == "DELETED")
    }

    /// Fetches server statistics.
    pub fn stats(&mut self) -> std::io::Result<Vec<(String, String)>> {
        self.writer.write_all(b"stats\r\n")?;
        let mut stats = Vec::new();
        loop {
            let line = self.read_line()?;
            if line == "END" {
                return Ok(stats);
            }
            if let Some(rest) = line.strip_prefix("STAT ") {
                if let Some((name, value)) = rest.split_once(' ') {
                    stats.push((name.to_string(), value.to_string()));
                }
            }
        }
    }

    /// Fetches the machine-readable statistics document (`stats json`): a
    /// one-line versioned `cliffhanger-stats/v1` JSON payload.
    pub fn stats_json(&mut self) -> std::io::Result<String> {
        self.stats_blob(b"stats json\r\n")
    }

    /// Fetches the Prometheus text exposition (`stats prom`).
    pub fn stats_prom(&mut self) -> std::io::Result<String> {
        self.stats_blob(b"stats prom\r\n")
    }

    /// Reads an END-terminated blob reply line by line, preserving the
    /// payload's own line structure.
    fn stats_blob(&mut self, command: &[u8]) -> std::io::Result<String> {
        self.writer.write_all(command)?;
        let mut payload = String::new();
        loop {
            let line = self.read_line()?;
            if line == "END" {
                return Ok(payload);
            }
            if line.starts_with("CLIENT_ERROR") || line == "ERROR" {
                return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, line));
            }
            payload.push_str(&line);
            payload.push('\n');
        }
    }

    /// Fetches the server version string.
    pub fn version(&mut self) -> std::io::Result<String> {
        self.writer.write_all(b"version\r\n")?;
        let line = self.read_line()?;
        Ok(line.strip_prefix("VERSION ").unwrap_or(&line).to_string())
    }

    /// Drops every item on the server.
    pub fn flush_all(&mut self) -> std::io::Result<()> {
        self.writer.write_all(b"flush_all\r\n")?;
        let _ = self.read_line()?;
        Ok(())
    }

    /// Sends `quit`, closing the connection on the server side.
    pub fn quit(mut self) -> std::io::Result<()> {
        self.writer.write_all(b"quit\r\n")?;
        Ok(())
    }
}
