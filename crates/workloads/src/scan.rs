//! Sequential / cyclic scan generators.
//!
//! "Cliffs occur, for example, with sequential accesses under LRU. Consider a
//! web application that sequentially scans a 10 MB database. With less than
//! 10 MB of cache, LRU will always evict items before they hit. However,
//! with 10 MB of cache, the array suddenly fits and every access will be a
//! hit." (paper §3.5). [`ScanGenerator`] produces exactly that pattern: a
//! cyclic walk over a fixed key range, optionally interleaved with other
//! traffic by the application profile.

use serde::{Deserialize, Serialize};

/// A cyclic scan over a contiguous range of key ids.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScanGenerator {
    /// First key id of the scanned range.
    pub start_key: u64,
    /// Number of distinct keys in the scan (the "database size" in items).
    pub length: u64,
    /// Current position within the scan.
    cursor: u64,
}

impl ScanGenerator {
    /// Creates a scan over `length` keys starting at `start_key`.
    ///
    /// # Panics
    /// Panics if `length == 0`.
    pub fn new(start_key: u64, length: u64) -> Self {
        assert!(length > 0, "a scan must cover at least one key");
        ScanGenerator {
            start_key,
            length,
            cursor: 0,
        }
    }

    /// The next key id of the scan (wraps around cyclically).
    pub fn next_key(&mut self) -> u64 {
        let key = self.start_key + self.cursor;
        self.cursor = (self.cursor + 1) % self.length;
        key
    }

    /// The number of distinct keys the scan touches.
    pub fn length(&self) -> u64 {
        self.length
    }

    /// How many full passes a request budget covers.
    pub fn passes_for(&self, requests: u64) -> u64 {
        requests / self.length
    }

    /// Resets the scan to its first key.
    pub fn reset(&mut self) {
        self.cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scans_cyclically_over_the_range() {
        let mut scan = ScanGenerator::new(100, 4);
        let keys: Vec<u64> = (0..10).map(|_| scan.next_key()).collect();
        assert_eq!(keys, vec![100, 101, 102, 103, 100, 101, 102, 103, 100, 101]);
        assert_eq!(scan.length(), 4);
        assert_eq!(scan.passes_for(10), 2);
    }

    #[test]
    fn reset_restarts_the_scan() {
        let mut scan = ScanGenerator::new(0, 3);
        scan.next_key();
        scan.next_key();
        scan.reset();
        assert_eq!(scan.next_key(), 0);
    }

    #[test]
    fn every_reuse_distance_equals_the_scan_length() {
        // The defining property of the cliff: under LRU, a cache with fewer
        // items than the scan length hits nothing; with at least the scan
        // length it hits everything (after the first pass).
        let mut scan = ScanGenerator::new(0, 50);
        let mut last_seen = std::collections::HashMap::new();
        let mut distances = Vec::new();
        for t in 0..500u64 {
            let k = scan.next_key();
            if let Some(&prev) = last_seen.get(&k) {
                distances.push(t - prev);
            }
            last_seen.insert(k, t);
        }
        assert!(distances.iter().all(|&d| d == 50));
    }

    #[test]
    #[should_panic(expected = "at least one key")]
    fn empty_scan_rejected() {
        let _ = ScanGenerator::new(0, 0);
    }
}
