//! Key-popularity samplers.
//!
//! Web cache workloads are strongly skewed: a small set of hot keys receives
//! most of the traffic. The standard model is a Zipf distribution over a
//! finite key universe; this module provides an exact CDF-based Zipf sampler
//! plus the uniform and hot-set variants used by individual experiments.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A popularity model over a key universe of `0..num_keys`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum KeyPopularity {
    /// Every key equally likely.
    Uniform {
        /// Universe size.
        num_keys: u64,
    },
    /// Zipf with exponent `s` (rank `r` has weight `1 / r^s`).
    Zipf {
        /// Universe size.
        num_keys: u64,
        /// Skew exponent; 0 degenerates to uniform, ~0.9–1.1 is typical for
        /// web caches.
        exponent: f64,
    },
    /// A fraction of requests goes to a small hot set, the rest is uniform
    /// over the remaining keys.
    HotSet {
        /// Universe size.
        num_keys: u64,
        /// Number of hot keys (must be <= num_keys).
        hot_keys: u64,
        /// Fraction of requests that target the hot set.
        hot_fraction: f64,
    },
}

impl KeyPopularity {
    /// The size of the key universe.
    pub fn num_keys(&self) -> u64 {
        match *self {
            KeyPopularity::Uniform { num_keys }
            | KeyPopularity::Zipf { num_keys, .. }
            | KeyPopularity::HotSet { num_keys, .. } => num_keys,
        }
    }

    /// Builds a sampler for this popularity model.
    pub fn sampler(&self) -> PopularitySampler {
        match *self {
            KeyPopularity::Uniform { num_keys } => PopularitySampler::Uniform { num_keys },
            KeyPopularity::Zipf { num_keys, exponent } => {
                PopularitySampler::Zipf(ZipfSampler::new(num_keys, exponent))
            }
            KeyPopularity::HotSet {
                num_keys,
                hot_keys,
                hot_fraction,
            } => PopularitySampler::HotSet {
                num_keys,
                hot_keys: hot_keys.min(num_keys).max(1),
                hot_fraction: hot_fraction.clamp(0.0, 1.0),
            },
        }
    }
}

/// A ready-to-use sampler built from a [`KeyPopularity`].
#[derive(Clone, Debug)]
pub enum PopularitySampler {
    /// Uniform sampler.
    Uniform {
        /// Universe size.
        num_keys: u64,
    },
    /// Zipf sampler with a precomputed CDF.
    Zipf(ZipfSampler),
    /// Hot-set sampler.
    HotSet {
        /// Universe size.
        num_keys: u64,
        /// Number of hot keys.
        hot_keys: u64,
        /// Fraction of requests to the hot set.
        hot_fraction: f64,
    },
}

impl PopularitySampler {
    /// Draws a key rank in `0..num_keys`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match self {
            PopularitySampler::Uniform { num_keys } => rng.gen_range(0..*num_keys.max(&1)),
            PopularitySampler::Zipf(z) => z.sample(rng),
            PopularitySampler::HotSet {
                num_keys,
                hot_keys,
                hot_fraction,
            } => {
                if rng.gen_bool(*hot_fraction) {
                    rng.gen_range(0..*hot_keys)
                } else if *num_keys > *hot_keys {
                    rng.gen_range(*hot_keys..*num_keys)
                } else {
                    rng.gen_range(0..*num_keys)
                }
            }
        }
    }
}

/// An exact Zipf sampler over ranks `0..n` using a precomputed CDF and
/// binary search (O(log n) per sample, O(n) memory).
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Creates a sampler over `num_keys` ranks with the given exponent.
    ///
    /// # Panics
    /// Panics if `num_keys == 0` or the exponent is negative.
    pub fn new(num_keys: u64, exponent: f64) -> Self {
        assert!(num_keys > 0, "the key universe must not be empty");
        assert!(exponent >= 0.0, "the Zipf exponent must be non-negative");
        let n = num_keys as usize;
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(exponent);
            cdf.push(total);
        }
        for v in cdf.iter_mut() {
            *v /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn num_keys(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// Draws a rank in `0..num_keys` (rank 0 is the most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("CDF values are finite"))
        {
            Ok(idx) => idx as u64,
            Err(idx) => idx.min(self.cdf.len() - 1) as u64,
        }
    }

    /// Probability mass of a rank (0-based).
    pub fn probability(&self, rank: u64) -> f64 {
        let idx = rank as usize;
        if idx >= self.cdf.len() {
            return 0.0;
        }
        if idx == 0 {
            self.cdf[0]
        } else {
            self.cdf[idx] - self.cdf[idx - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_probabilities_sum_to_one_and_decrease() {
        let z = ZipfSampler::new(1_000, 1.0);
        let total: f64 = (0..1_000).map(|r| z.probability(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for r in 1..1_000 {
            assert!(z.probability(r) <= z.probability(r - 1) + 1e-12);
        }
        assert_eq!(z.probability(5_000), 0.0);
    }

    #[test]
    fn zipf_sampling_matches_theory() {
        let z = ZipfSampler::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0u64; 100];
        let samples = 200_000;
        for _ in 0..samples {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        // Rank 0 should get ~1/H_100 = ~19.3% of requests.
        let top = counts[0] as f64 / samples as f64;
        assert!((top - 0.193).abs() < 0.02, "top popularity = {top}");
        // The top 10 ranks should dominate the bottom 50.
        let top10: u64 = counts[..10].iter().sum();
        let bottom50: u64 = counts[50..].iter().sum();
        assert!(top10 > 3 * bottom50);
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = ZipfSampler::new(50, 0.0);
        for r in 0..50 {
            assert!((z.probability(r) - 0.02).abs() < 1e-9);
        }
    }

    #[test]
    fn hot_set_sampler_respects_fraction() {
        let pop = KeyPopularity::HotSet {
            num_keys: 10_000,
            hot_keys: 100,
            hot_fraction: 0.9,
        };
        let sampler = pop.sampler();
        let mut rng = StdRng::seed_from_u64(3);
        let mut hot = 0;
        let n = 50_000;
        for _ in 0..n {
            if sampler.sample(&mut rng) < 100 {
                hot += 1;
            }
        }
        let fraction = hot as f64 / n as f64;
        assert!((fraction - 0.9).abs() < 0.02, "hot fraction = {fraction}");
    }

    #[test]
    fn uniform_sampler_covers_the_universe() {
        let sampler = KeyPopularity::Uniform { num_keys: 8 }.sampler();
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[sampler.sample(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(KeyPopularity::Uniform { num_keys: 8 }.num_keys(), 8);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_universe_rejected() {
        let _ = ZipfSampler::new(0, 1.0);
    }
}
